"""Named dataset profiles mirroring the paper's Table 3 at laptop scale.

Each profile keeps the *relative* statistics of the corresponding real
dataset (user/item ratio, average sequence length, sparsity ordering) at
roughly 1/100 scale so the full Table 2 comparison trains on one CPU core:

=============  ========  ========  ===========  =========
paper dataset  #users    #items    avg. length  density
=============  ========  ========  ===========  =========
Beauty         40,226    54,542    8.8          0.02 %
Steam          281,428   13,044    12.4         0.10 %
Epinions       5,015     8,335     5.4          0.06 %
ML-1m          6,040     3,416     163.5        4.79 %
ML-20m         138,493   26,744    144.4        0.54 %
=============  ========  ========  ===========  =========

Sequence lengths for the MovieLens profiles are compressed (40 instead of
160) to keep transformer training quadratic costs manageable; they remain
an order of magnitude longer than the sparse profiles, preserving the
dense-vs-sparse contrast that drives the paper's analysis in §4.3.
"""

from __future__ import annotations

from dataclasses import replace

from repro.data.dataset import InteractionDataset
from repro.data.synthetic import SimulatorConfig, generate_dataset

# Signal/noise mix calibrated so the model ordering and the rough metric
# levels of the paper's Table 2 emerge (see EXPERIMENTS.md): a strong intent
# signal, mild popularity bias, moderate choice noise.
_COMMON = dict(
    intent_match_weight=10.0,
    popularity_weight=0.2,
    popularity_exponent=0.4,
    noise_scale=0.4,
)

PROFILES: dict[str, SimulatorConfig] = {
    "beauty": SimulatorConfig(
        name="beauty", domain="beauty", num_users=560, num_items=560,
        num_concepts=56, avg_length=9.0, concepts_per_item=4.5,
        true_lambda=3, transition_prob=0.25, seed=101, **_COMMON,
    ),
    "steam": SimulatorConfig(
        name="steam", domain="steam", num_users=700, num_items=420,
        num_concepts=44, avg_length=12.0, concepts_per_item=4.5,
        true_lambda=3, transition_prob=0.25, seed=102, **_COMMON,
    ),
    "epinions": SimulatorConfig(
        name="epinions", domain="epinions", num_users=520, num_items=280,
        num_concepts=23, avg_length=6.5, concepts_per_item=5.5,
        true_lambda=2, transition_prob=0.25, seed=103, **_COMMON,
    ),
    "ml-1m": SimulatorConfig(
        name="ml-1m", domain="movies", num_users=300, num_items=260,
        num_concepts=30, avg_length=35.0, max_length=80,
        concepts_per_item=2.0, true_lambda=3, transition_prob=0.25, seed=104, **_COMMON,
    ),
    "ml-20m": SimulatorConfig(
        name="ml-20m", domain="movies", num_users=520, num_items=420,
        num_concepts=30, avg_length=36.0, max_length=80,
        concepts_per_item=4.0, true_lambda=3, transition_prob=0.25, seed=105, **_COMMON,
    ),
}

# Recommended maximum model sequence length T per profile (Table 6 shows the
# best T tracks the average sequence length).
DEFAULT_MAX_LEN: dict[str, int] = {
    "beauty": 20,
    "steam": 25,
    "epinions": 15,
    "ml-1m": 40,
    "ml-20m": 40,
}

_CACHE: dict[tuple, InteractionDataset] = {}

# Session knobs applied when a profile is loaded with ``sessions=True``:
# short coherent sessions (IntentRec-style) whose boundaries carry a forced
# intent shift.  One shared setting keeps the profiles comparable.
_SESSION_KNOBS = dict(
    session_avg_length=4.0,
    session_min_length=1,
    session_coherence=0.9,
    session_boundary_prob=0.9,
)

# Graph knobs behind the ``<profile>-kg`` / ``<profile>-kg-dense`` preset
# suffixes (docs/graph-workloads.md): the default variant emits a moderately
# sparse knowledge graph + social graph, the dense variant triples the
# triple budget, doubles the social degree, and carries more noise — the
# KG-density axis of the `python -m repro.experiments graphs` sweep.
_GRAPH_KNOBS = dict(
    kg_relations=6,
    kg_triples_per_item=3.0,
    kg_noise=0.05,
    social_degree=4.0,
    social_homophily=0.7,
)

_DENSE_GRAPH_KNOBS = dict(
    kg_relations=6,
    kg_triples_per_item=9.0,
    kg_noise=0.15,
    social_degree=8.0,
    social_homophily=0.7,
)

_GRAPH_SUFFIXES: dict[str, dict] = {
    "-kg": _GRAPH_KNOBS,
    "-kg-dense": _DENSE_GRAPH_KNOBS,
}


def available_profiles() -> list[str]:
    """Names of the built-in dataset profiles."""
    return sorted(PROFILES)


def graph_profiles() -> list[str]:
    """Names of the graph-bearing profile variants (``<base>-kg[...]``)."""
    return sorted(f"{name}{suffix}"
                  for name in PROFILES for suffix in _GRAPH_SUFFIXES)


def _resolve_profile(name: str) -> tuple[str, dict]:
    """Split a profile name into its base profile and graph-knob overrides."""
    for suffix in sorted(_GRAPH_SUFFIXES, key=len, reverse=True):
        base = name[:-len(suffix)]
        if name.endswith(suffix) and base in PROFILES:
            return base, dict(_GRAPH_SUFFIXES[suffix])
    return name, {}


def load_dataset(name: str, scale: float = 1.0, seed: int | None = None,
                 cache: bool = True, sessions: bool = False) -> InteractionDataset:
    """Generate (or fetch from cache) the named synthetic dataset.

    Parameters
    ----------
    name:
        One of :func:`available_profiles`, or a graph-bearing variant from
        :func:`graph_profiles` (``beauty-kg``, ``ml-1m-kg-dense``, ...)
        whose dataset carries ``knowledge_graph`` and ``social_graph``
        fields.  The interaction stream of a graph variant is bit-identical
        to its base profile — the graph samplers use dedicated RNG streams.
    scale:
        Multiplier on the number of users/items (e.g. ``0.5`` for faster
        tests, ``2.0`` for a bigger run).
    seed:
        Override the profile's default seed (changes the generated world).
    cache:
        Re-use a previously generated dataset for identical parameters.
    sessions:
        Generate with session emission enabled: the returned dataset carries
        ``session_ids`` and within-session intent coherence.  Note this is a
        *different* generated world than ``sessions=False`` (the intent
        process is coherence-modulated), not the same data annotated.
    """
    base, graph_knobs = _resolve_profile(name)
    if base not in PROFILES:
        raise KeyError(
            f"unknown dataset profile {name!r}; choose from "
            f"{available_profiles()} or a graph variant from "
            f"{graph_profiles()}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    config = PROFILES[base]
    if graph_knobs:
        config = replace(config, name=name, **graph_knobs)
    if sessions:
        config = replace(config, **_SESSION_KNOBS)
    if scale != 1.0:
        num_items = max(30, int(config.num_items * scale))
        # Keep the repeat-free invariant (max_length < num_items) when the
        # catalog shrinks.
        max_length = min(config.max_length, max(num_items - 10, config.min_length + 2))
        config = replace(
            config,
            num_users=max(30, int(config.num_users * scale)),
            num_items=num_items,
            max_length=max_length,
        )
    if seed is not None:
        config = replace(config, seed=seed)
    key = (name, scale, config.seed, sessions)
    if cache and key in _CACHE:
        return _CACHE[key]
    dataset = generate_dataset(config)
    if cache:
        _CACHE[key] = dataset
    return dataset


def default_max_len(name: str) -> int:
    """Recommended model max sequence length ``T`` for a profile.

    Graph-bearing variants (``beauty-kg``, ...) inherit their base
    profile's length — the interaction stream is the same.
    """
    base, _ = _resolve_profile(name)
    return DEFAULT_MAX_LEN.get(base, 20)
