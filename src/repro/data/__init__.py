"""Dataset substrate: synthetic intent-driven interaction data.

Replaces the paper's Amazon/Steam/Epinions/MovieLens datasets and the
ConceptNet concept graph with a generative simulator whose ground truth is
exactly the intent process ISRec models (see DESIGN.md §2 for the
substitution argument).
"""

from repro.data.batching import (
    evaluation_inputs,
    markov_batches,
    next_item_batches,
    pad_left,
    pairwise_batches,
    session_starts,
)
from repro.data.concepts import (
    ConceptSpace,
    build_concept_space,
    extract_concepts,
    restrict_concept_space,
    tokenize,
)
from repro.data.dataset import ConceptStatistics, DatasetStatistics, InteractionDataset
from repro.data.graphs import (
    GraphStatistics,
    ItemKnowledgeGraph,
    SocialGraph,
    graph_statistics,
)
from repro.data.io import load_dataset_file, save_dataset
from repro.data.preprocessing import (
    LeaveOneOutSplit,
    five_core,
    sample_negatives,
    split_leave_one_out,
)
from repro.data.registry import (
    DEFAULT_MAX_LEN,
    PROFILES,
    available_profiles,
    default_max_len,
    graph_profiles,
    load_dataset,
)
from repro.data.synthetic import (
    GroundTruth,
    IntentDrivenSimulator,
    SimulatorConfig,
    generate_dataset,
)

__all__ = [
    "ConceptSpace", "build_concept_space", "extract_concepts",
    "restrict_concept_space", "tokenize",
    "InteractionDataset", "DatasetStatistics", "ConceptStatistics",
    "ItemKnowledgeGraph", "SocialGraph", "GraphStatistics", "graph_statistics",
    "LeaveOneOutSplit", "five_core", "sample_negatives", "split_leave_one_out",
    "pad_left", "next_item_batches", "pairwise_batches", "markov_batches",
    "evaluation_inputs", "session_starts",
    "SimulatorConfig", "IntentDrivenSimulator", "GroundTruth", "generate_dataset",
    "PROFILES", "DEFAULT_MAX_LEN", "available_profiles", "default_max_len",
    "graph_profiles", "load_dataset",
    "save_dataset",
    "load_dataset_file",
]
