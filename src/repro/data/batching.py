"""Padded batching and negative sampling for model training.

Sequences are padded/truncated on the **left** so the most recent item is
always at the last position, matching SASRec-style implementations; padding
id is 0 everywhere.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.preprocessing import LeaveOneOutSplit


def pad_left(sequences: list[np.ndarray], max_len: int,
             fill: int = 0) -> np.ndarray:
    """Left-pad (or left-truncate) each sequence to ``max_len``.

    Returns an ``(len(sequences), max_len)`` int64 array.  ``fill`` is the
    padding value; item sequences use the default 0 (the padding id), while
    aligned session-id rows pass ``fill=-1`` because 0 is a legal session.
    """
    if max_len <= 0:
        raise ValueError(f"max_len must be positive, got {max_len}")
    out = np.full((len(sequences), max_len), fill, dtype=np.int64)
    for row, seq in enumerate(sequences):
        trimmed = np.asarray(seq, dtype=np.int64)[-max_len:]
        if len(trimmed):
            out[row, max_len - len(trimmed):] = trimmed
    return out


def session_starts(session_row: np.ndarray) -> np.ndarray:
    """Positions where a new session begins in one user's session-id row.

    Position 0 always opens a session; every later start is a unit step in
    the (non-decreasing) session ids.  Empty input yields an empty array.
    """
    session_row = np.asarray(session_row)
    if len(session_row) == 0:
        return np.empty(0, dtype=np.int64)
    breaks = np.flatnonzero(np.diff(session_row)) + 1
    return np.concatenate([[0], breaks]).astype(np.int64)


def next_item_batches(train_sequences: list[np.ndarray], max_len: int, batch_size: int,
                      rng: np.random.Generator,
                      shuffle: bool = True) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Yield ``(user_ids, inputs, targets, mask)`` next-item training batches.

    For a user with training sequence ``s`` the model sees input ``s[:-1]``
    and must predict ``s[1:]`` at each position (Eq. 13).  Users with fewer
    than 2 training interactions are skipped.  ``mask`` is 1.0 at positions
    with a real (non-padding) target.
    """
    usable = [u for u, seq in enumerate(train_sequences) if len(seq) >= 2]
    order = np.asarray(usable, dtype=np.int64)
    if shuffle:
        order = rng.permutation(order)
    for start in range(0, len(order), batch_size):
        users = order[start:start + batch_size]
        inputs = pad_left([train_sequences[u][:-1] for u in users], max_len)
        targets = pad_left([train_sequences[u][1:] for u in users], max_len)
        mask = (targets > 0).astype(np.float32)
        yield users, inputs, targets, mask


def pairwise_batches(train_sequences: list[np.ndarray], num_items: int, batch_size: int,
                     rng: np.random.Generator,
                     num_negatives: int = 1) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield ``(users, positive_items, negative_items)`` for BPR-style models.

    Every (user, item) training interaction appears once per epoch with
    ``num_negatives`` uniformly sampled unseen items.
    """
    users_flat: list[int] = []
    items_flat: list[int] = []
    for user, seq in enumerate(train_sequences):
        users_flat.extend([user] * len(seq))
        items_flat.extend(int(i) for i in seq)
    users_arr = np.asarray(users_flat, dtype=np.int64)
    items_arr = np.asarray(items_flat, dtype=np.int64)
    seen = [set(int(i) for i in seq) for seq in train_sequences]
    saturated = [user for user, items in enumerate(seen) if len(items) >= num_items]
    if saturated:
        raise ValueError(
            f"users {saturated[:5]} consumed the whole catalog; negative "
            f"sampling is impossible"
        )
    order = rng.permutation(len(users_arr))
    for start in range(0, len(order), batch_size):
        index = order[start:start + batch_size]
        batch_users = users_arr[index]
        batch_items = items_arr[index]
        negatives = rng.integers(1, num_items + 1,
                                 size=(len(index), num_negatives))
        for row, user in enumerate(batch_users):
            for col in range(num_negatives):
                while int(negatives[row, col]) in seen[user]:
                    negatives[row, col] = rng.integers(1, num_items + 1)
        yield batch_users, batch_items, negatives


def markov_batches(train_sequences: list[np.ndarray], num_items: int, batch_size: int,
                   rng: np.random.Generator) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Yield ``(users, previous_items, positive_items, negative_items)``.

    Training pairs for first-order Markov models (FPMC): each consecutive
    item pair in a user's training sequence is one example.
    """
    users_flat: list[int] = []
    prev_flat: list[int] = []
    next_flat: list[int] = []
    for user, seq in enumerate(train_sequences):
        for prev_item, next_item in zip(seq[:-1], seq[1:]):
            users_flat.append(user)
            prev_flat.append(int(prev_item))
            next_flat.append(int(next_item))
    users_arr = np.asarray(users_flat, dtype=np.int64)
    prev_arr = np.asarray(prev_flat, dtype=np.int64)
    next_arr = np.asarray(next_flat, dtype=np.int64)
    seen = [set(int(i) for i in seq) for seq in train_sequences]
    order = rng.permutation(len(users_arr))
    for start in range(0, len(order), batch_size):
        index = order[start:start + batch_size]
        negatives = rng.integers(1, num_items + 1, size=len(index))
        for row, user in enumerate(users_arr[index]):
            while int(negatives[row]) in seen[user]:
                negatives[row] = rng.integers(1, num_items + 1)
        yield users_arr[index], prev_arr[index], next_arr[index], negatives


def shard_batch(batch, rank: int, world: int):
    """Contiguous row-shard ``rank`` of ``world`` for one training batch.

    Returns ``(shard, weight)`` where ``shard`` is the same tuple structure
    with every array sliced along axis 0 (the :func:`numpy.array_split`
    boundaries, so shards cover the batch exactly once) and ``weight`` is
    the shard's share of the loss denominator:

    - for ``(users, inputs, targets, mask)`` next-item batches the weight
      is ``mask.sum()`` — the number of supervised tokens, because
      :meth:`~repro.models.base.SequenceRecommender.training_loss` is a
      masked mean over tokens (Eq. 13);
    - for any other tuple of equal-first-dimension arrays it is the number
      of rows, matching per-row mean losses (BPR, FPMC, ...).

    With these weights ``sum_i w_i * loss_i / sum_i w_i`` equals the
    full-batch loss and the identically-weighted gradient average equals
    the full-batch gradient — the exactness the data-parallel trainer's
    all-reduce relies on (see ``docs/parallelism.md``).
    """
    if not isinstance(batch, (tuple, list)) or not batch:
        raise TypeError("shard_batch expects a tuple/list batch of arrays")
    if not 0 <= rank < world:
        raise ValueError(f"rank {rank} out of range for world size {world}")
    arrays = [np.asarray(part) for part in batch]
    rows = arrays[0].shape[0]
    if any(part.ndim == 0 or part.shape[0] != rows for part in arrays):
        raise ValueError("shard_batch needs arrays sharing their first dim")
    # numpy.array_split boundaries: the first rows % world shards get one
    # extra row.
    base, extra = divmod(rows, world)
    start = rank * base + min(rank, extra)
    stop = start + base + (1 if rank < extra else 0)
    shard = tuple(part[start:stop] for part in arrays)
    if (len(shard) >= 4 and shard[3] is not None
            and np.asarray(shard[3]).dtype.kind == "f"):
        weight = float(np.asarray(shard[3], dtype=np.float64).sum())
    else:
        weight = float(stop - start)
    return shard, weight


def evaluation_inputs(split: LeaveOneOutSplit, stage: str, max_len: int) -> tuple[np.ndarray, np.ndarray]:
    """Padded model inputs and targets for ``stage`` in {"valid", "test"}."""
    if stage == "valid":
        inputs = [split.valid_input(u) for u in range(split.num_users)]
        targets = split.valid_targets
    elif stage == "test":
        inputs = [split.test_input(u) for u in range(split.num_users)]
        targets = split.test_targets
    else:
        raise ValueError(f"stage must be 'valid' or 'test', got {stage!r}")
    return pad_left(inputs, max_len), targets
