"""Intent-driven synthetic interaction generator.

This is the substitute for the paper's five real datasets (Amazon-Beauty,
Steam, Epinions, ML-1m, ML-20m), which are network-gated in this
environment.  The generator realises exactly the behavioural story ISRec is
built on (§1, §3): every user carries a small set of latent *intentions*
(concepts); intentions *transition* over time by hopping along edges of the
concept relation graph; each consumed item is chosen because its concepts
match the user's current intentions (mixed with item popularity and noise).

Because the ground truth is an intent process on a concept graph, a model
that recovers intents and their structured transitions (ISRec) has a real
statistical advantage over co-occurrence-only baselines — the property the
paper's Table 2 and Table 5 demonstrate — while popularity/co-occurrence
structure keeps the baselines competitive rather than trivial.

The generator also emits textual item descriptions (titles + review
snippets) so the concept-extraction pipeline of §4.1 runs for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data import preprocessing
from repro.data.concepts import build_concept_space, extract_concepts, restrict_concept_space
from repro.data.dataset import InteractionDataset
from repro.data.vocabularies import FILLER_WORDS


@dataclass
class SimulatorConfig:
    """Knobs of the generative process.

    The defaults produce a Beauty-like sparse dataset; the registry
    (:mod:`repro.data.registry`) derives one config per paper dataset.
    """

    name: str = "synthetic"
    domain: str = "beauty"
    num_users: int = 300
    num_items: int = 400
    num_concepts: int = 48
    avg_length: float = 9.0
    min_length: int = 5
    max_length: int = 120
    concepts_per_item: float = 4.5
    true_lambda: int = 3
    intent_match_weight: float = 4.0
    popularity_weight: float = 1.0
    noise_scale: float = 1.0
    transition_prob: float = 0.35
    community_jump_prob: float = 0.05
    popularity_exponent: float = 1.1
    # Each user consumes an item at most once (rating-style data; the paper's
    # datasets are converted to implicit feedback where repeats are absent).
    # Set a finite window to allow re-consumption after `repeat_window` steps.
    repeat_window: int | None = None
    intra_chord_prob: float = 0.15
    inter_edge_prob: float = 0.02
    # Session structure (IntentRec-style).  ``session_avg_length=None`` (the
    # default) disables session emission entirely and reproduces the legacy
    # RNG draw sequence bit-for-bit.  When set, each user's stream is
    # partitioned into sessions of geometric length (mean
    # ``session_avg_length``, floor ``session_min_length``); within a
    # session the latent intents are *held fixed* with probability
    # ``session_coherence`` per step, and every session boundary forces an
    # intent transition with probability ``session_boundary_prob``.
    session_avg_length: float | None = None
    session_min_length: int = 1
    session_coherence: float = 0.9
    session_boundary_prob: float = 0.9
    seed: int = 0

    def __post_init__(self):
        if self.num_users <= 0 or self.num_items <= 0 or self.num_concepts <= 0:
            raise ValueError("num_users, num_items, num_concepts must be positive")
        if self.true_lambda <= 0:
            raise ValueError("true_lambda must be positive")
        if self.min_length < 3:
            raise ValueError("min_length must be at least 3 (leave-one-out needs 3 items)")
        if not 0.0 <= self.transition_prob <= 1.0:
            raise ValueError("transition_prob must be a probability")
        if self.repeat_window is None and self.max_length >= self.num_items:
            raise ValueError(
                "repeat-free consumption requires max_length < num_items "
                f"(got max_length={self.max_length}, num_items={self.num_items})"
            )
        if self.session_min_length < 1:
            raise ValueError("session_min_length must be at least 1")
        if (self.session_avg_length is not None
                and self.session_avg_length < self.session_min_length):
            raise ValueError(
                "session_avg_length must be >= session_min_length "
                f"(got {self.session_avg_length} < {self.session_min_length})")
        if not 0.0 <= self.session_coherence <= 1.0:
            raise ValueError("session_coherence must be a probability")
        if not 0.0 <= self.session_boundary_prob <= 1.0:
            raise ValueError("session_boundary_prob must be a probability")


@dataclass
class GroundTruth:
    """Latent state of the simulator, kept for diagnostics and tests.

    ``kept_users`` and ``concept_index_map`` align the raw simulation with
    the returned (5-core-filtered, concept-restricted) dataset:
    ``dataset.sequences[i]`` belongs to raw user ``kept_users[i]``, and raw
    concept ``k`` maps to dataset concept ``concept_index_map[k]`` (``-1``
    if it was filtered out).
    """

    item_community: np.ndarray
    item_concepts_true: np.ndarray
    popularity: np.ndarray
    user_intents: list[list[np.ndarray]] = field(default_factory=list)
    kept_users: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    concept_index_map: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: Raw (pre-5-core) per-step session ids per user; empty when the
    #: simulator ran without session emission.
    user_sessions: list[np.ndarray] = field(default_factory=list)


class IntentDrivenSimulator:
    """Generate an :class:`InteractionDataset` from a latent intent process."""

    def __init__(self, config: SimulatorConfig):
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.space = build_concept_space(
            config.domain, config.num_concepts, self.rng,
            intra_chord_prob=config.intra_chord_prob,
            inter_edge_prob=config.inter_edge_prob,
        )
        self.ground_truth: GroundTruth | None = None

    # ------------------------------------------------------------------
    # Item model
    # ------------------------------------------------------------------
    def _assign_item_concepts(self) -> tuple[np.ndarray, np.ndarray]:
        """Give each item a home community and a concept set."""
        cfg = self.config
        num_communities = len(self.space.community_names)
        item_community = self.rng.integers(0, num_communities, size=cfg.num_items)
        matrix = np.zeros((cfg.num_items, self.space.num_concepts), dtype=np.float32)
        for item in range(cfg.num_items):
            home = self.space.members(int(item_community[item]))
            count = max(1, int(self.rng.poisson(max(cfg.concepts_per_item - 1.0, 0.1)) + 1))
            count = min(count, self.space.num_concepts)
            chosen: set[int] = set()
            while len(chosen) < count:
                if self.rng.random() < 0.8 and len(home):
                    chosen.add(int(self.rng.choice(home)))
                else:
                    chosen.add(int(self.rng.integers(0, self.space.num_concepts)))
            matrix[item, sorted(chosen)] = 1.0
        return item_community, matrix

    def _item_descriptions(self, item_concepts: np.ndarray) -> list[str]:
        """Produce title + review text containing the item's concept words."""
        descriptions = []
        for item in range(self.config.num_items):
            concepts = [self.space.names[i] for i in np.flatnonzero(item_concepts[item])]
            fillers = list(self.rng.choice(FILLER_WORDS, size=4))
            title_words = concepts[:2] + fillers[:1]
            review_words = concepts + fillers[1:]
            self.rng.shuffle(review_words)
            descriptions.append(" ".join(title_words) + " . " + " ".join(review_words))
        return descriptions

    # ------------------------------------------------------------------
    # User intent process
    # ------------------------------------------------------------------
    def _initial_intents(self) -> np.ndarray:
        """Sample ``true_lambda`` distinct concepts biased to one community."""
        cfg = self.config
        home = self.rng.integers(0, len(self.space.community_names))
        members = self.space.members(int(home))
        intents: set[int] = set()
        while len(intents) < min(cfg.true_lambda, self.space.num_concepts):
            if self.rng.random() < 0.7 and len(members):
                intents.add(int(self.rng.choice(members)))
            else:
                intents.add(int(self.rng.integers(0, self.space.num_concepts)))
        return np.asarray(sorted(intents), dtype=np.int64)

    def _transition_intents(self, intents: np.ndarray,
                            transition_prob: float | None = None) -> np.ndarray:
        """Hop each intent along a concept-graph edge with ``transition_prob``.

        This is the ground-truth analogue of the paper's structured intent
        transition (Eq. 9): the next intentions are graph neighbours of the
        current ones.  ``transition_prob`` defaults to the config value;
        session boundaries pass ``session_boundary_prob`` to force a shift.
        """
        cfg = self.config
        if transition_prob is None:
            transition_prob = cfg.transition_prob
        updated: set[int] = set()
        for concept in intents:
            new_concept = int(concept)
            if self.rng.random() < cfg.community_jump_prob:
                new_concept = int(self.rng.integers(0, self.space.num_concepts))
            elif self.rng.random() < transition_prob:
                neighbors = self.space.neighbors(int(concept))
                if len(neighbors):
                    new_concept = int(self.rng.choice(neighbors))
            while new_concept in updated:
                new_concept = int(self.rng.integers(0, self.space.num_concepts))
            updated.add(new_concept)
        return np.asarray(sorted(updated), dtype=np.int64)

    def _sequence_length(self) -> int:
        cfg = self.config
        extra = self.rng.geometric(1.0 / max(cfg.avg_length - cfg.min_length + 1.0, 1.0)) - 1
        return int(np.clip(cfg.min_length + extra, cfg.min_length, cfg.max_length))

    def _session_length(self) -> int:
        """Geometric session length with mean ``session_avg_length``."""
        cfg = self.config
        base = max(cfg.session_avg_length - cfg.session_min_length + 1.0, 1.0)
        extra = self.rng.geometric(1.0 / base) - 1
        return int(cfg.session_min_length + extra)

    # ------------------------------------------------------------------
    # Main entry
    # ------------------------------------------------------------------
    def generate(self) -> InteractionDataset:
        """Run the full pipeline and return a preprocessed dataset.

        Pipeline: simulate raw interactions -> write item descriptions ->
        extract + frequency-filter concepts (§4.1) -> 5-core filter ->
        assemble :class:`InteractionDataset`.
        """
        cfg = self.config
        item_community, item_concepts_true = self._assign_item_concepts()
        popularity = (1.0 / np.arange(1, cfg.num_items + 1) ** cfg.popularity_exponent)
        self.rng.shuffle(popularity)
        log_popularity = np.log(popularity)

        intent_overlap_scale = 1.0 / np.sqrt(item_concepts_true.sum(axis=1) + 1.0)
        sessions_enabled = cfg.session_avg_length is not None
        sequences: list[np.ndarray] = []
        user_intents: list[list[np.ndarray]] = []
        user_sessions: list[np.ndarray] = []
        for _ in range(cfg.num_users):
            length = self._sequence_length()
            intents = self._initial_intents()
            history: list[int] = []
            trace: list[np.ndarray] = []
            session_trace: list[int] = []
            if sessions_enabled:
                session_id, session_remaining = 0, self._session_length()
            for _step in range(length):
                intent_vector = np.zeros(self.space.num_concepts, dtype=np.float32)
                intent_vector[intents] = 1.0
                overlap = item_concepts_true @ intent_vector
                logits = (
                    cfg.intent_match_weight * overlap * intent_overlap_scale
                    + cfg.popularity_weight * log_popularity
                    + cfg.noise_scale * self.rng.gumbel(size=cfg.num_items)
                )
                blocked = history if cfg.repeat_window is None else history[-cfg.repeat_window:]
                for recent in blocked:
                    logits[recent - 1] = -np.inf
                item = int(np.argmax(logits)) + 1  # items are 1-indexed
                history.append(item)
                trace.append(intents)
                if not sessions_enabled:
                    intents = self._transition_intents(intents)
                    continue
                session_trace.append(session_id)
                session_remaining -= 1
                if session_remaining == 0:
                    # Boundary: new session, strongly shifted intents.
                    session_id += 1
                    session_remaining = self._session_length()
                    intents = self._transition_intents(
                        intents, transition_prob=cfg.session_boundary_prob)
                elif self.rng.random() >= cfg.session_coherence:
                    intents = self._transition_intents(intents)
                # else: intents held fixed — within-session coherence.
            sequences.append(np.asarray(history, dtype=np.int64))
            user_intents.append(trace)
            user_sessions.append(np.asarray(session_trace, dtype=np.int64))

        descriptions = self._item_descriptions(item_concepts_true)
        extracted, kept = extract_concepts(descriptions, self.space)
        space, new_index = restrict_concept_space(self.space, kept)
        extracted = extracted[:, kept]

        # Keep raw structures so analysis can align the filtered dataset
        # with the recorded ground truth (see repro.analysis.ground_truth).
        self._raw_sequences = [seq.copy() for seq in sequences]
        sequences, item_map, kept_users = preprocessing.five_core(
            sequences, cfg.num_items, return_users=True)
        self._item_map = item_map
        self.ground_truth = GroundTruth(
            item_community=item_community,
            item_concepts_true=item_concepts_true,
            popularity=popularity,
            user_intents=user_intents,
            kept_users=kept_users,
            concept_index_map=new_index,
            user_sessions=user_sessions if sessions_enabled else [],
        )

        # 5-core drops items (and users) but preserves the order of what
        # survives, so each kept user's session trace filters positionally:
        # keep the trace entries whose item survived, then renumber the
        # surviving session ids consecutively from zero.
        session_ids: list[np.ndarray] | None = None
        if sessions_enabled:
            alive = item_map > 0
            session_ids = []
            for user in kept_users:
                raw_seq = self._raw_sequences[int(user)]
                surviving = user_sessions[int(user)][alive[raw_seq]]
                _, renumbered = np.unique(surviving, return_inverse=True)
                session_ids.append(renumbered.astype(np.int64))
        kept_items = np.flatnonzero(item_map > 0)  # original 1-indexed ids kept
        num_items = int(item_map.max())
        remapped_concepts = np.zeros((num_items + 1, space.num_concepts), dtype=np.float32)
        remapped_titles = [""] * num_items
        for original in kept_items:
            new_id = int(item_map[original])
            remapped_concepts[new_id] = extracted[original - 1]
            remapped_titles[new_id - 1] = descriptions[original - 1].split(" . ")[0]

        return InteractionDataset(
            name=cfg.name,
            sequences=sequences,
            num_items=num_items,
            item_concepts=remapped_concepts,
            concept_space=space,
            item_titles=remapped_titles,
            session_ids=session_ids,
        )


def generate_dataset(config: SimulatorConfig) -> InteractionDataset:
    """Convenience wrapper: build the simulator and generate once."""
    return IntentDrivenSimulator(config).generate()
