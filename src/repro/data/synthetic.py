"""Intent-driven synthetic interaction generator.

This is the substitute for the paper's five real datasets (Amazon-Beauty,
Steam, Epinions, ML-1m, ML-20m), which are network-gated in this
environment.  The generator realises exactly the behavioural story ISRec is
built on (§1, §3): every user carries a small set of latent *intentions*
(concepts); intentions *transition* over time by hopping along edges of the
concept relation graph; each consumed item is chosen because its concepts
match the user's current intentions (mixed with item popularity and noise).

Because the ground truth is an intent process on a concept graph, a model
that recovers intents and their structured transitions (ISRec) has a real
statistical advantage over co-occurrence-only baselines — the property the
paper's Table 2 and Table 5 demonstrate — while popularity/co-occurrence
structure keeps the baselines competitive rather than trivial.

The generator also emits textual item descriptions (titles + review
snippets) so the concept-extraction pipeline of §4.1 runs for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data import preprocessing
from repro.data.concepts import build_concept_space, extract_concepts, restrict_concept_space
from repro.data.dataset import InteractionDataset
from repro.data.graphs import ItemKnowledgeGraph, SocialGraph
from repro.data.vocabularies import FILLER_WORDS


@dataclass
class SimulatorConfig:
    """Knobs of the generative process.

    The defaults produce a Beauty-like sparse dataset; the registry
    (:mod:`repro.data.registry`) derives one config per paper dataset.
    """

    name: str = "synthetic"
    domain: str = "beauty"
    num_users: int = 300
    num_items: int = 400
    num_concepts: int = 48
    avg_length: float = 9.0
    min_length: int = 5
    max_length: int = 120
    concepts_per_item: float = 4.5
    true_lambda: int = 3
    intent_match_weight: float = 4.0
    popularity_weight: float = 1.0
    noise_scale: float = 1.0
    transition_prob: float = 0.35
    community_jump_prob: float = 0.05
    popularity_exponent: float = 1.1
    # Each user consumes an item at most once (rating-style data; the paper's
    # datasets are converted to implicit feedback where repeats are absent).
    # Set a finite window to allow re-consumption after `repeat_window` steps.
    repeat_window: int | None = None
    intra_chord_prob: float = 0.15
    inter_edge_prob: float = 0.02
    # Session structure (IntentRec-style).  ``session_avg_length=None`` (the
    # default) disables session emission entirely and reproduces the legacy
    # RNG draw sequence bit-for-bit.  When set, each user's stream is
    # partitioned into sessions of geometric length (mean
    # ``session_avg_length``, floor ``session_min_length``); within a
    # session the latent intents are *held fixed* with probability
    # ``session_coherence`` per step, and every session boundary forces an
    # intent transition with probability ``session_boundary_prob``.
    session_avg_length: float | None = None
    session_min_length: int = 1
    session_coherence: float = 0.9
    session_boundary_prob: float = 0.9
    # Item knowledge graph (docs/graph-workloads.md).  ``kg_relations=None``
    # (the default) disables KG emission; the graph samplers draw from
    # dedicated RNG streams (seed + fixed offsets), so the interaction
    # stream is bit-identical whether graphs are emitted or not.
    kg_relations: int | None = None
    kg_triples_per_item: float = 3.0
    kg_noise: float = 0.05
    # User social graph with homophily-controlled preference correlation;
    # ``social_degree=None`` disables it (same dedicated-RNG guarantee).
    social_degree: float | None = None
    social_homophily: float = 0.7
    seed: int = 0

    def __post_init__(self):
        if self.num_users <= 0 or self.num_items <= 0 or self.num_concepts <= 0:
            raise ValueError("num_users, num_items, num_concepts must be positive")
        if self.true_lambda <= 0:
            raise ValueError("true_lambda must be positive")
        if self.min_length < 3:
            raise ValueError("min_length must be at least 3 (leave-one-out needs 3 items)")
        if not 0.0 <= self.transition_prob <= 1.0:
            raise ValueError("transition_prob must be a probability")
        if self.repeat_window is None and self.max_length >= self.num_items:
            raise ValueError(
                "repeat-free consumption requires max_length < num_items "
                f"(got max_length={self.max_length}, num_items={self.num_items})"
            )
        if self.session_min_length < 1:
            raise ValueError("session_min_length must be at least 1")
        if (self.session_avg_length is not None
                and self.session_avg_length < self.session_min_length):
            raise ValueError(
                "session_avg_length must be >= session_min_length "
                f"(got {self.session_avg_length} < {self.session_min_length})")
        if not 0.0 <= self.session_coherence <= 1.0:
            raise ValueError("session_coherence must be a probability")
        if not 0.0 <= self.session_boundary_prob <= 1.0:
            raise ValueError("session_boundary_prob must be a probability")
        if self.kg_relations is not None and self.kg_relations < 1:
            raise ValueError("kg_relations must be at least 1 when set")
        if self.kg_triples_per_item <= 0:
            raise ValueError("kg_triples_per_item must be positive")
        if not 0.0 <= self.kg_noise <= 1.0:
            raise ValueError("kg_noise must be a probability")
        if self.social_degree is not None and self.social_degree <= 0:
            raise ValueError("social_degree must be positive when set")
        if not 0.0 <= self.social_homophily <= 1.0:
            raise ValueError("social_homophily must be a probability")


@dataclass
class GroundTruth:
    """Latent state of the simulator, kept for diagnostics and tests.

    ``kept_users`` and ``concept_index_map`` align the raw simulation with
    the returned (5-core-filtered, concept-restricted) dataset:
    ``dataset.sequences[i]`` belongs to raw user ``kept_users[i]``, and raw
    concept ``k`` maps to dataset concept ``concept_index_map[k]`` (``-1``
    if it was filtered out).
    """

    item_community: np.ndarray
    item_concepts_true: np.ndarray
    popularity: np.ndarray
    user_intents: list[list[np.ndarray]] = field(default_factory=list)
    kept_users: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    concept_index_map: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: Raw (pre-5-core) per-step session ids per user; empty when the
    #: simulator ran without session emission.
    user_sessions: list[np.ndarray] = field(default_factory=list)
    #: Raw (pre-5-core) KG triples over the unfiltered entity space; empty
    #: when the simulator ran without KG emission.
    kg_triples_raw: np.ndarray = field(
        default_factory=lambda: np.empty((0, 3), dtype=np.int64))
    #: Raw (pre-5-core) social edges over the unfiltered user space; empty
    #: when the simulator ran without social emission.
    social_edges_raw: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64))
    #: Majority home community per raw user (drives social homophily).
    user_community: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))


class IntentDrivenSimulator:
    """Generate an :class:`InteractionDataset` from a latent intent process."""

    #: Seed offsets decorrelating the graph samplers from the main
    #: interaction stream: graph emission never advances ``self.rng``, so
    #: switching graphs on or off leaves the interactions bit-identical.
    KG_SEED_OFFSET = 0x6B670
    SOCIAL_SEED_OFFSET = 0x50C1A

    def __init__(self, config: SimulatorConfig):
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.space = build_concept_space(
            config.domain, config.num_concepts, self.rng,
            intra_chord_prob=config.intra_chord_prob,
            inter_edge_prob=config.inter_edge_prob,
        )
        self.ground_truth: GroundTruth | None = None

    # ------------------------------------------------------------------
    # Item model
    # ------------------------------------------------------------------
    def _assign_item_concepts(self) -> tuple[np.ndarray, np.ndarray]:
        """Give each item a home community and a concept set."""
        cfg = self.config
        num_communities = len(self.space.community_names)
        item_community = self.rng.integers(0, num_communities, size=cfg.num_items)
        matrix = np.zeros((cfg.num_items, self.space.num_concepts), dtype=np.float32)
        for item in range(cfg.num_items):
            home = self.space.members(int(item_community[item]))
            count = max(1, int(self.rng.poisson(max(cfg.concepts_per_item - 1.0, 0.1)) + 1))
            count = min(count, self.space.num_concepts)
            chosen: set[int] = set()
            while len(chosen) < count:
                if self.rng.random() < 0.8 and len(home):
                    chosen.add(int(self.rng.choice(home)))
                else:
                    chosen.add(int(self.rng.integers(0, self.space.num_concepts)))
            matrix[item, sorted(chosen)] = 1.0
        return item_community, matrix

    def _item_descriptions(self, item_concepts: np.ndarray) -> list[str]:
        """Produce title + review text containing the item's concept words."""
        descriptions = []
        for item in range(self.config.num_items):
            concepts = [self.space.names[i] for i in np.flatnonzero(item_concepts[item])]
            fillers = list(self.rng.choice(FILLER_WORDS, size=4))
            title_words = concepts[:2] + fillers[:1]
            review_words = concepts + fillers[1:]
            self.rng.shuffle(review_words)
            descriptions.append(" ".join(title_words) + " . " + " ".join(review_words))
        return descriptions

    # ------------------------------------------------------------------
    # User intent process
    # ------------------------------------------------------------------
    def _initial_intents(self) -> np.ndarray:
        """Sample ``true_lambda`` distinct concepts biased to one community."""
        cfg = self.config
        home = self.rng.integers(0, len(self.space.community_names))
        members = self.space.members(int(home))
        intents: set[int] = set()
        while len(intents) < min(cfg.true_lambda, self.space.num_concepts):
            if self.rng.random() < 0.7 and len(members):
                intents.add(int(self.rng.choice(members)))
            else:
                intents.add(int(self.rng.integers(0, self.space.num_concepts)))
        return np.asarray(sorted(intents), dtype=np.int64)

    def _transition_intents(self, intents: np.ndarray,
                            transition_prob: float | None = None) -> np.ndarray:
        """Hop each intent along a concept-graph edge with ``transition_prob``.

        This is the ground-truth analogue of the paper's structured intent
        transition (Eq. 9): the next intentions are graph neighbours of the
        current ones.  ``transition_prob`` defaults to the config value;
        session boundaries pass ``session_boundary_prob`` to force a shift.
        """
        cfg = self.config
        if transition_prob is None:
            transition_prob = cfg.transition_prob
        updated: set[int] = set()
        for concept in intents:
            new_concept = int(concept)
            if self.rng.random() < cfg.community_jump_prob:
                new_concept = int(self.rng.integers(0, self.space.num_concepts))
            elif self.rng.random() < transition_prob:
                neighbors = self.space.neighbors(int(concept))
                if len(neighbors):
                    new_concept = int(self.rng.choice(neighbors))
            while new_concept in updated:
                new_concept = int(self.rng.integers(0, self.space.num_concepts))
            updated.add(new_concept)
        return np.asarray(sorted(updated), dtype=np.int64)

    def _sequence_length(self) -> int:
        cfg = self.config
        extra = self.rng.geometric(1.0 / max(cfg.avg_length - cfg.min_length + 1.0, 1.0)) - 1
        return int(np.clip(cfg.min_length + extra, cfg.min_length, cfg.max_length))

    def _session_length(self) -> int:
        """Geometric session length with mean ``session_avg_length``."""
        cfg = self.config
        base = max(cfg.session_avg_length - cfg.session_min_length + 1.0, 1.0)
        extra = self.rng.geometric(1.0 / base) - 1
        return int(cfg.session_min_length + extra)

    # ------------------------------------------------------------------
    # Structural side information (docs/graph-workloads.md)
    # ------------------------------------------------------------------
    def _relation_names(self) -> list[str]:
        """Names of the ``kg_relations`` relation types.

        The last slots carry the structural relations (concept-graph links,
        same-community item links); the rest type item->attribute edges.
        With very small ``kg_relations`` the types fold together.
        """
        count = int(self.config.kg_relations)
        names = [f"has_attribute_{r}" for r in range(count)]
        if count >= 2:
            names[-1] = "linked_concept"
        if count >= 3:
            names[-2] = "related_item"
        return names

    def _knowledge_graph_raw(self, item_concepts_true: np.ndarray,
                             item_community: np.ndarray) -> np.ndarray:
        """Sample raw KG triples over the unfiltered item/concept space.

        Three layers plus noise: (1) item ``has_attribute`` concept edges
        typed by the concept's community, (2) every concept-graph edge as a
        ``linked_concept`` triple (the "layered on the concept graph" part),
        (3) sampled same-community ``related_item`` pairs; finally a
        ``kg_noise`` fraction of uniformly random corrupted triples.  Uses a
        dedicated RNG stream so the main interaction draws are untouched.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + self.KG_SEED_OFFSET)
        count = int(cfg.kg_relations)
        attr_slots = max(count - 2, 1)
        rel_concept_link = count - 1 if count >= 2 else 0
        rel_related_item = count - 2 if count >= 3 else 0
        concept_entity = cfg.num_items + 1 + np.arange(self.space.num_concepts)
        rel_of_concept = self.space.community_of.astype(np.int64) % attr_slots

        budget = max(int(round(cfg.kg_triples_per_item * cfg.num_items)), 1)
        attribute_budget = max(int(np.ceil(budget * 2 / 3)), 1)
        related_budget = max(budget - attribute_budget, 0)
        triples: list[tuple[int, int, int]] = []

        # Layer 1 — item -> attribute-entity typing edges.
        items = rng.integers(0, cfg.num_items, size=attribute_budget)
        for item in items:
            concepts = np.flatnonzero(item_concepts_true[item])
            concept = int(rng.choice(concepts))
            triples.append((int(item) + 1, int(rel_of_concept[concept]),
                            int(concept_entity[concept])))

        # Layer 2 — the concept graph itself, lifted to triples.
        rows, cols = np.nonzero(np.triu(self.space.adjacency, k=1))
        for a, b in zip(rows.tolist(), cols.tolist()):
            triples.append((int(concept_entity[a]), rel_concept_link,
                            int(concept_entity[b])))

        # Layer 3 — same-community related items.
        members = {c: np.flatnonzero(item_community == c)
                   for c in np.unique(item_community)}
        for _ in range(related_budget):
            item = int(rng.integers(0, cfg.num_items))
            pool = members[int(item_community[item])]
            if len(pool) < 2:
                continue
            other = int(rng.choice(pool))
            if other == item:
                continue
            triples.append((item + 1, rel_related_item, other + 1))

        # Noise — uniformly random triples corrupting the structure.
        num_entities = cfg.num_items + self.space.num_concepts
        noise = int(round(cfg.kg_noise * len(triples)))
        if noise:
            heads = rng.integers(1, num_entities + 1, size=noise)
            relations = rng.integers(0, count, size=noise)
            tails = rng.integers(1, num_entities + 1, size=noise)
            keep = heads != tails
            triples.extend(zip(heads[keep].tolist(), relations[keep].tolist(),
                               tails[keep].tolist()))

        raw = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
        return np.unique(raw, axis=0)

    def _user_communities(self, user_intents: list[list[np.ndarray]]) -> np.ndarray:
        """Majority home community of each raw user's initial intents."""
        communities = np.zeros(len(user_intents), dtype=np.int64)
        for user, trace in enumerate(user_intents):
            votes = self.space.community_of[trace[0]].astype(np.int64)
            communities[user] = np.bincount(votes).argmax()
        return communities

    def _social_graph_raw(self, user_community: np.ndarray) -> np.ndarray:
        """Sample raw undirected social edges with homophily bias.

        Each user draws ``Poisson(social_degree / 2)`` partners (every edge
        is shared by two endpoints, so the expected degree is
        ``social_degree``); each partner comes from the user's own home
        community with probability ``social_homophily`` and uniformly
        otherwise.  Dedicated RNG stream, same bit-identity guarantee as
        the KG sampler.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + self.SOCIAL_SEED_OFFSET)
        members = {c: np.flatnonzero(user_community == c)
                   for c in np.unique(user_community)}
        pairs: list[tuple[int, int]] = []
        for user in range(cfg.num_users):
            for _ in range(int(rng.poisson(cfg.social_degree / 2.0))):
                if rng.random() < cfg.social_homophily:
                    pool = members[int(user_community[user])]
                else:
                    pool = None
                other = int(rng.choice(pool)) if pool is not None and len(pool) > 1 \
                    else int(rng.integers(0, cfg.num_users))
                if other == user:
                    continue
                pairs.append((min(user, other), max(user, other)))
        raw = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        return np.unique(raw, axis=0)

    # ------------------------------------------------------------------
    # Main entry
    # ------------------------------------------------------------------
    def generate(self) -> InteractionDataset:
        """Run the full pipeline and return a preprocessed dataset.

        Pipeline: simulate raw interactions -> write item descriptions ->
        extract + frequency-filter concepts (§4.1) -> 5-core filter ->
        assemble :class:`InteractionDataset`.
        """
        cfg = self.config
        item_community, item_concepts_true = self._assign_item_concepts()
        popularity = (1.0 / np.arange(1, cfg.num_items + 1) ** cfg.popularity_exponent)
        self.rng.shuffle(popularity)
        log_popularity = np.log(popularity)

        intent_overlap_scale = 1.0 / np.sqrt(item_concepts_true.sum(axis=1) + 1.0)
        sessions_enabled = cfg.session_avg_length is not None
        sequences: list[np.ndarray] = []
        user_intents: list[list[np.ndarray]] = []
        user_sessions: list[np.ndarray] = []
        for _ in range(cfg.num_users):
            length = self._sequence_length()
            intents = self._initial_intents()
            history: list[int] = []
            trace: list[np.ndarray] = []
            session_trace: list[int] = []
            if sessions_enabled:
                session_id, session_remaining = 0, self._session_length()
            for _step in range(length):
                intent_vector = np.zeros(self.space.num_concepts, dtype=np.float32)
                intent_vector[intents] = 1.0
                overlap = item_concepts_true @ intent_vector
                logits = (
                    cfg.intent_match_weight * overlap * intent_overlap_scale
                    + cfg.popularity_weight * log_popularity
                    + cfg.noise_scale * self.rng.gumbel(size=cfg.num_items)
                )
                blocked = history if cfg.repeat_window is None else history[-cfg.repeat_window:]
                for recent in blocked:
                    logits[recent - 1] = -np.inf
                item = int(np.argmax(logits)) + 1  # items are 1-indexed
                history.append(item)
                trace.append(intents)
                if not sessions_enabled:
                    intents = self._transition_intents(intents)
                    continue
                session_trace.append(session_id)
                session_remaining -= 1
                if session_remaining == 0:
                    # Boundary: new session, strongly shifted intents.
                    session_id += 1
                    session_remaining = self._session_length()
                    intents = self._transition_intents(
                        intents, transition_prob=cfg.session_boundary_prob)
                elif self.rng.random() >= cfg.session_coherence:
                    intents = self._transition_intents(intents)
                # else: intents held fixed — within-session coherence.
            sequences.append(np.asarray(history, dtype=np.int64))
            user_intents.append(trace)
            user_sessions.append(np.asarray(session_trace, dtype=np.int64))

        # Structural side information is sampled from dedicated RNG streams
        # (never self.rng), so everything below this point is bit-identical
        # whether the graph knobs are set or None.
        kg_enabled = cfg.kg_relations is not None
        social_enabled = cfg.social_degree is not None
        kg_triples_raw = (self._knowledge_graph_raw(item_concepts_true, item_community)
                          if kg_enabled else np.empty((0, 3), dtype=np.int64))
        user_community = self._user_communities(user_intents)
        social_edges_raw = (self._social_graph_raw(user_community)
                            if social_enabled else np.empty((0, 2), dtype=np.int64))

        descriptions = self._item_descriptions(item_concepts_true)
        extracted, kept = extract_concepts(descriptions, self.space)
        space, new_index = restrict_concept_space(self.space, kept)
        extracted = extracted[:, kept]

        # Keep raw structures so analysis can align the filtered dataset
        # with the recorded ground truth (see repro.analysis.ground_truth).
        self._raw_sequences = [seq.copy() for seq in sequences]
        sequences, item_map, kept_users = preprocessing.five_core(
            sequences, cfg.num_items, return_users=True)
        self._item_map = item_map
        self.ground_truth = GroundTruth(
            item_community=item_community,
            item_concepts_true=item_concepts_true,
            popularity=popularity,
            user_intents=user_intents,
            kept_users=kept_users,
            concept_index_map=new_index,
            user_sessions=user_sessions if sessions_enabled else [],
            kg_triples_raw=kg_triples_raw,
            social_edges_raw=social_edges_raw,
            user_community=user_community,
        )

        # 5-core drops items (and users) but preserves the order of what
        # survives, so each kept user's session trace filters positionally:
        # keep the trace entries whose item survived, then renumber the
        # surviving session ids consecutively from zero.
        session_ids: list[np.ndarray] | None = None
        if sessions_enabled:
            alive = item_map > 0
            session_ids = []
            for user in kept_users:
                raw_seq = self._raw_sequences[int(user)]
                surviving = user_sessions[int(user)][alive[raw_seq]]
                _, renumbered = np.unique(surviving, return_inverse=True)
                session_ids.append(renumbered.astype(np.int64))
        kept_items = np.flatnonzero(item_map > 0)  # original 1-indexed ids kept
        num_items = int(item_map.max())
        remapped_concepts = np.zeros((num_items + 1, space.num_concepts), dtype=np.float32)
        remapped_titles = [""] * num_items
        for original in kept_items:
            new_id = int(item_map[original])
            remapped_concepts[new_id] = extracted[original - 1]
            remapped_titles[new_id - 1] = descriptions[original - 1].split(" . ")[0]

        # 5-core alignment of the graphs: item entities remap through
        # item_map, attribute entities through the restricted concept index,
        # social endpoints through the kept-user positions; triples/edges
        # touching anything dropped are removed, so the emitted graphs
        # reference only live entities and users.
        knowledge_graph: ItemKnowledgeGraph | None = None
        if kg_enabled:
            raw_entities = cfg.num_items + self.space.num_concepts
            entity_map = np.zeros(raw_entities + 1, dtype=np.int64)
            entity_map[1:cfg.num_items + 1] = item_map[1:]
            for raw_concept in range(self.space.num_concepts):
                if new_index[raw_concept] >= 0:
                    entity_map[cfg.num_items + 1 + raw_concept] = (
                        num_items + 1 + int(new_index[raw_concept]))
            heads = entity_map[kg_triples_raw[:, 0]]
            tails = entity_map[kg_triples_raw[:, 2]]
            alive_triples = (heads > 0) & (tails > 0)
            filtered = np.stack([heads[alive_triples],
                                 kg_triples_raw[alive_triples, 1],
                                 tails[alive_triples]], axis=1)
            knowledge_graph = ItemKnowledgeGraph(
                triples=np.unique(filtered, axis=0) if len(filtered) else filtered,
                num_items=num_items,
                num_entities=num_items + space.num_concepts,
                num_relations=int(cfg.kg_relations),
                relation_names=self._relation_names(),
                entity_names=list(space.names),
            )
        social_graph: SocialGraph | None = None
        if social_enabled:
            user_position = np.full(cfg.num_users, -1, dtype=np.int64)
            user_position[kept_users] = np.arange(len(kept_users))
            endpoints = user_position[social_edges_raw]
            alive_edges = (endpoints >= 0).all(axis=1)
            pairs = np.sort(endpoints[alive_edges], axis=1)
            social_graph = SocialGraph(
                edges=np.unique(pairs, axis=0) if len(pairs) else pairs,
                num_users=len(kept_users),
            )

        return InteractionDataset(
            name=cfg.name,
            sequences=sequences,
            num_items=num_items,
            item_concepts=remapped_concepts,
            concept_space=space,
            item_titles=remapped_titles,
            session_ids=session_ids,
            knowledge_graph=knowledge_graph,
            social_graph=social_graph,
        )


def generate_dataset(config: SimulatorConfig) -> InteractionDataset:
    """Convenience wrapper: build the simulator and generate once."""
    return IntentDrivenSimulator(config).generate()
