"""Structural side information: item knowledge graph and user social graph.

These containers carry the two graph layers the simulator can emit on top
of the interaction stream (``docs/graph-workloads.md``):

- :class:`ItemKnowledgeGraph` — entity/relation triples layered on the
  concept graph.  Entities share one 1-indexed id space: ids
  ``1..num_items`` are catalog items, ids ``num_items+1..num_entities``
  are attribute entities (the dataset's concepts).  Id 0 is reserved for
  padding, mirroring the item-id convention.
- :class:`SocialGraph` — an undirected user-user graph stored as
  canonical ``u < v`` pairs; :meth:`SocialGraph.symmetric_edges` expands
  both directions for consumers that want an adjacency stream.

Both validate their invariants on construction, so a dataset that carries
them (``InteractionDataset.knowledge_graph`` / ``social_graph``) can only
reference live entities and users — the property the 5-core filtering in
:mod:`repro.data.synthetic` must preserve and the graph test-suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class GraphStatistics:
    """Headline numbers of one dataset's structural side information."""

    num_entities: int
    num_relations: int
    num_triples: int
    triples_per_item: float
    num_social_edges: int
    avg_social_degree: float

    def as_row(self) -> list:
        """Cells for the graph-workloads summary table."""
        return [self.num_entities, self.num_relations, self.num_triples,
                round(self.triples_per_item, 2), self.num_social_edges,
                round(self.avg_social_degree, 2)]


@dataclass
class ItemKnowledgeGraph:
    """Entity/relation triples over items and attribute entities.

    ``triples[k] = (head, relation, tail)`` with 1-indexed entity ids and
    0-indexed relation ids.  Heads and tails may be items *or* attribute
    entities (concept-concept links are first-class triples).
    """

    triples: np.ndarray
    num_items: int
    num_entities: int
    num_relations: int
    relation_names: list[str] = field(default_factory=list)
    entity_names: list[str] = field(default_factory=list, repr=False)

    def __post_init__(self):
        self.triples = np.asarray(self.triples, dtype=np.int64)
        if self.triples.size == 0:
            self.triples = self.triples.reshape(0, 3)
        if self.triples.ndim != 2 or self.triples.shape[1] != 3:
            raise ValueError(
                f"triples must be (N, 3) [head, relation, tail], "
                f"got shape {self.triples.shape}")
        if self.num_entities < self.num_items:
            raise ValueError(
                f"num_entities ({self.num_entities}) cannot be smaller than "
                f"num_items ({self.num_items})")
        if self.num_relations < 1:
            raise ValueError("num_relations must be at least 1")
        if len(self.triples):
            entities = self.triples[:, [0, 2]]
            if entities.min() < 1 or entities.max() > self.num_entities:
                raise ValueError(
                    f"triple entities must lie in [1, {self.num_entities}]")
            relations = self.triples[:, 1]
            if relations.min() < 0 or relations.max() >= self.num_relations:
                raise ValueError(
                    f"triple relations must lie in [0, {self.num_relations})")
        if self.relation_names and len(self.relation_names) != self.num_relations:
            raise ValueError(
                f"{len(self.relation_names)} relation names for "
                f"{self.num_relations} relations")

    @property
    def num_triples(self) -> int:
        """Number of stored triples."""
        return len(self.triples)

    @property
    def num_attribute_entities(self) -> int:
        """Entities that are not catalog items (concept-derived attributes)."""
        return self.num_entities - self.num_items

    def is_item(self, entity: np.ndarray | int) -> np.ndarray | bool:
        """Whether 1-indexed entity id(s) refer to catalog items."""
        entity = np.asarray(entity)
        result = (entity >= 1) & (entity <= self.num_items)
        return bool(result) if result.ndim == 0 else result

    def entity_degree(self) -> np.ndarray:
        """Triple count per entity id (index 0 = padding, always 0)."""
        degree = np.zeros(self.num_entities + 1, dtype=np.int64)
        if len(self.triples):
            np.add.at(degree, self.triples[:, 0], 1)
            np.add.at(degree, self.triples[:, 2], 1)
        degree[0] = 0
        return degree

    def triples_of_item(self, item: int) -> np.ndarray:
        """All triples whose head or tail is the given item id."""
        if not 1 <= item <= self.num_items:
            raise IndexError(f"item id {item} out of range [1, {self.num_items}]")
        mask = (self.triples[:, 0] == item) | (self.triples[:, 2] == item)
        return self.triples[mask]


@dataclass
class SocialGraph:
    """Undirected user-user graph stored as canonical ``u < v`` pairs.

    Users are 0-indexed, matching ``InteractionDataset.sequences``.
    """

    edges: np.ndarray
    num_users: int

    def __post_init__(self):
        self.edges = np.asarray(self.edges, dtype=np.int64)
        if self.edges.size == 0:
            self.edges = self.edges.reshape(0, 2)
        if self.edges.ndim != 2 or self.edges.shape[1] != 2:
            raise ValueError(
                f"edges must be (M, 2) user pairs, got shape {self.edges.shape}")
        if len(self.edges):
            if self.edges.min() < 0 or self.edges.max() >= self.num_users:
                raise ValueError(
                    f"edge endpoints must lie in [0, {self.num_users})")
            if (self.edges[:, 0] >= self.edges[:, 1]).any():
                raise ValueError(
                    "edges must be canonical u < v pairs (no self-loops, "
                    "no reversed duplicates)")
            if len(np.unique(self.edges, axis=0)) != len(self.edges):
                raise ValueError("edges contain duplicate pairs")

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.edges)

    def symmetric_edges(self) -> np.ndarray:
        """Both directions of every edge, ``(2M, 2)`` — the adjacency stream."""
        if not len(self.edges):
            return self.edges.copy()
        return np.concatenate([self.edges, self.edges[:, ::-1]], axis=0)

    def degree(self) -> np.ndarray:
        """Per-user neighbour count."""
        degree = np.zeros(self.num_users, dtype=np.int64)
        if len(self.edges):
            np.add.at(degree, self.edges[:, 0], 1)
            np.add.at(degree, self.edges[:, 1], 1)
        return degree

    def neighbors(self, user: int) -> np.ndarray:
        """Sorted neighbour ids of ``user``."""
        if not 0 <= user < self.num_users:
            raise IndexError(f"user id {user} out of range [0, {self.num_users})")
        mask_u = self.edges[:, 0] == user
        mask_v = self.edges[:, 1] == user
        return np.sort(np.concatenate([self.edges[mask_u, 1],
                                       self.edges[mask_v, 0]]))


def graph_statistics(knowledge_graph: ItemKnowledgeGraph | None,
                     social_graph: SocialGraph | None) -> GraphStatistics:
    """Summarise a dataset's (possibly absent) structural side information."""
    if knowledge_graph is not None:
        num_entities = knowledge_graph.num_entities
        num_relations = knowledge_graph.num_relations
        num_triples = knowledge_graph.num_triples
        per_item = (num_triples / knowledge_graph.num_items
                    if knowledge_graph.num_items else 0.0)
    else:
        num_entities = num_relations = num_triples = 0
        per_item = 0.0
    if social_graph is not None:
        num_edges = social_graph.num_edges
        avg_degree = (2.0 * num_edges / social_graph.num_users
                      if social_graph.num_users else 0.0)
    else:
        num_edges = 0
        avg_degree = 0.0
    return GraphStatistics(num_entities=num_entities,
                           num_relations=num_relations,
                           num_triples=num_triples,
                           triples_per_item=per_item,
                           num_social_edges=num_edges,
                           avg_social_degree=avg_degree)
