"""Domain concept vocabularies for the synthetic dataset profiles.

The paper extracts "concepts" — ConceptNet keywords — from item titles and
review texts (§4.1).  Our simulator needs a plausible concept vocabulary per
domain so the explainability showcases (Fig. 2) read like the paper's
(*wrinkle -> scalp -> skin -> face* on Beauty, *crime/fight -> war ->
military -> violent* on Steam).  Each list groups concepts into thematic
*communities*; the concept-graph generator wires dense intra-community and
sparse inter-community relations, mimicking ConceptNet neighbourhoods.

When a profile requests more concepts than a domain list provides, generic
``<domain>_extra_NNN`` concepts are appended (they join random communities).
"""

from __future__ import annotations

# Each entry: community name -> concepts. Communities model ConceptNet
# neighbourhoods (e.g. "sport" relating to "health", "entertainment").
BEAUTY_COMMUNITIES: dict[str, list[str]] = {
    "skincare": ["wrinkle", "skin", "face", "moisturizer", "hydration", "serum",
                 "acne", "pore", "brightening", "collagen", "sunscreen", "defense",
                 "toner", "retinol"],
    "haircare": ["scalp", "shampoo", "conditioner", "mousse", "fiber", "volume",
                 "dandruff", "keratin", "curl", "shine"],
    "makeup": ["lipstick", "foundation", "mascara", "eyeliner", "blush",
               "palette", "concealer", "gloss", "matte", "pigment"],
    "fragrance": ["perfume", "scent", "floral", "musk", "citrus", "vanilla",
                  "lavender", "amber"],
    "body": ["lotion", "exfoliate", "massage", "spa", "butter", "oil",
             "avocado", "aloe", "soap", "bath"],
    "nails": ["polish", "manicure", "cuticle", "gel", "acrylic", "topcoat"],
}

STEAM_COMMUNITIES: dict[str, list[str]] = {
    "combat": ["crime", "fight", "war", "destruction", "tank", "military",
               "violent", "weapon", "sniper", "battle", "shooter", "stealth"],
    "strategy": ["tactics", "empire", "resource", "diplomacy", "conquest",
                 "economy", "civilization", "turnbased", "basebuilding",
                 "logistics"],
    "adventure": ["quest", "exploration", "puzzle", "story", "mystery",
                  "dungeon", "treasure", "survival", "crafting", "roguelike"],
    "sports": ["racing", "football", "driving", "championship", "stadium",
               "simulation", "league", "drift", "tournament"],
    "fantasy": ["magic", "dragon", "wizard", "sword", "kingdom", "elf",
                "mythology", "legend", "necromancer", "alchemy"],
}

EPINIONS_COMMUNITIES: dict[str, list[str]] = {
    "electronics": ["camera", "laptop", "battery", "screen", "wireless",
                    "audio", "keyboard", "printer", "headphones"],
    "home": ["kitchen", "furniture", "appliance", "vacuum", "cookware",
             "garden", "mattress", "lighting"],
    "travel": ["hotel", "flight", "luggage", "resort", "cruise", "hostel"],
    "auto": ["engine", "tire", "sedan", "mileage", "brake", "transmission"],
}

MOVIE_COMMUNITIES: dict[str, list[str]] = {
    "action": ["action", "thriller", "explosion", "chase", "hero", "spy",
               "heist", "martial"],
    "drama": ["drama", "romance", "family", "tragedy", "biography",
              "courtroom"],
    "comedy": ["comedy", "parody", "sitcom", "slapstick", "satire"],
    "scifi": ["scifi", "space", "robot", "alien", "future", "cyberpunk",
              "dystopia"],
    "horror": ["horror", "ghost", "zombie", "suspense", "vampire", "occult"],
    "animation": ["animation", "cartoon", "musical", "fairytale", "anime"],
}

DOMAIN_COMMUNITIES: dict[str, dict[str, list[str]]] = {
    "beauty": BEAUTY_COMMUNITIES,
    "steam": STEAM_COMMUNITIES,
    "epinions": EPINIONS_COMMUNITIES,
    "movies": MOVIE_COMMUNITIES,
}

# Filler words for generated item descriptions; they are *not* in any
# concept vocabulary so the keyword-extraction pipeline must skip them
# (mirroring the paper's filtering of non-ConceptNet n-grams).
FILLER_WORDS: list[str] = [
    "the", "a", "with", "for", "and", "really", "great", "nice", "bought",
    "this", "love", "use", "good", "very", "recommend", "quality", "价",
    "item", "product", "works", "well", "happy", "arrived", "fast",
]


def build_domain_vocabulary(domain: str, num_concepts: int) -> dict[str, list[str]]:
    """Return ``community -> concepts`` trimmed/padded to ``num_concepts`` total.

    Concepts are consumed round-robin across communities so every community
    stays represented at any size; extras are synthesised when the domain
    list runs out.
    """
    if domain not in DOMAIN_COMMUNITIES:
        raise KeyError(f"unknown domain {domain!r}; choose from {sorted(DOMAIN_COMMUNITIES)}")
    source = DOMAIN_COMMUNITIES[domain]
    communities = {name: [] for name in source}
    remaining = {name: list(words) for name, words in source.items()}
    names = list(source)
    picked = 0
    position = 0
    while picked < num_concepts:
        name = names[position % len(names)]
        position += 1
        if remaining[name]:
            communities[name].append(remaining[name].pop(0))
            picked += 1
        elif all(not words for words in remaining.values()):
            # Synthesise extras once every real concept is used.
            target = names[picked % len(names)]
            communities[target].append(f"{domain}_extra_{picked:03d}")
            picked += 1
    return {name: words for name, words in communities.items() if words}
