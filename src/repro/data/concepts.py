"""Concept space: vocabulary, relation graph, and keyword extraction.

This module replaces the two external concept resources of the paper:

- **ConceptNet** (§3.5, §4.1): provided here as a synthetic relation graph
  over the domain vocabulary.  Communities of related concepts are densely
  wired (ring + random chords) and different communities are connected
  sparsely, mimicking the neighbourhood structure of ConceptNet (e.g.
  "sport" — "health" — "entertainment").
- **Keyword extraction from titles/reviews** (§4.1): items carry generated
  description strings; :func:`extract_concepts` maps their tokens back to
  vocabulary concepts and applies the same frequency filtering as the paper
  (drop concepts rarer than ``min_fraction`` of items and more frequent than
  ``max_fraction``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.data.vocabularies import build_domain_vocabulary


@dataclass
class ConceptSpace:
    """A concept vocabulary with community structure and a relation graph.

    Attributes
    ----------
    names:
        Concept strings, index-aligned with graph nodes.
    community_of:
        ``(K,)`` integer community id per concept.
    community_names:
        Community id -> human-readable name.
    adjacency:
        ``(K, K)`` symmetric 0/1 relation matrix (no self-loops).
    graph:
        The same relations as a :class:`networkx.Graph` (nodes are concept
        indices, ``name`` attribute holds the string).
    """

    names: list[str]
    community_of: np.ndarray
    community_names: list[str]
    adjacency: np.ndarray
    graph: nx.Graph = field(repr=False)

    @property
    def num_concepts(self) -> int:
        """Number of concepts ``K``."""
        return len(self.names)

    @property
    def num_edges(self) -> int:
        """Number of undirected relations."""
        return int(self.adjacency.sum() // 2)

    def index_of(self, name: str) -> int:
        """Index of a concept by its string name."""
        return self.names.index(name)

    def members(self, community: int) -> np.ndarray:
        """Concept indices belonging to ``community``."""
        return np.flatnonzero(self.community_of == community)

    def neighbors(self, concept: int) -> np.ndarray:
        """Graph neighbours of a concept index."""
        return np.flatnonzero(self.adjacency[concept])


def build_concept_space(domain: str, num_concepts: int, rng: np.random.Generator,
                        intra_chord_prob: float = 0.25,
                        inter_edge_prob: float = 0.02) -> ConceptSpace:
    """Build a community-structured concept relation graph.

    Within each community the concepts form a ring (guaranteeing
    connectivity) plus random chords with probability ``intra_chord_prob``;
    across communities random sparse edges appear with probability
    ``inter_edge_prob``.  The resulting edge density matches the paper's
    Table 4 regime (a few edges per concept).
    """
    vocabulary = build_domain_vocabulary(domain, num_concepts)
    names: list[str] = []
    community_of: list[int] = []
    community_names = list(vocabulary)
    for community_index, community in enumerate(community_names):
        for word in vocabulary[community]:
            names.append(word)
            community_of.append(community_index)
    community_arr = np.asarray(community_of, dtype=np.int64)
    total = len(names)

    adjacency = np.zeros((total, total), dtype=np.int8)
    for community_index in range(len(community_names)):
        members = np.flatnonzero(community_arr == community_index)
        size = len(members)
        if size >= 2:
            for position in range(size):
                a, b = members[position], members[(position + 1) % size]
                if a != b:
                    adjacency[a, b] = adjacency[b, a] = 1
        if size >= 3:
            chords = rng.random((size, size)) < intra_chord_prob
            for i in range(size):
                for j in range(i + 2, size):
                    if chords[i, j]:
                        adjacency[members[i], members[j]] = 1
                        adjacency[members[j], members[i]] = 1
    # Sparse inter-community relations.
    cross = rng.random((total, total)) < inter_edge_prob
    for i in range(total):
        for j in range(i + 1, total):
            if cross[i, j] and community_arr[i] != community_arr[j]:
                adjacency[i, j] = adjacency[j, i] = 1
    np.fill_diagonal(adjacency, 0)

    graph = nx.Graph()
    for index, name in enumerate(names):
        graph.add_node(index, name=name, community=int(community_arr[index]))
    edge_rows, edge_cols = np.nonzero(np.triu(adjacency))
    graph.add_edges_from(zip(edge_rows.tolist(), edge_cols.tolist()))

    return ConceptSpace(
        names=names,
        community_of=community_arr,
        community_names=community_names,
        adjacency=adjacency.astype(np.float32),
        graph=graph,
    )


def tokenize(text: str) -> list[str]:
    """Lower-case word tokenisation used by the extraction pipeline."""
    return [token for token in text.lower().replace(",", " ").replace(".", " ").split() if token]


def extract_concepts(descriptions: list[str], space: ConceptSpace,
                     min_fraction: float = 0.005,
                     max_fraction: float = 0.8) -> tuple[np.ndarray, np.ndarray]:
    """Map item descriptions to a multi-hot item-concept matrix ``E``.

    Follows §4.1 of the paper: keep only tokens present in the concept
    vocabulary, then drop concepts occurring in fewer than ``min_fraction``
    or more than ``max_fraction`` of the items (rare / domain-frequent
    concepts).

    Returns
    -------
    (matrix, kept)
        ``matrix`` is ``(num_items, K)`` over the *original* concept indices
        with filtered-out columns zeroed; ``kept`` is the boolean column
        mask, useful for re-indexing the concept space.
    """
    vocabulary_index = {name: i for i, name in enumerate(space.names)}
    matrix = np.zeros((len(descriptions), space.num_concepts), dtype=np.float32)
    for item, description in enumerate(descriptions):
        for token in tokenize(description):
            concept = vocabulary_index.get(token)
            if concept is not None:
                matrix[item, concept] = 1.0
    frequency = matrix.mean(axis=0)
    kept = (frequency >= min_fraction) & (frequency <= max_fraction)
    matrix[:, ~kept] = 0.0
    return matrix, kept


def restrict_concept_space(space: ConceptSpace, kept: np.ndarray) -> tuple[ConceptSpace, np.ndarray]:
    """Drop filtered concepts, re-indexing names, communities, and the graph.

    Returns the restricted space and the old->new index mapping (``-1`` for
    dropped concepts).
    """
    kept = np.asarray(kept, dtype=bool)
    new_index = np.full(space.num_concepts, -1, dtype=np.int64)
    new_index[kept] = np.arange(int(kept.sum()))
    names = [name for name, keep in zip(space.names, kept) if keep]
    community_of = space.community_of[kept]
    adjacency = space.adjacency[np.ix_(kept, kept)]
    graph = nx.Graph()
    for index, name in enumerate(names):
        graph.add_node(index, name=name, community=int(community_of[index]))
    rows, cols = np.nonzero(np.triu(adjacency))
    graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    restricted = ConceptSpace(
        names=names,
        community_of=community_of,
        community_names=space.community_names,
        adjacency=adjacency,
        graph=graph,
    )
    return restricted, new_index
