"""Preprocessing: 5-core filtering and the leave-one-out split (§4.1-4.2).

The paper removes all users and items with fewer than 5 records, then for
each user holds out the last item for testing and the second-to-last for
validation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def five_core(sequences: list[np.ndarray], num_items: int,
              min_user: int = 5, min_item: int = 5,
              return_users: bool = False):
    """Iteratively drop users/items with fewer than 5 interactions.

    Parameters
    ----------
    sequences:
        Per-user 1-indexed item-id arrays.
    num_items:
        Size of the original item universe.
    return_users:
        Also return the original indices of the surviving users (needed to
        align filtered data with per-user ground truth).

    Returns
    -------
    (filtered_sequences, item_map[, user_indices])
        ``item_map`` is a ``(num_items + 1,)`` array mapping original item
        ids to new contiguous 1-indexed ids (0 = dropped).  Users that fall
        below ``min_user`` are removed entirely; with ``return_users=True``
        the third element lists the surviving users' original indices in
        output order.
    """
    current = [np.asarray(seq, dtype=np.int64) for seq in sequences]
    user_indices = list(range(len(current)))
    alive_items = np.ones(num_items + 1, dtype=bool)
    alive_items[0] = False
    while True:
        counts = np.zeros(num_items + 1, dtype=np.int64)
        survivors: list[np.ndarray] = []
        surviving_users: list[int] = []
        for user, seq in zip(user_indices, current):
            seq = seq[alive_items[seq]]
            if len(seq) >= min_user:
                survivors.append(seq)
                surviving_users.append(user)
                np.add.at(counts, seq, 1)
        newly_dead = alive_items & (counts < min_item)
        newly_dead[0] = False
        current = survivors
        user_indices = surviving_users
        if not newly_dead.any():
            break
        alive_items &= ~newly_dead

    item_map = np.zeros(num_items + 1, dtype=np.int64)
    kept = np.flatnonzero(alive_items)
    item_map[kept] = np.arange(1, len(kept) + 1)
    remapped = [item_map[seq] for seq in current]
    if return_users:
        return remapped, item_map, np.asarray(user_indices, dtype=np.int64)
    return remapped, item_map


@dataclass
class LeaveOneOutSplit:
    """Per-user leave-one-out split (§4.2.1).

    For user ``u`` with sequence ``S_u``:

    - training sequence: ``S_u[:-2]``
    - validation: input ``S_u[:-2]``, target ``S_u[-2]``
    - test: input ``S_u[:-1]``, target ``S_u[-1]``
    """

    full_sequences: list[np.ndarray]

    def __post_init__(self):
        for u, seq in enumerate(self.full_sequences):
            if len(seq) < 3:
                raise ValueError(f"user {u} has fewer than 3 interactions; run five_core first")

    @property
    def num_users(self) -> int:
        """Number of users in the split."""
        return len(self.full_sequences)

    def train_sequence(self, user: int) -> np.ndarray:
        """``S_u[:-2]`` — the training portion."""
        return self.full_sequences[user][:-2]

    def train_sequences(self) -> list[np.ndarray]:
        """Training portions for every user."""
        return [seq[:-2] for seq in self.full_sequences]

    def valid_input(self, user: int) -> np.ndarray:
        """Model input when predicting the validation item."""
        return self.full_sequences[user][:-2]

    def test_input(self, user: int) -> np.ndarray:
        """Model input when predicting the test item."""
        return self.full_sequences[user][:-1]

    @property
    def valid_targets(self) -> np.ndarray:
        """Second-to-last item of every user."""
        return np.asarray([seq[-2] for seq in self.full_sequences], dtype=np.int64)

    @property
    def test_targets(self) -> np.ndarray:
        """Last item of every user."""
        return np.asarray([seq[-1] for seq in self.full_sequences], dtype=np.int64)

    def seen_items(self, user: int) -> set[int]:
        """Every item the user interacted with (used to exclude negatives)."""
        return set(int(i) for i in self.full_sequences[user])


def split_leave_one_out(sequences: list[np.ndarray]) -> LeaveOneOutSplit:
    """Build the leave-one-out split, dropping users that are too short."""
    usable = [np.asarray(seq, dtype=np.int64) for seq in sequences if len(seq) >= 3]
    if not usable:
        raise ValueError("no user has at least 3 interactions")
    return LeaveOneOutSplit(full_sequences=usable)


def sample_negatives(split: LeaveOneOutSplit, num_items: int, num_negatives: int = 100,
                     seed: int = 0, popularity: np.ndarray | None = None) -> np.ndarray:
    """Sample ``num_negatives`` unseen items per user (§4.2.1, following [5]).

    The paper follows BERT4Rec's protocol, where negatives are sampled
    *according to item popularity* so they are hard for popularity-driven
    scorers.  Pass ``popularity`` (a ``(num_items + 1,)`` count array, index
    0 ignored) to enable that; with ``None`` the sampling is uniform.

    Returns an ``(num_users, num_negatives)`` array of 1-indexed item ids.
    Raises if the item universe is too small to supply enough negatives.
    """
    rng = np.random.default_rng(seed)
    weights = None
    if popularity is not None:
        popularity = np.asarray(popularity, dtype=np.float64)
        if popularity.shape[0] != num_items + 1:
            raise ValueError(
                f"popularity must have num_items+1={num_items + 1} entries, "
                f"got {popularity.shape[0]}"
            )
        weights = popularity.copy()
        weights[0] = 0.0
    negatives = np.empty((split.num_users, num_negatives), dtype=np.int64)
    # One reusable buffer pair instead of a per-user arange + setdiff1d
    # (which re-sorts the whole item universe for every user).  Selecting
    # ``all_items[~seen_mask]`` yields the same sorted candidate array, so
    # the draws below are bit-identical for a given seed.
    all_items = np.arange(1, num_items + 1, dtype=np.int64)
    seen_mask = np.zeros(num_items + 1, dtype=bool)  # 1-indexed; slot 0 unused
    for user in range(split.num_users):
        sequence = split.full_sequences[user]
        seen_mask[sequence] = True
        candidates = all_items[~seen_mask[1:]]
        seen_mask[sequence] = False
        if len(candidates) < num_negatives:
            raise ValueError(
                f"user {user} has only {len(candidates)} unseen items; "
                f"cannot sample {num_negatives} negatives"
            )
        if weights is None:
            negatives[user] = rng.choice(candidates, size=num_negatives, replace=False)
        else:
            probabilities = weights[candidates] + 1e-12
            probabilities /= probabilities.sum()
            negatives[user] = rng.choice(candidates, size=num_negatives,
                                         replace=False, p=probabilities)
    return negatives
