"""Interaction dataset container and the statistics of Tables 3-4."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.concepts import ConceptSpace
from repro.data.graphs import (
    GraphStatistics,
    ItemKnowledgeGraph,
    SocialGraph,
    graph_statistics,
)


@dataclass
class DatasetStatistics:
    """The per-dataset columns of Table 3."""

    name: str
    num_users: int
    num_items: int
    num_interactions: int
    avg_length: float
    density: float

    def as_row(self) -> list:
        """Cells in Table 3 column order."""
        return [
            self.name,
            self.num_users,
            self.num_items,
            self.num_interactions,
            round(self.avg_length, 2),
            f"{100 * self.density:.2f}%",
        ]


@dataclass
class ConceptStatistics:
    """The per-dataset columns of Table 4."""

    name: str
    num_concepts: int
    num_edges: int
    avg_concepts_per_item: float

    def as_row(self) -> list:
        """Cells in Table 4 column order."""
        return [self.name, self.num_concepts, self.num_edges,
                round(self.avg_concepts_per_item, 2)]


@dataclass
class InteractionDataset:
    """Chronological user-item interactions with concept annotations.

    Conventions
    -----------
    - Items are **1-indexed**; id 0 is reserved for sequence padding.
    - ``sequences[u]`` is the chronologically ordered item-id array of user
      ``u`` (users are 0-indexed).
    - ``item_concepts`` has ``num_items + 1`` rows; row 0 (padding) is all
      zeros.  Columns align with ``concept_space.names``.
    - ``session_ids`` (optional) aligns positionally with ``sequences``:
      ``session_ids[u][t]`` is the session of user ``u``'s ``t``-th
      interaction.  Per user the ids start at 0 and are non-decreasing with
      unit steps, so sessions partition the stream into contiguous runs.
    - ``knowledge_graph`` / ``social_graph`` (optional) carry structural
      side information over the *filtered* id spaces: KG item entities are
      the dataset's 1-indexed item ids, social endpoints its 0-indexed
      users (``docs/graph-workloads.md``).
    """

    name: str
    sequences: list[np.ndarray]
    num_items: int
    item_concepts: np.ndarray
    concept_space: ConceptSpace
    item_titles: list[str] = field(default_factory=list, repr=False)
    session_ids: list[np.ndarray] | None = field(default=None, repr=False)
    knowledge_graph: ItemKnowledgeGraph | None = field(default=None, repr=False)
    social_graph: SocialGraph | None = field(default=None, repr=False)

    def __post_init__(self):
        if self.item_concepts.shape[0] != self.num_items + 1:
            raise ValueError(
                f"item_concepts must have num_items+1={self.num_items + 1} rows, "
                f"got {self.item_concepts.shape[0]}"
            )
        if np.any(self.item_concepts[0] != 0):
            raise ValueError("padding row 0 of item_concepts must be all zeros")
        for u, seq in enumerate(self.sequences):
            if len(seq) and (seq.min() < 1 or seq.max() > self.num_items):
                raise ValueError(f"user {u} has item ids outside [1, {self.num_items}]")
        if self.session_ids is not None:
            if len(self.session_ids) != len(self.sequences):
                raise ValueError(
                    f"session_ids covers {len(self.session_ids)} users, "
                    f"sequences has {len(self.sequences)}")
            for u, (seq, sessions) in enumerate(zip(self.sequences,
                                                    self.session_ids)):
                if len(sessions) != len(seq):
                    raise ValueError(
                        f"user {u}: {len(sessions)} session ids for "
                        f"{len(seq)} interactions")
                if len(sessions) == 0:
                    continue
                steps = np.diff(sessions)
                if sessions[0] != 0 or ((steps != 0) & (steps != 1)).any():
                    raise ValueError(
                        f"user {u}: session ids must start at 0 and increase "
                        f"in unit steps (contiguous sessions)")
        if (self.knowledge_graph is not None
                and self.knowledge_graph.num_items != self.num_items):
            raise ValueError(
                f"knowledge_graph covers {self.knowledge_graph.num_items} "
                f"items, dataset has {self.num_items}")
        if (self.social_graph is not None
                and self.social_graph.num_users != self.num_users):
            raise ValueError(
                f"social_graph covers {self.social_graph.num_users} users, "
                f"dataset has {self.num_users}")

    @property
    def num_users(self) -> int:
        """Number of users."""
        return len(self.sequences)

    @property
    def num_concepts(self) -> int:
        """Number of concepts ``K``."""
        return self.concept_space.num_concepts

    @property
    def num_interactions(self) -> int:
        """Total number of user-item interactions."""
        return int(sum(len(seq) for seq in self.sequences))

    @property
    def has_sessions(self) -> bool:
        """Whether the dataset carries per-interaction session annotations."""
        return self.session_ids is not None

    @property
    def num_sessions(self) -> int:
        """Total number of sessions across all users (0 without annotations)."""
        if self.session_ids is None:
            return 0
        return int(sum(int(sessions[-1]) + 1 for sessions in self.session_ids
                       if len(sessions)))

    @property
    def has_knowledge_graph(self) -> bool:
        """Whether the dataset carries an item knowledge graph."""
        return self.knowledge_graph is not None

    @property
    def has_social_graph(self) -> bool:
        """Whether the dataset carries a user social graph."""
        return self.social_graph is not None

    def graph_statistics(self) -> GraphStatistics:
        """Summary of the structural side information (zeros when absent)."""
        return graph_statistics(self.knowledge_graph, self.social_graph)

    def avg_session_length(self) -> float:
        """Mean interactions per session (0.0 without annotations)."""
        sessions = self.num_sessions
        return self.num_interactions / sessions if sessions else 0.0

    def item_popularity(self) -> np.ndarray:
        """Interaction count per item id (index 0 = padding, always 0)."""
        counts = np.zeros(self.num_items + 1, dtype=np.int64)
        for seq in self.sequences:
            np.add.at(counts, seq, 1)
        counts[0] = 0
        return counts

    def statistics(self) -> DatasetStatistics:
        """Compute the Table 3 row for this dataset."""
        interactions = self.num_interactions
        users = self.num_users
        items = self.num_items
        return DatasetStatistics(
            name=self.name,
            num_users=users,
            num_items=items,
            num_interactions=interactions,
            avg_length=interactions / max(users, 1),
            density=interactions / max(users * items, 1),
        )

    def concept_statistics(self) -> ConceptStatistics:
        """Compute the Table 4 row for this dataset."""
        per_item = self.item_concepts[1:].sum(axis=1)
        annotated = per_item[per_item > 0]
        avg = float(annotated.mean()) if len(annotated) else 0.0
        return ConceptStatistics(
            name=self.name,
            num_concepts=self.num_concepts,
            num_edges=self.concept_space.num_edges,
            avg_concepts_per_item=avg,
        )

    def concepts_of_item(self, item: int) -> list[str]:
        """Concept names attached to ``item`` (for explanations, Fig. 2)."""
        if not 1 <= item <= self.num_items:
            raise IndexError(f"item id {item} out of range [1, {self.num_items}]")
        indices = np.flatnonzero(self.item_concepts[item])
        return [self.concept_space.names[i] for i in indices]

    def title_of_item(self, item: int) -> str:
        """Human-readable item title (falls back to ``item#<id>``)."""
        if self.item_titles and 1 <= item <= self.num_items:
            return self.item_titles[item - 1]
        return f"item#{item}"
