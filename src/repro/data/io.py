"""Persist generated datasets to disk (``.npz``) and load them back.

Regenerating a profile is deterministic but not instant; persisting lets a
benchmark suite or a downstream user pin an exact dataset file.
"""

from __future__ import annotations

import json
from pathlib import Path

import networkx as nx
import numpy as np

from repro.data.concepts import ConceptSpace
from repro.data.dataset import InteractionDataset
from repro.data.graphs import ItemKnowledgeGraph, SocialGraph

_FORMAT_VERSION = 1


def save_dataset(dataset: InteractionDataset, path: str | Path) -> Path:
    """Write ``dataset`` to an ``.npz`` archive; returns the path written."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    lengths = np.asarray([len(seq) for seq in dataset.sequences], dtype=np.int64)
    flat = (np.concatenate(dataset.sequences)
            if dataset.sequences else np.empty(0, dtype=np.int64))
    meta_payload = {
        "version": _FORMAT_VERSION,
        "name": dataset.name,
        "num_items": dataset.num_items,
        "concept_names": dataset.concept_space.names,
        "community_names": dataset.concept_space.community_names,
        "item_titles": dataset.item_titles,
    }
    if dataset.knowledge_graph is not None:
        kg = dataset.knowledge_graph
        meta_payload["knowledge_graph"] = {
            "num_entities": kg.num_entities,
            "num_relations": kg.num_relations,
            "relation_names": list(kg.relation_names),
            "entity_names": list(kg.entity_names),
        }
    if dataset.social_graph is not None:
        meta_payload["social_graph"] = {
            "num_users": dataset.social_graph.num_users,
        }
    meta = json.dumps(meta_payload)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = dict(
        meta=np.frombuffer(meta.encode("utf-8"), dtype=np.uint8),
        sequence_lengths=lengths,
        interactions=flat,
        item_concepts=dataset.item_concepts,
        concept_adjacency=dataset.concept_space.adjacency,
        community_of=dataset.concept_space.community_of,
    )
    if dataset.session_ids is not None:
        # Optional key: files written without sessions stay loadable and
        # pre-session files simply lack it.
        arrays["session_ids_flat"] = (
            np.concatenate(dataset.session_ids)
            if dataset.session_ids else np.empty(0, dtype=np.int64))
    # Same optional-key pattern for the structural side information.
    if dataset.knowledge_graph is not None:
        arrays["kg_triples"] = dataset.knowledge_graph.triples
    if dataset.social_graph is not None:
        arrays["social_edges"] = dataset.social_graph.edges
    np.savez(path, **arrays)
    return path


def load_dataset_file(path: str | Path) -> InteractionDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset file version {meta.get('version')!r}"
            )
        lengths = archive["sequence_lengths"]
        flat = archive["interactions"]
        item_concepts = archive["item_concepts"]
        adjacency = archive["concept_adjacency"]
        community_of = archive["community_of"]
        sessions_flat = (archive["session_ids_flat"]
                         if "session_ids_flat" in archive else None)
        kg_triples = (archive["kg_triples"].copy()
                      if "kg_triples" in archive else None)
        social_edges = (archive["social_edges"].copy()
                        if "social_edges" in archive else None)

    sequences: list[np.ndarray] = []
    session_ids: list[np.ndarray] | None = (
        [] if sessions_flat is not None else None)
    cursor = 0
    for length in lengths:
        sequences.append(flat[cursor:cursor + int(length)].copy())
        if session_ids is not None:
            session_ids.append(sessions_flat[cursor:cursor + int(length)].copy())
        cursor += int(length)

    graph = nx.Graph()
    for index, name in enumerate(meta["concept_names"]):
        graph.add_node(index, name=name, community=int(community_of[index]))
    rows, cols = np.nonzero(np.triu(adjacency))
    graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    space = ConceptSpace(
        names=list(meta["concept_names"]),
        community_of=community_of,
        community_names=list(meta["community_names"]),
        adjacency=adjacency.astype(np.float32),
        graph=graph,
    )
    knowledge_graph = None
    if kg_triples is not None:
        kg_meta = meta.get("knowledge_graph", {})
        knowledge_graph = ItemKnowledgeGraph(
            triples=kg_triples,
            num_items=int(meta["num_items"]),
            num_entities=int(kg_meta["num_entities"]),
            num_relations=int(kg_meta["num_relations"]),
            relation_names=list(kg_meta.get("relation_names", [])),
            entity_names=list(kg_meta.get("entity_names", [])),
        )
    social_graph = None
    if social_edges is not None:
        social_meta = meta.get("social_graph", {})
        social_graph = SocialGraph(
            edges=social_edges,
            num_users=int(social_meta.get("num_users", len(sequences))),
        )
    return InteractionDataset(
        name=meta["name"],
        sequences=sequences,
        num_items=int(meta["num_items"]),
        item_concepts=item_concepts.astype(np.float32),
        concept_space=space,
        item_titles=list(meta["item_titles"]),
        session_ids=session_ids,
        knowledge_graph=knowledge_graph,
        social_graph=social_graph,
    )
