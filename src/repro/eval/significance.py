"""Paired significance testing between two evaluated models.

The evaluator shares candidate lists across models, so per-user ranks are
*paired*; the right test for "model A beats model B" is therefore a paired
bootstrap (or sign test) over users.  This module implements both for any
of the Table 2 metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.metrics import hit_rate_at_k, mean_reciprocal_rank, ndcg_at_k

_METRICS = {
    "HR@1": lambda ranks: hit_rate_at_k(ranks, 1),
    "HR@5": lambda ranks: hit_rate_at_k(ranks, 5),
    "HR@10": lambda ranks: hit_rate_at_k(ranks, 10),
    "NDCG@5": lambda ranks: ndcg_at_k(ranks, 5),
    "NDCG@10": lambda ranks: ndcg_at_k(ranks, 10),
    "MRR": mean_reciprocal_rank,
}


@dataclass
class SignificanceResult:
    """Outcome of a paired bootstrap comparison on one metric."""

    metric: str
    value_a: float
    value_b: float
    difference: float
    p_value: float
    num_users: int

    @property
    def significant(self) -> bool:
        """Two-sided significance at the conventional 0.05 level."""
        return self.p_value < 0.05

    def summary(self) -> str:
        """One-line human-readable outcome."""
        verdict = "significant" if self.significant else "not significant"
        return (f"{self.metric}: A={self.value_a:.4f} B={self.value_b:.4f} "
                f"diff={self.difference:+.4f} p={self.p_value:.4f} ({verdict})")


def paired_bootstrap(ranks_a: np.ndarray, ranks_b: np.ndarray,
                     metric: str = "HR@10", num_samples: int = 2000,
                     seed: int = 0) -> SignificanceResult:
    """Two-sided paired bootstrap p-value for metric(A) - metric(B).

    Parameters
    ----------
    ranks_a / ranks_b:
        Per-user ground-truth ranks from
        :func:`repro.analysis.rank_distribution`, evaluated on the *same*
        evaluator (paired candidates).
    metric:
        One of HR@1/5/10, NDCG@5/10, MRR.
    """
    if metric not in _METRICS:
        raise KeyError(f"unknown metric {metric!r}; choose from {sorted(_METRICS)}")
    ranks_a = np.asarray(ranks_a)
    ranks_b = np.asarray(ranks_b)
    if ranks_a.shape != ranks_b.shape:
        raise ValueError(
            f"rank arrays must be paired; got shapes {ranks_a.shape} vs {ranks_b.shape}"
        )
    compute = _METRICS[metric]
    observed = compute(ranks_a) - compute(ranks_b)
    rng = np.random.default_rng(seed)
    num_users = len(ranks_a)
    extreme = 0
    for _ in range(num_samples):
        index = rng.integers(0, num_users, size=num_users)
        resampled = compute(ranks_a[index]) - compute(ranks_b[index])
        # Count bootstrap differences on the opposite side of zero.
        if observed >= 0 and resampled <= 0:
            extreme += 1
        elif observed < 0 and resampled >= 0:
            extreme += 1
    p_value = min(1.0, 2.0 * (extreme + 1) / (num_samples + 1))
    return SignificanceResult(
        metric=metric,
        value_a=compute(ranks_a),
        value_b=compute(ranks_b),
        difference=observed,
        p_value=p_value,
        num_users=num_users,
    )


def sign_test(ranks_a: np.ndarray, ranks_b: np.ndarray) -> float:
    """Two-sided sign-test p-value on per-user rank improvements.

    Counts users where A ranks the ground truth strictly better than B
    (ties dropped) and tests against a fair coin with a normal
    approximation to the binomial.
    """
    ranks_a = np.asarray(ranks_a, dtype=np.int64)
    ranks_b = np.asarray(ranks_b, dtype=np.int64)
    if ranks_a.shape != ranks_b.shape:
        raise ValueError("rank arrays must be paired")
    wins = int((ranks_a < ranks_b).sum())
    losses = int((ranks_a > ranks_b).sum())
    decisive = wins + losses
    if decisive == 0:
        return 1.0
    # Normal approximation with continuity correction.
    mean = decisive / 2.0
    std = np.sqrt(decisive) / 2.0
    z = (abs(wins - mean) - 0.5) / std if std > 0 else 0.0
    from scipy.stats import norm

    return float(2.0 * (1.0 - norm.cdf(max(z, 0.0))))
