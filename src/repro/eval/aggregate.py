"""Aggregate metric reports over repeated runs (seeds).

At miniature scale the run-to-run standard error of HR@10 is a few points
(see docs/reproduction-notes.md), so serious comparisons should average
over seeds.  :func:`aggregate_reports` turns a list of
:class:`~repro.eval.MetricReport` into mean and standard-deviation reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.eval.metrics import MetricReport


@dataclass
class AggregateReport:
    """Mean and standard deviation over repeated evaluations."""

    mean: MetricReport
    std: MetricReport
    reports: list[MetricReport] = field(default_factory=list)

    @property
    def num_runs(self) -> int:
        """Number of aggregated runs."""
        return len(self.reports)

    def formatted(self, metric: str, digits: int = 4) -> str:
        """``mean ± std`` string for one metric."""
        return (f"{self.mean[metric]:.{digits}f}"
                f" ± {self.std[metric]:.{digits}f}")


def aggregate_reports(reports: list[MetricReport]) -> AggregateReport:
    """Combine per-seed reports into mean/std summaries."""
    if not reports:
        raise ValueError("aggregate_reports needs at least one report")
    stacked = {metric: np.asarray([report[metric] for report in reports])
               for metric in MetricReport.metric_names()}
    mean = MetricReport(*[float(stacked[m].mean())
                          for m in MetricReport.metric_names()])
    std = MetricReport(*[float(stacked[m].std(ddof=1)) if len(reports) > 1 else 0.0
                         for m in MetricReport.metric_names()])
    return AggregateReport(mean=mean, std=std, reports=list(reports))
