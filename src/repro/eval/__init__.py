"""Evaluation: ranking metrics (Eq. 15-17) and the leave-one-out protocol."""

from repro.eval.metrics import (
    MetricReport,
    hit_rate_at_k,
    mean_reciprocal_rank,
    ndcg_at_k,
    ranks_from_scores,
)
from repro.eval.aggregate import AggregateReport, aggregate_reports
from repro.eval.evaluator import RankingEvaluator, evaluate_model
from repro.eval.session import SessionEvaluator, SessionReport, session_split
from repro.eval.significance import SignificanceResult, paired_bootstrap, sign_test

__all__ = [
    "AggregateReport",
    "aggregate_reports",
    "SignificanceResult",
    "paired_bootstrap",
    "sign_test",
    "MetricReport",
    "hit_rate_at_k",
    "ndcg_at_k",
    "mean_reciprocal_rank",
    "ranks_from_scores",
    "RankingEvaluator",
    "evaluate_model",
    "SessionEvaluator",
    "SessionReport",
    "session_split",
]
