"""Ranking metrics of §4.2.2: HR@k, NDCG@k, MRR.

All metrics consume the 1-indexed *rank* of the single ground-truth item
among its 101 candidates (1 positive + 100 sampled negatives).  With a
single relevant item per user, HR@k equals Recall@k and NDCG@k reduces to
``1 / log2(rank + 1)`` when the item is ranked within the top ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def ranks_from_scores(scores: np.ndarray, positive_column: int = 0) -> np.ndarray:
    """Rank of the positive candidate within each row of ``scores``.

    Ties are broken pessimistically against the positive item (a negative
    scoring exactly the same counts as ranked above), which avoids
    over-stating metrics for models that emit constant scores.

    NaN scores are also ranked pessimistically: NaN compares neither ``>``
    nor ``==`` anything, so a naive comparison count would hand a
    diverged model emitting all-NaN rows rank 1 (HR@1 = 1.0).  Instead a
    NaN negative counts as ranked above the positive, and a NaN positive is
    ranked last in its row.  Infinities need no special casing — ordinary
    comparisons already order them.
    """
    scores = np.asarray(scores, dtype=np.float64)
    positive = scores[:, positive_column][:, None]
    better = (scores > positive).sum(axis=1)
    ties = (scores == positive).sum(axis=1) - 1  # exclude the positive itself
    nan_scores = np.isnan(scores)
    if nan_scores.any():
        positive_nan = nan_scores[:, positive_column]
        # Finite positive: every NaN negative counts as ranked above it.
        ranks = 1 + better + ties + nan_scores.sum(axis=1)
        # NaN positive: `>`/`==` both counted nothing (ties = -1); worst rank.
        return np.where(positive_nan, scores.shape[1], ranks)
    return 1 + better + ties


def hit_rate_at_k(ranks: np.ndarray, k: int) -> float:
    """Fraction of users whose ground-truth item ranks within the top ``k``."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    ranks = np.asarray(ranks)
    return float((ranks <= k).mean())


def ndcg_at_k(ranks: np.ndarray, k: int) -> float:
    """NDCG@k with a single relevant item: ``1/log2(rank+1)`` if rank <= k."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    ranks = np.asarray(ranks, dtype=np.float64)
    gains = np.where(ranks <= k, 1.0 / np.log2(ranks + 1.0), 0.0)
    return float(gains.mean())


def mean_reciprocal_rank(ranks: np.ndarray) -> float:
    """Mean of ``1/rank`` over users (Eq. 17)."""
    ranks = np.asarray(ranks, dtype=np.float64)
    return float((1.0 / ranks).mean())


@dataclass
class MetricReport:
    """The six metric columns the paper reports in Table 2."""

    hr1: float
    hr5: float
    hr10: float
    ndcg5: float
    ndcg10: float
    mrr: float

    @classmethod
    def from_ranks(cls, ranks: np.ndarray) -> "MetricReport":
        """Compute all six metrics from per-user ranks."""
        return cls(
            hr1=hit_rate_at_k(ranks, 1),
            hr5=hit_rate_at_k(ranks, 5),
            hr10=hit_rate_at_k(ranks, 10),
            ndcg5=ndcg_at_k(ranks, 5),
            ndcg10=ndcg_at_k(ranks, 10),
            mrr=mean_reciprocal_rank(ranks),
        )

    def as_dict(self) -> dict[str, float]:
        """Metrics keyed by their Table 2 column names."""
        return {
            "HR@1": self.hr1,
            "HR@5": self.hr5,
            "HR@10": self.hr10,
            "NDCG@5": self.ndcg5,
            "NDCG@10": self.ndcg10,
            "MRR": self.mrr,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, float]) -> "MetricReport":
        """Inverse of :meth:`as_dict` (used by sweep-resume checkpoints)."""
        return cls(
            hr1=float(payload["HR@1"]),
            hr5=float(payload["HR@5"]),
            hr10=float(payload["HR@10"]),
            ndcg5=float(payload["NDCG@5"]),
            ndcg10=float(payload["NDCG@10"]),
            mrr=float(payload["MRR"]),
        )

    def __getitem__(self, key: str) -> float:
        return self.as_dict()[key]

    @staticmethod
    def metric_names() -> list[str]:
        """Column names in the paper's order."""
        return ["HR@1", "HR@5", "HR@10", "NDCG@5", "NDCG@10", "MRR"]
