"""Session-aware evaluation: boundary-respecting split + per-session metrics.

Sequential recommenders are usually scored with a flat leave-one-out
protocol, but session-structured data (see ``docs/training-objectives.md``)
has two qualitatively different prediction problems:

- **boundary** points — the first item of a session, where the latent intent
  has just shifted and the model must extrapolate a transition;
- **within** points — later items of a session, where the intent is coherent
  with the immediately preceding interactions.

:func:`session_split` builds a leave-one-out split whose held-out items
never straddle a session boundary (the test target is always a session
*opener*), and :class:`SessionEvaluator` ranks every item of each user's
final session separately for the two groups, reporting per-group HR/NDCG/MRR
alongside the overall numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.batching import pad_left, session_starts
from repro.data.dataset import InteractionDataset
from repro.data.preprocessing import LeaveOneOutSplit
from repro.eval.metrics import MetricReport, ranks_from_scores


def session_split(dataset: InteractionDataset,
                  min_train: int = 2) -> LeaveOneOutSplit:
    """Leave-the-last-session-opener-out split.

    For each user the sequence is truncated at ``b``, the start of their
    *last* session: the test target is ``seq[b]`` (the session opener, so
    the held-out transition respects the boundary), validation holds out
    ``seq[b - 1]`` (the previous session's closer), and everything earlier
    is training data.  Users with a single session, or with fewer than
    ``min_train`` interactions before the boundary, are dropped.
    """
    if dataset.session_ids is None:
        raise ValueError(
            f"dataset {dataset.name!r} has no session annotations; generate "
            f"with session emission enabled (e.g. load_dataset(sessions=True))")
    kept: list[np.ndarray] = []
    for seq, sessions in zip(dataset.sequences, dataset.session_ids):
        starts = session_starts(sessions)
        if len(starts) < 2:
            continue  # single session: no boundary to hold out
        boundary = int(starts[-1])
        if boundary < min_train:
            continue
        kept.append(seq[:boundary + 1])
    if not kept:
        raise ValueError(
            "no user has enough sessions/history for a session split")
    return LeaveOneOutSplit(full_sequences=kept)


@dataclass
class SessionReport:
    """Per-group ranking metrics over the held-out final sessions.

    ``boundary``/``within`` are ``None`` when the corresponding group is
    empty (e.g. every final session has a single item leaves no within
    points).
    """

    overall: MetricReport
    boundary: MetricReport | None
    within: MetricReport | None
    num_boundary: int
    num_within: int

    def as_dict(self) -> dict:
        """JSON-able form (stored in experiment-run ``extras``)."""
        return {
            "overall": self.overall.as_dict(),
            "boundary": None if self.boundary is None else self.boundary.as_dict(),
            "within": None if self.within is None else self.within.as_dict(),
            "num_boundary": int(self.num_boundary),
            "num_within": int(self.num_within),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SessionReport":
        """Inverse of :meth:`as_dict`."""
        def report(part):
            return None if part is None else MetricReport.from_dict(part)
        return cls(
            overall=MetricReport.from_dict(payload["overall"]),
            boundary=report(payload.get("boundary")),
            within=report(payload.get("within")),
            num_boundary=int(payload["num_boundary"]),
            num_within=int(payload["num_within"]),
        )


class SessionEvaluator:
    """Rank every held-out final-session item, grouped boundary vs within.

    For each user with at least two sessions and ``min_history`` items
    before the final session, the evaluation points are:

    - the **boundary** point: input ``seq[:b]``, target ``seq[b]`` (the
      final session's opener);
    - up to ``max_within_per_user`` **within** points: input ``seq[:j]``,
      target ``seq[j]`` for ``j > b`` inside the final session.

    Negatives are sampled once per user from the items the user never
    consumed (popularity-weighted when the dataset supplies counts) and
    shared by every model, so comparisons are paired exactly like
    :class:`repro.eval.RankingEvaluator`.
    """

    def __init__(self, dataset: InteractionDataset, num_negatives: int = 100,
                 seed: int = 0, max_within_per_user: int = 4,
                 min_history: int = 2):
        if dataset.session_ids is None:
            raise ValueError(
                f"dataset {dataset.name!r} has no session annotations")
        self.dataset = dataset
        self.seed = seed
        self.max_within_per_user = max_within_per_user
        self.min_history = min_history

        users: list[int] = []
        ends: list[int] = []
        is_boundary: list[bool] = []
        eligible: list[int] = []
        for user, (seq, sessions) in enumerate(zip(dataset.sequences,
                                                   dataset.session_ids)):
            starts = session_starts(sessions)
            if len(starts) < 2:
                continue
            boundary = int(starts[-1])
            if boundary < min_history:
                continue
            eligible.append(user)
            points = [boundary] + list(
                range(boundary + 1,
                      min(len(seq), boundary + 1 + max_within_per_user)))
            for end in points:
                users.append(user)
                ends.append(end)
                is_boundary.append(end == boundary)
        if not users:
            raise ValueError(
                "no user has enough sessions/history for session evaluation")
        self._users = np.asarray(users, dtype=np.int64)
        self._ends = np.asarray(ends, dtype=np.int64)
        self._is_boundary = np.asarray(is_boundary, dtype=bool)

        # Clamp shared negative count to what the tightest user can supply.
        max_seen = max(len(set(dataset.sequences[u].tolist()))
                       for u in eligible)
        self.num_negatives = min(num_negatives,
                                 max(dataset.num_items - max_seen, 1))
        self._negatives = self._sample_negatives(eligible)

    @property
    def num_points(self) -> int:
        """Total evaluation points across all users."""
        return len(self._users)

    def _sample_negatives(self, eligible: list[int]) -> dict[int, np.ndarray]:
        """Per-user unseen negatives, popularity-weighted like the paper."""
        rng = np.random.default_rng(self.seed)
        weights = self.dataset.item_popularity().astype(np.float64)
        all_items = np.arange(1, self.dataset.num_items + 1, dtype=np.int64)
        seen_mask = np.zeros(self.dataset.num_items + 1, dtype=bool)
        negatives: dict[int, np.ndarray] = {}
        for user in eligible:
            sequence = self.dataset.sequences[user]
            seen_mask[sequence] = True
            candidates = all_items[~seen_mask[1:]]
            seen_mask[sequence] = False
            probabilities = weights[candidates] + 1e-12
            probabilities /= probabilities.sum()
            negatives[user] = rng.choice(candidates, size=self.num_negatives,
                                         replace=False, p=probabilities)
        return negatives

    def evaluate(self, model, batch_size: int = 128) -> SessionReport:
        """Score every evaluation point and aggregate per group."""
        sequences = self.dataset.sequences
        inputs = pad_left(
            [sequences[u][:e] for u, e in zip(self._users, self._ends)],
            model.max_len)
        targets = np.asarray(
            [sequences[u][e] for u, e in zip(self._users, self._ends)],
            dtype=np.int64)
        candidates = np.concatenate(
            [targets[:, None],
             np.stack([self._negatives[int(u)] for u in self._users])],
            axis=1)
        scores = np.empty_like(candidates, dtype=np.float64)
        for start in range(0, len(targets), batch_size):
            stop = start + batch_size
            batch_scores = np.asarray(model.score(
                self._users[start:stop], inputs[start:stop],
                candidates[start:stop]))
            expected = candidates[start:stop].shape
            if batch_scores.shape != expected:
                raise ValueError(
                    f"model.score returned shape {batch_scores.shape}, "
                    f"expected {expected}")
            scores[start:stop] = batch_scores
        ranks = ranks_from_scores(scores, positive_column=0)
        boundary_ranks = ranks[self._is_boundary]
        within_ranks = ranks[~self._is_boundary]
        return SessionReport(
            overall=MetricReport.from_ranks(ranks),
            boundary=(MetricReport.from_ranks(boundary_ranks)
                      if len(boundary_ranks) else None),
            within=(MetricReport.from_ranks(within_ranks)
                    if len(within_ranks) else None),
            num_boundary=int(len(boundary_ranks)),
            num_within=int(len(within_ranks)),
        )
