"""Leave-one-out ranking evaluation (§4.2.1).

For each user the evaluator builds a 101-item candidate list (the held-out
ground truth plus 100 sampled negatives), asks the model to score it, and
aggregates HR/NDCG/MRR over users.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.data.batching import evaluation_inputs
from repro.data.preprocessing import LeaveOneOutSplit, sample_negatives
from repro.eval.metrics import MetricReport, ranks_from_scores


class RankingEvaluator:
    """Reusable evaluator bound to a dataset split.

    Negatives are sampled once per (stage, seed) and shared by every model
    so comparisons are paired, matching how published comparisons are run.
    """

    def __init__(self, split: LeaveOneOutSplit, num_items: int,
                 num_negatives: int = 100, seed: int = 0,
                 popularity: np.ndarray | None = None):
        self.split = split
        self.num_items = num_items
        self.num_negatives = num_negatives
        self.seed = seed
        self.popularity = popularity
        self._negatives: dict[str, np.ndarray] = {}

    def negatives(self, stage: str) -> np.ndarray:
        """``(num_users, num_negatives)`` negatives for ``stage``."""
        if stage not in ("valid", "test"):
            raise ValueError(f"stage must be 'valid' or 'test', got {stage!r}")
        if stage not in self._negatives:
            offset = 0 if stage == "valid" else 1
            self._negatives[stage] = sample_negatives(
                self.split, self.num_items, self.num_negatives,
                seed=self.seed + offset, popularity=self.popularity,
            )
        return self._negatives[stage]

    def candidates(self, stage: str) -> np.ndarray:
        """``(num_users, 1 + num_negatives)``: positive first, then negatives."""
        targets = self.split.valid_targets if stage == "valid" else self.split.test_targets
        return np.concatenate([targets[:, None], self.negatives(stage)], axis=1)

    def evaluate(self, model, stage: str = "test", batch_size: int = 128) -> MetricReport:
        """Score candidates with ``model`` and compute the Table 2 metrics.

        ``model`` must implement ``score(users, inputs, candidates)`` where
        ``inputs`` is a left-padded ``(batch, max_len)`` item matrix and the
        return value is ``(batch, num_candidates)``.

        With telemetry enabled (``repro.obs``) every scoring batch emits an
        ``eval_batch`` record (latency, candidates/s) and the whole pass a
        closing ``eval`` record.
        """
        inputs, _ = evaluation_inputs(self.split, stage, model.max_len)
        candidates = self.candidates(stage)
        users = np.arange(self.split.num_users)
        all_scores = np.empty_like(candidates, dtype=np.float64)
        telemetry = obs.telemetry_enabled()
        eval_start = time.perf_counter()
        with obs.profile("evaluate"):
            for start in range(0, len(users), batch_size):
                stop = start + batch_size
                if telemetry:
                    batch_start = time.perf_counter()
                scores = np.asarray(model.score(
                    users[start:stop], inputs[start:stop], candidates[start:stop]
                ))
                expected = candidates[start:stop].shape
                if scores.shape != expected:
                    raise ValueError(
                        f"model.score returned shape {scores.shape}, expected {expected}"
                    )
                all_scores[start:stop] = scores
                if telemetry:
                    seconds = time.perf_counter() - batch_start
                    per_s = scores.size / seconds if seconds > 0 else None
                    obs.emit("eval_batch", stage=stage,
                             model=getattr(model, "name", "model"),
                             users=int(scores.shape[0]),
                             candidates=int(scores.size),
                             seconds=round(seconds, 6),
                             candidates_per_s=(None if per_s is None
                                               else round(per_s, 1)))
                    obs.histogram("eval.batch_time_s").observe(seconds)
                    if per_s is not None:
                        obs.histogram("eval.candidates_per_s").observe(per_s)
            ranks = ranks_from_scores(all_scores, positive_column=0)
            report = MetricReport.from_ranks(ranks)
        if telemetry:
            total = time.perf_counter() - eval_start
            obs.counter("eval.passes").inc()
            obs.emit("eval", stage=stage, model=getattr(model, "name", "model"),
                     num_users=int(len(users)),
                     candidates=int(candidates.size),
                     seconds=round(total, 6),
                     candidates_per_s=(round(candidates.size / total, 1)
                                       if total > 0 else None),
                     hr10=report.hr10)
        return report


def evaluate_model(model, split: LeaveOneOutSplit, num_items: int,
                   stage: str = "test", num_negatives: int = 100,
                   seed: int = 0) -> MetricReport:
    """One-shot convenience wrapper around :class:`RankingEvaluator`."""
    evaluator = RankingEvaluator(split, num_items, num_negatives, seed)
    return evaluator.evaluate(model, stage=stage)
