"""The paper's primary contribution: the ISRec model and its components."""

from repro.core.config import ISRecConfig
from repro.core.encoder import IntentAwareEncoder
from repro.core.explain import IntentTrace, IntentTracer, StepExplanation
from repro.core.intent_decoder import IntentDecoder
from repro.core.intent_extraction import IntentExtractor
from repro.core.intent_transition import StructuredIntentTransition
from repro.core.isrec import ISRec
from repro.core.variants import VARIANT_NAMES, build_variant, variant_config

__all__ = [
    "ISRec",
    "ISRecConfig",
    "IntentAwareEncoder",
    "IntentExtractor",
    "StructuredIntentTransition",
    "IntentDecoder",
    "IntentTracer",
    "IntentTrace",
    "StepExplanation",
    "VARIANT_NAMES",
    "build_variant",
    "variant_config",
]
