"""Intent extraction (§3.4): from sequence states to multi-hot intentions.

For each position ``t`` the module computes the similarity between the
sequence representation ``x_t`` and every concept embedding ``c_k``
(cosine, Eq. 6 — inner product is available for the mode-collapse ablation)
and draws a multi-hot intention vector ``m_t`` with exactly ``lambda``
active concepts through the straight-through Gumbel-Softmax estimator
(Eq. 5).
"""

from __future__ import annotations

from repro.nn.gumbel import gumbel_top_k
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, is_inference_mode


class IntentExtractor(Module):
    """Compute intent similarities and sample the intention vector.

    Parameters
    ----------
    num_intents:
        ``lambda`` — concepts activated simultaneously.
    tau:
        Gumbel-Softmax temperature.
    similarity:
        ``"cosine"`` (paper default) or ``"dot"``.
    similarity_scale:
        Multiplier applied to similarities before the softmax; cosine values
        live in [-1, 1], so a moderate scale sharpens the distribution.
    """

    def __init__(self, num_intents: int, tau: float = 1.0,
                 similarity: str = "cosine", similarity_scale: float = 4.0,
                 gumbel_noise: bool = True):
        super().__init__()
        if similarity not in ("cosine", "dot"):
            raise ValueError(f"similarity must be 'cosine' or 'dot', got {similarity!r}")
        self.num_intents = num_intents
        self.tau = tau
        self.similarity = similarity
        self.similarity_scale = similarity_scale
        self.gumbel_noise = gumbel_noise

    def similarities(self, states: Tensor, concept_embedding: Tensor) -> Tensor:
        """``(batch, T, K)`` similarity of each state with each concept (Eq. 6)."""
        if self.similarity == "cosine":
            normalized_states = F.l2_normalize(states, axis=-1)
            normalized_concepts = F.l2_normalize(concept_embedding, axis=-1)
            return normalized_states @ normalized_concepts.T
        return states @ concept_embedding.T

    def forward(self, states: Tensor, concept_embedding: Tensor) -> tuple[Tensor, Tensor]:
        """Return ``(m_t, similarities)``.

        ``m_t`` is ``(batch, T, K)`` — hard multi-hot in the forward pass
        with Gumbel-Softmax gradients (noise only during training).
        """
        scores = self.similarities(states, concept_embedding) * self.similarity_scale
        noise = self.gumbel_noise and self.training and not is_inference_mode()
        intention = gumbel_top_k(scores, self.num_intents, tau=self.tau, noise=noise)
        return intention, scores
