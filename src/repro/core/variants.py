"""Ablation variants of ISRec used in Table 5.

- ``"isrec"``       — the full model.
- ``"w/o GNN"``     — no message passing: ``Z_{t+1} = Z_t``.
- ``"w/o GNN&Intent"`` — no intent modules at all: ``x_{t+1} = x_t``
  (a concept-augmented transformer, §3.9's degenerate case).

The concept-augmented baselines of Table 5 (``SASRec + concept`` and
``BERT4Rec + concept``) live in :mod:`repro.models`.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import ISRecConfig
from repro.core.isrec import ISRec
from repro.data.dataset import InteractionDataset

VARIANT_NAMES = ("isrec", "w/o GNN", "w/o GNN&Intent")


def variant_config(variant: str, base: ISRecConfig | None = None) -> ISRecConfig:
    """Derive the :class:`ISRecConfig` for a named ablation variant."""
    base = base or ISRecConfig()
    if variant == "isrec":
        return replace(base, use_intent=True, use_gnn=True)
    if variant == "w/o GNN":
        return replace(base, use_intent=True, use_gnn=False)
    if variant == "w/o GNN&Intent":
        return replace(base, use_intent=False, use_gnn=False)
    raise ValueError(f"unknown variant {variant!r}; choose from {VARIANT_NAMES}")


def build_variant(variant: str, dataset: InteractionDataset, max_len: int = 20,
                  base_config: ISRecConfig | None = None) -> ISRec:
    """Instantiate the named ISRec ablation variant for ``dataset``."""
    config = variant_config(variant, base_config)
    model = ISRec.from_dataset(dataset, max_len=max_len, config=config)
    model.name = f"ISRec ({variant})" if variant != "isrec" else "ISRec"
    return model
