"""Structured intent transition (§3.5): Eq. (7)-(10).

Builds the personalised intent feature matrix ``Z_t`` (per-concept MLPs of
the sequence state, masked by the intention vector, Eq. 8), propagates it
over the concept graph with a GCN (Eq. 9-10), and derives the next
intention vector ``m_{t+1}`` by keeping the ``lambda`` concepts with the
largest feature norms (the operator ``g``), via a straight-through top-k so
training stays end-to-end differentiable.
"""

from __future__ import annotations

import numpy as np

from repro.nn.graph import GCN, LearnedAdjacencyGCN
from repro.nn.gumbel import hard_top_k
from repro.nn.mlp import ConceptMLPBank
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class StructuredIntentTransition(Module):
    """Per-concept feature construction + GCN message passing.

    Parameters
    ----------
    adjacency:
        ``(K, K)`` concept relation matrix (the intention graph).
    dim:
        Sequence representation dimensionality ``d``.
    intent_dim:
        Intent feature dimensionality ``d'``.
    num_intents:
        ``lambda`` — active concepts kept after the transition.
    gcn_layers:
        Depth of the message-passing function ``F`` (Eq. 9).
    use_gnn:
        Ablation switch: when ``False`` the transition is the identity
        (``Z_{t+1} = Z_t``), the "w/o GNN" variant of Table 5.
    """

    def __init__(self, adjacency: np.ndarray, dim: int, intent_dim: int,
                 num_intents: int, gcn_layers: int = 2, use_gnn: bool = True,
                 mlp_hidden: int | None = None, tau: float = 1.0,
                 shared_mlp: bool = False, graph_mode: str = "fixed"):
        super().__init__()
        adjacency = np.asarray(adjacency, dtype=np.float32)
        self.num_concepts = adjacency.shape[0]
        self.intent_dim = intent_dim
        self.num_intents = num_intents
        self.use_gnn = use_gnn
        self.tau = tau
        # `shared_mlp` is an ablation: one MLP serves every concept instead
        # of the per-concept MLP_k of Eq. (8) (broadcast over the K axis).
        self.feature_bank = ConceptMLPBank(1 if shared_mlp else self.num_concepts,
                                           dim, intent_dim, hidden=mlp_hidden)
        if not use_gnn:
            self.gcn = None
        elif graph_mode == "fixed":
            self.gcn = GCN(adjacency, intent_dim, num_layers=gcn_layers)
        elif graph_mode == "learned":
            # §3.5 extension: learn the concept relations end-to-end,
            # initialised from the available graph.
            self.gcn = LearnedAdjacencyGCN(self.num_concepts, intent_dim,
                                           num_layers=gcn_layers,
                                           init_adjacency=adjacency)
        else:
            raise ValueError(
                f"graph_mode must be 'fixed' or 'learned', got {graph_mode!r}"
            )

    def intent_features(self, states: Tensor, intention: Tensor) -> Tensor:
        """Eq. (7-8): ``z_{t,k} = m_{t,k} * MLP_k(x_t)``, shape ``(B, T, K, d')``."""
        features = self.feature_bank(states)
        return features * intention.reshape(*intention.shape, 1)

    def transition(self, intent_features: Tensor) -> Tensor:
        """Eq. (9): ``Z_{t+1} = F(Z_t, A)`` (identity when ``use_gnn=False``)."""
        if self.gcn is None:
            return intent_features
        return self.gcn(intent_features)

    def next_intention(self, next_features: Tensor) -> Tensor:
        """Top-``lambda`` concepts by feature norm (§3.5, operator ``g``).

        Straight-through: forward pass is the exact hard multi-hot; the
        gradient flows through a softmax over the norms.  ``F.softmax``
        dispatches to the fused single-tape-node kernel
        (:mod:`repro.tensor.fused`), so the relaxation adds one tape node
        per step instead of four.
        """
        norms = ((next_features * next_features).sum(axis=-1) + 1e-8).sqrt()  # (B, T, K)
        soft = F.softmax(norms * (1.0 / self.tau), axis=-1)
        hard = hard_top_k(norms.data, self.num_intents)
        return soft + Tensor(hard - soft.data)

    def forward(self, states: Tensor, intention: Tensor) -> tuple[Tensor, Tensor]:
        """Full module: returns ``(Z_{t+1}, m_{t+1})``."""
        current = self.intent_features(states, intention)
        upcoming = self.transition(current)
        next_intention = self.next_intention(upcoming)
        return upcoming, next_intention
