"""Intent decoder (§3.6): Eq. (11)-(12).

The reverse of the feature construction: each concept's own MLP maps its
intent feature back to the sequence space; active concepts are summed into
the next sequence representation ``x_{t+1}``, which scores items through
the item embedding.
"""

from __future__ import annotations

from repro.nn.mlp import ConceptMLPBank
from repro.nn.module import Module
from repro.tensor.tensor import Tensor


class IntentDecoder(Module):
    """``x_{t+1} = sum_k m_{t+1,k} MLP'_k(z_{t+1,k})`` (Eq. 11)."""

    def __init__(self, num_concepts: int, intent_dim: int, dim: int,
                 mlp_hidden: int | None = None, shared_mlp: bool = False):
        super().__init__()
        # `shared_mlp` mirrors the ablation in the transition module: a
        # single reverse MLP broadcast over concepts instead of MLP'_k.
        self.decoder_bank = ConceptMLPBank(1 if shared_mlp else num_concepts,
                                           intent_dim, dim, hidden=mlp_hidden)

    def forward(self, next_features: Tensor, next_intention: Tensor) -> Tensor:
        """Map ``(B, T, K, d')`` features + ``(B, T, K)`` mask to ``(B, T, d)``."""
        decoded = self.decoder_bank.forward_per_bank(next_features)  # (B, T, K, d)
        weighted = decoded * next_intention.reshape(*next_intention.shape, 1)
        return weighted.sum(axis=-2)
