"""ISRec: the full Intention-aware Sequential Recommendation model (§3).

Pipeline per position ``t`` (Fig. 1):

1. :class:`~repro.core.encoder.IntentAwareEncoder` — ``X = encode(S_u)``
2. :class:`~repro.core.intent_extraction.IntentExtractor` — ``m_t ~ Gumbel(cos(x_t, C))``
3. :class:`~repro.core.intent_transition.StructuredIntentTransition` —
   ``Z_t = m_t * MLP(x_t)``; ``Z_{t+1} = GCN(Z_t, A)``; ``m_{t+1} = top-lambda(|Z_{t+1}|)``
4. :class:`~repro.core.intent_decoder.IntentDecoder` —
   ``x_{t+1} = sum_k m_{t+1,k} MLP'_k(z_{t+1,k})``

and finally ``p(v_{t+1}) = softmax(x_{t+1} V^T)`` (Eq. 12), trained with the
sequence NLL of Eq. (13)-(14) through the shared
:class:`~repro.models.base.SequenceRecommender` machinery.

Implementation note: a residual connection ``x_{t+1} <- x_{t+1} + x_t`` is
enabled by default (``ISRecConfig``-independent constructor flag).  The
paper trains at 40k-280k-user scale where the decode path alone has enough
signal; at our 1/100 scale the residual stabilises optimisation without
changing the model class — with the intent path zeroed it degenerates to
exactly the "w/o GNN&Intent" transformer variant, as §3.9 describes.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import ISRecConfig
from repro.core.encoder import IntentAwareEncoder
from repro.core.intent_decoder import IntentDecoder
from repro.core.intent_extraction import IntentExtractor
from repro.core.intent_transition import StructuredIntentTransition
from repro.data.dataset import InteractionDataset
from repro.models.base import SequenceRecommender
from repro.tensor.tensor import Tensor


class ISRec(SequenceRecommender):
    """Intention-aware sequential recommender with structured intent transition."""

    name = "ISRec"

    def __init__(self, num_items: int, item_concepts: np.ndarray,
                 concept_adjacency: np.ndarray, max_len: int = 20,
                 config: ISRecConfig | None = None, residual: bool = True):
        config = config or ISRecConfig()
        super().__init__(num_items, config.dim, max_len)
        item_concepts = np.asarray(item_concepts, dtype=np.float32)
        concept_adjacency = np.asarray(concept_adjacency, dtype=np.float32)
        if item_concepts.shape[1] != concept_adjacency.shape[0]:
            raise ValueError(
                f"item_concepts has {item_concepts.shape[1]} concepts but the "
                f"adjacency is {concept_adjacency.shape[0]}x{concept_adjacency.shape[1]}"
            )
        self.config = config
        self.residual = residual
        self.num_concepts = item_concepts.shape[1]
        self.item_concepts = item_concepts
        self.concept_adjacency = concept_adjacency
        self.encoder = IntentAwareEncoder(
            num_items, item_concepts, config.dim, max_len,
            num_layers=config.num_layers, num_heads=config.num_heads,
            dropout=config.dropout,
        )
        if config.use_intent:
            self.extractor = IntentExtractor(
                num_intents=min(config.num_intents, self.num_concepts),
                tau=config.tau, similarity=config.similarity,
                gumbel_noise=config.gumbel_noise,
            )
            self.transition = StructuredIntentTransition(
                concept_adjacency, config.dim, config.intent_dim,
                num_intents=min(config.num_intents, self.num_concepts),
                gcn_layers=config.gcn_layers, use_gnn=config.use_gnn,
                mlp_hidden=config.mlp_hidden, tau=config.tau,
                shared_mlp=config.shared_mlp, graph_mode=config.graph_mode,
            )
            self.decoder = IntentDecoder(self.num_concepts, config.intent_dim,
                                         config.dim, mlp_hidden=config.mlp_hidden,
                                         shared_mlp=config.shared_mlp)
        else:
            self.extractor = None
            self.transition = None
            self.decoder = None

    @classmethod
    def from_dataset(cls, dataset: InteractionDataset, max_len: int = 20,
                     config: ISRecConfig | None = None, **kwargs) -> "ISRec":
        """Build an ISRec sized for ``dataset`` (concept matrix + graph)."""
        return cls(dataset.num_items, dataset.item_concepts,
                   dataset.concept_space.adjacency, max_len=max_len,
                   config=config, **kwargs)

    # ------------------------------------------------------------------
    # Serving export protocol (repro.serve)
    # ------------------------------------------------------------------
    def export_config(self) -> tuple[dict, dict[str, np.ndarray]]:
        """``ISRecConfig`` fields + constructor flags, plus the concept data."""
        config = {
            "num_items": self.num_items,
            "max_len": self.max_len,
            "residual": self.residual,
            "config": dataclasses.asdict(self.config),
        }
        constants = {
            "item_concepts": self.item_concepts,
            "concept_adjacency": self.concept_adjacency,
        }
        return config, constants

    @classmethod
    def from_export_config(cls, config: dict,
                           constants: dict[str, np.ndarray]) -> "ISRec":
        """Rebuild an untrained instance from :meth:`export_config` output."""
        return cls(config["num_items"], constants["item_concepts"],
                   constants["concept_adjacency"], max_len=config["max_len"],
                   config=ISRecConfig(**config["config"]),
                   residual=config["residual"])

    # ------------------------------------------------------------------
    # Shared-table access for the SequenceRecommender machinery
    # ------------------------------------------------------------------
    @property
    def item_embedding(self):
        """Item table ``V`` shared between Eq. (1) and Eq. (12)."""
        return self.encoder.item_embedding

    # ------------------------------------------------------------------
    # Training hooks
    # ------------------------------------------------------------------
    def on_epoch_end(self, epoch: int) -> None:
        """Anneal the Gumbel temperature (when ``tau_anneal < 1``)."""
        if self.extractor is None or self.config.tau_anneal >= 1.0:
            return
        new_tau = max(self.config.tau_min,
                      self.extractor.tau * self.config.tau_anneal)
        self.extractor.tau = new_tau
        self.transition.tau = new_tau

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward_detailed(self, inputs: np.ndarray) -> dict[str, Tensor]:
        """Run the full pipeline and keep every intermediate (for Fig. 2).

        Returns a dict with keys ``states`` (``X``), and — when the intent
        modules are enabled — ``similarities``, ``intention`` (``m_t``),
        ``next_features`` (``Z_{t+1}``), ``next_intention`` (``m_{t+1}``),
        and ``output`` (``x_{t+1}``).
        """
        states = self.encoder(inputs)
        if self.extractor is None:
            return {"states": states, "output": states}
        intention, similarities = self.extractor(states, self.encoder.concept_embedding)
        next_features, next_intention = self.transition(states, intention)
        decoded = self.decoder(next_features, next_intention)
        output = decoded + states if self.residual else decoded
        return {
            "states": states,
            "similarities": similarities,
            "intention": intention,
            "next_features": next_features,
            "next_intention": next_intention,
            "output": output,
        }

    def sequence_output(self, inputs: np.ndarray) -> Tensor:
        """``x_{t+1}`` at every position (the state that scores items)."""
        return self.forward_detailed(inputs)["output"]
