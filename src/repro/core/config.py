"""Configuration for the ISRec model and its ablation variants."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ISRecConfig:
    """Hyper-parameters of ISRec (§3, §4.6).

    Attributes
    ----------
    dim:
        Item/concept/position embedding dimensionality ``d`` (Eq. 1).
    intent_dim:
        Intent feature dimensionality ``d'`` (Eq. 7); the paper finds 8 best
        (Fig. 3).
    num_intents:
        ``lambda`` — number of simultaneously activated concepts (Eq. 5 and
        the top-``lambda`` rule of §3.5); the paper finds 10 best (Fig. 4)
        with vocabularies of 96-592 concepts.  Our scaled-down concept
        vocabularies default to 5.
    num_layers / num_heads / dropout:
        Transformer encoder settings (two layers in the paper, §3.2).
    gcn_layers:
        Depth of the structured intent transition GCN (Eq. 10).
    tau:
        Gumbel-Softmax temperature (Eq. 5).
    similarity:
        ``"cosine"`` (paper's choice, avoids mode collapse) or ``"dot"``
        (the degenerate alternative, kept for the ablation bench).
    use_intent / use_gnn:
        Ablation switches: ``use_gnn=False`` freezes the transition
        (``Z_{t+1} = Z_t``, the "w/o GNN" row of Table 5);
        ``use_intent=False`` additionally bypasses intent extraction
        entirely (``x_{t+1} = x_t``, the "w/o GNN&Intent" row).
    gumbel_noise:
        Disable to use deterministic top-``lambda`` extraction during
        training (ablation bench).
    shared_mlp:
        Ablation: one MLP shared by all concepts instead of the per-concept
        banks of Eq. (8)/(11).
    graph_mode:
        ``"fixed"`` uses the given concept graph (the paper's default);
        ``"learned"`` enables the §3.5 extension that learns the relations
        end-to-end (initialised from the given graph).
    tau_anneal / tau_min:
        Optional per-epoch Gumbel temperature annealing:
        ``tau <- max(tau_min, tau * tau_anneal)`` after each training epoch
        (``tau_anneal=1`` disables it).
    """

    dim: int = 32
    intent_dim: int = 8
    num_intents: int = 5
    num_layers: int = 2
    num_heads: int = 2
    dropout: float = 0.1
    gcn_layers: int = 2
    tau: float = 1.0
    similarity: str = "cosine"
    use_intent: bool = True
    use_gnn: bool = True
    gumbel_noise: bool = True
    mlp_hidden: int | None = None
    shared_mlp: bool = False
    graph_mode: str = "fixed"
    tau_anneal: float = 1.0
    tau_min: float = 0.3

    def __post_init__(self):
        if self.similarity not in ("cosine", "dot"):
            raise ValueError(f"similarity must be 'cosine' or 'dot', got {self.similarity!r}")
        if self.num_intents <= 0:
            raise ValueError("num_intents (lambda) must be positive")
        if self.intent_dim <= 0 or self.dim <= 0:
            raise ValueError("dim and intent_dim must be positive")
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if self.graph_mode not in ("fixed", "learned"):
            raise ValueError(
                f"graph_mode must be 'fixed' or 'learned', got {self.graph_mode!r}"
            )
        if not 0.0 < self.tau_anneal <= 1.0:
            raise ValueError("tau_anneal must be in (0, 1] (1 disables annealing)")
        if not self.use_intent and self.use_gnn:
            # The transition operates on extracted intents; without the
            # extraction module there is nothing to transition.
            raise ValueError("use_gnn=True requires use_intent=True")
