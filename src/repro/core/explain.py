"""Explainability: the Fig. 2 showcases.

For a user's history the tracer reports, at every step, the *candidate*
intents (concepts most similar to the sequence state), the *activated*
intents ``m_t``, the *predicted next* intents ``m_{t+1}`` obtained through
the structured transition on the intention graph, and the top recommended
items — exactly the intermediate quantities the paper visualises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.isrec import ISRec
from repro.data.batching import pad_left
from repro.data.dataset import InteractionDataset
from repro.tensor.tensor import no_grad


@dataclass
class StepExplanation:
    """Intent bookkeeping for one position of a user's history."""

    position: int
    item: int
    item_title: str
    item_concepts: list[str]
    candidate_intents: list[str]
    activated_intents: list[str]
    next_intents: list[str]
    top_recommendations: list[tuple[int, str]]


@dataclass
class IntentTrace:
    """A full per-user explanation (one Fig. 2 column)."""

    user: int
    steps: list[StepExplanation] = field(default_factory=list)

    def render_dot(self, dataset, step_index: int = -1) -> str:
        """Graphviz DOT of the intention graph for one step (Fig. 2 panel).

        Activated intents are filled orange, predicted next intents are
        outlined orange, exactly like the paper's figure.  Render with any
        Graphviz tool (``dot -Tpng``); only the text is produced here.
        """
        step = self.steps[step_index]
        space = dataset.concept_space
        activated = set(step.activated_intents)
        upcoming = set(step.next_intents)
        lines = [f'graph intents_user{self.user}_step{step.position} {{',
                 '  layout=neato;',
                 '  node [shape=ellipse, fontsize=10];']
        for index, name in enumerate(space.names):
            style = []
            if name in activated:
                style.append('style=filled, fillcolor=orange')
            elif name in upcoming:
                style.append('color=orange, penwidth=2')
            attributes = f' [{", ".join(style)}]' if style else ""
            lines.append(f'  c{index} [label="{name}"]{attributes};')
        rows, cols = np.nonzero(np.triu(space.adjacency))
        for a, b in zip(rows.tolist(), cols.tolist()):
            lines.append(f"  c{a} -- c{b};")
        lines.append("}")
        return "\n".join(lines)

    def render(self) -> str:
        """Human-readable text rendering of the trace."""
        lines = [f"Intent trace for user {self.user}"]
        for step in self.steps:
            lines.append(f"  [{step.position}] item {step.item} ({step.item_title})")
            lines.append(f"      item concepts    : {', '.join(step.item_concepts) or '-'}")
            lines.append(f"      candidate intents: {', '.join(step.candidate_intents)}")
            lines.append(f"      activated intents: {', '.join(step.activated_intents)}")
            lines.append(f"      next intents     : {', '.join(step.next_intents)}")
            recs = ", ".join(f"{title}(#{item})" for item, title in step.top_recommendations)
            lines.append(f"      recommends       : {recs}")
        return "\n".join(lines)


class IntentTracer:
    """Produce :class:`IntentTrace` objects from a trained ISRec model."""

    def __init__(self, model: ISRec, dataset: InteractionDataset,
                 num_candidates: int = 6, num_recommendations: int = 3):
        if model.extractor is None:
            raise ValueError("intent tracing requires a model with intent modules enabled")
        self.model = model
        self.dataset = dataset
        self.num_candidates = num_candidates
        self.num_recommendations = num_recommendations

    def _concept_names(self, indices: np.ndarray) -> list[str]:
        return [self.dataset.concept_space.names[i] for i in indices]

    def trace(self, user: int, sequence: np.ndarray | None = None) -> IntentTrace:
        """Explain each position of ``sequence`` (defaults to the user's history)."""
        if sequence is None:
            sequence = self.dataset.sequences[user]
        sequence = np.asarray(sequence, dtype=np.int64)
        length = min(len(sequence), self.model.max_len)
        sequence = sequence[-length:]
        inputs = pad_left([sequence], self.model.max_len)

        self.model.eval()
        with no_grad():
            detail = self.model.forward_detailed(inputs)
            similarities = detail["similarities"].data[0]        # (T, K)
            intention = detail["intention"].data[0]              # (T, K)
            next_intention = detail["next_intention"].data[0]    # (T, K)
            logits = self.model.all_item_logits(detail["output"]).data[0]  # (T, V)

        trace = IntentTrace(user=user)
        offset = self.model.max_len - length
        for position in range(length):
            row = offset + position
            item = int(sequence[position])
            candidate_idx = np.argsort(-similarities[row])[: self.num_candidates]
            activated_idx = np.flatnonzero(intention[row] > 0.5)
            next_idx = np.flatnonzero(next_intention[row] > 0.5)
            top_items = np.argsort(-logits[row])[: self.num_recommendations]
            trace.steps.append(StepExplanation(
                position=position,
                item=item,
                item_title=self.dataset.title_of_item(item),
                item_concepts=self.dataset.concepts_of_item(item),
                candidate_intents=self._concept_names(candidate_idx),
                activated_intents=self._concept_names(activated_idx),
                next_intents=self._concept_names(next_idx),
                top_recommendations=[
                    (int(i), self.dataset.title_of_item(int(i))) for i in top_items
                ],
            ))
        return trace
