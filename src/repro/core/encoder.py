"""ISRec's Transformer-based encoder (§3.3).

The embedding submodule sums item, positional, and concept embeddings
(Eq. 1); the self-attention submodule is a causal transformer (Eq. 3-4,
footnote 2).  The concept table ``C`` is shared with the intent-extraction
module, exactly as in the paper where the same concept embeddings define
both Eq. (1) and the similarities of Eq. (6).
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.module import Module, Parameter
from repro.nn.transformer import TransformerEncoder
from repro.tensor.tensor import Tensor


class IntentAwareEncoder(Module):
    """Item + position + summed-concept embeddings -> causal transformer.

    Parameters
    ----------
    num_items:
        Item vocabulary size (ids are 1-indexed; 0 pads).
    item_concepts:
        ``(num_items + 1, K)`` multi-hot item-concept matrix ``E``.
    dim, max_len, num_layers, num_heads, dropout:
        Standard transformer settings.
    """

    def __init__(self, num_items: int, item_concepts: np.ndarray, dim: int,
                 max_len: int, num_layers: int = 2, num_heads: int = 2,
                 dropout: float = 0.1):
        super().__init__()
        item_concepts = np.asarray(item_concepts, dtype=np.float32)
        if item_concepts.shape[0] != num_items + 1:
            raise ValueError(
                f"item_concepts must have {num_items + 1} rows, got {item_concepts.shape[0]}"
            )
        self.num_items = num_items
        self.num_concepts = item_concepts.shape[1]
        self.dim = dim
        self.max_len = max_len
        self.item_concepts = item_concepts
        self.item_embedding = Embedding(num_items + 1, dim, padding_idx=0)
        self.concept_embedding = Parameter(init.normal((self.num_concepts, dim), std=0.02))
        self.position_embedding = Parameter(init.normal((max_len, dim), std=0.02))
        self.transformer = TransformerEncoder(dim, num_layers=num_layers,
                                              num_heads=num_heads, dropout=dropout,
                                              causal=True)
        self.dropout = Dropout(dropout)

    def embed(self, inputs: np.ndarray) -> Tensor:
        """Eq. (1): ``h_i = v_i + p_i + sum_{e_{i,j}=1} c_j``."""
        inputs = np.asarray(inputs)
        length = inputs.shape[1]
        if length > self.max_len:
            raise ValueError(f"input length {length} exceeds max_len {self.max_len}")
        item_part = self.item_embedding(inputs)
        concept_selector = Tensor(self.item_concepts[inputs])  # (B, T, K)
        concept_part = concept_selector @ self.concept_embedding
        position_part = self.position_embedding[-length:]
        return item_part + concept_part + position_part

    def forward(self, inputs: np.ndarray) -> Tensor:
        """Eq. (2-4): encode the behaviour sequence into ``X = H^L``."""
        hidden = self.dropout(self.embed(inputs))
        padding = np.asarray(inputs) == 0
        return self.transformer(hidden, key_padding_mask=padding)
