"""Layer normalisation."""

from __future__ import annotations

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.obs.registry import record_kernel_dispatch
from repro.tensor import fused
from repro.tensor.tensor import Tensor


class LayerNorm(Module):
    """Normalise the last dimension to zero mean / unit variance, then scale-shift.

    Matches the standard Transformer usage (applied after residual adds in
    the encoder of the paper, §3.3).  The forward runs through the fused
    single-tape-node kernel :func:`repro.tensor.fused.layer_norm` by
    default; the composed reference (≈9 tape nodes) stays selectable via
    ``fused.use_fused(False)``.
    """

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(init.ones((dim,)))
        self.beta = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        """Normalise the last axis, then apply the learned scale/shift."""
        if fused.fused_enabled():
            record_kernel_dispatch("layer_norm", True)
            return fused.layer_norm(x, self.gamma, self.beta, self.eps)
        record_kernel_dispatch("layer_norm", False)
        return self.forward_composed(x)

    def forward_composed(self, x: Tensor) -> Tensor:
        """Reference implementation built from tape primitives."""
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gamma + self.beta
