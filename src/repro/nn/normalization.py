"""Layer normalisation."""

from __future__ import annotations

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor


class LayerNorm(Module):
    """Normalise the last dimension to zero mean / unit variance, then scale-shift.

    Matches the standard Transformer usage (applied after residual adds in
    the encoder of the paper, §3.3).
    """

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(init.ones((dim,)))
        self.beta = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        """Normalise the last axis, then apply the learned scale/shift."""
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gamma + self.beta
