"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor.backend import active_backend
from repro.tensor.tensor import Tensor, is_inference_mode
from repro.utils.seeding import get_rng


class Dropout(Module):
    """Zero activations with probability ``p`` during training, scaled by ``1/(1-p)``.

    A no-op in eval mode, when ``p == 0``, or inside
    :func:`repro.tensor.inference_mode` — the serving stack must stay
    deterministic even when handed a model left in training mode.
    """

    def __init__(self, p: float = 0.1):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        """Apply inverted dropout (identity in eval mode)."""
        if not self.training or self.p == 0.0 or is_inference_mode():
            return x
        keep = 1.0 - self.p
        mask = (_uniform(x.shape, x.data.dtype) < keep).astype(x.data.dtype)
        mask *= 1.0 / keep
        return x * Tensor(mask)


def _uniform(shape: tuple[int, ...], dtype) -> "np.ndarray":
    """Uniform [0, 1) draws through the active backend's RNG path.

    The default backend draws float32 natively, halving the RNG bandwidth
    of every dropout mask on the (float32) training hot path.
    """
    return active_backend().random(get_rng(), shape, dtype)
