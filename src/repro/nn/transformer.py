"""Transformer encoder blocks (Eq. 3-4 with residuals, dropout, layer norm)."""

from __future__ import annotations

import numpy as np

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList
from repro.nn.normalization import LayerNorm
from repro.tensor.tensor import Tensor


class PositionwiseFeedForward(Module):
    """``FFN(x) = ReLU(x W1 + b1) W2 + b2`` (Eq. 4)."""

    def __init__(self, dim: int, hidden: int | None = None, dropout: float = 0.1):
        super().__init__()
        hidden = hidden or dim
        self.first = Linear(dim, hidden)
        self.second = Linear(hidden, dim)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        """Apply the position-wise feed-forward network."""
        return self.second(self.dropout(self.first(x).relu()))


class TransformerEncoderLayer(Module):
    """Self-attention + feed-forward with residual connections and layer norm.

    Uses post-norm placement as in the original Transformer / SASRec:
    ``x = LayerNorm(x + Dropout(SubLayer(x)))``.
    """

    def __init__(self, dim: int, num_heads: int = 2, hidden: int | None = None,
                 dropout: float = 0.1, causal: bool = True):
        super().__init__()
        self.attention = MultiHeadSelfAttention(dim, num_heads, dropout=dropout, causal=causal)
        self.feed_forward = PositionwiseFeedForward(dim, hidden, dropout=dropout)
        self.norm_attention = LayerNorm(dim)
        self.norm_feed_forward = LayerNorm(dim)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor, key_padding_mask: np.ndarray | None = None) -> Tensor:
        """Attention + FFN sub-layers with residuals and layer norm."""
        attended = self.attention(x, key_padding_mask=key_padding_mask)
        x = self.norm_attention(x + self.dropout(attended))
        transformed = self.feed_forward(x)
        return self.norm_feed_forward(x + self.dropout(transformed))


class TransformerEncoder(Module):
    """A stack of ``num_layers`` encoder layers (the paper uses two)."""

    def __init__(self, dim: int, num_layers: int = 2, num_heads: int = 2,
                 hidden: int | None = None, dropout: float = 0.1, causal: bool = True):
        super().__init__()
        self.layers = ModuleList([
            TransformerEncoderLayer(dim, num_heads, hidden, dropout, causal)
            for _ in range(num_layers)
        ])

    def forward(self, x: Tensor, key_padding_mask: np.ndarray | None = None) -> Tensor:
        """Apply every encoder layer in order."""
        for layer in self.layers:
            x = layer(x, key_padding_mask=key_padding_mask)
        return x
