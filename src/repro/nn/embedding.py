"""Embedding lookup tables."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor


class Embedding(Module):
    """Integer-index lookup into a trainable ``(num_embeddings, dim)`` table.

    Parameters
    ----------
    num_embeddings:
        Vocabulary size (row count).
    dim:
        Embedding dimensionality.
    padding_idx:
        Optional row that is initialised to zero and whose gradient is
        zeroed after every backward pass by the optimizer hook
        (convention: index 0 is the padding item in all recommenders here).
    """

    def __init__(self, num_embeddings: int, dim: int, padding_idx: int | None = None,
                 std: float = 0.02):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.padding_idx = padding_idx
        table = init.normal((num_embeddings, dim), std=std)
        if padding_idx is not None:
            table[padding_idx] = 0.0
        self.weight = Parameter(table)

    def forward(self, indices) -> Tensor:
        """Look up rows; ``indices`` may be a numpy array or integer Tensor."""
        if isinstance(indices, Tensor):
            indices = indices.data
        indices = np.asarray(indices)
        return self.weight[indices]

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.dim}, padding_idx={self.padding_idx})"


class MultiHotEmbedding(Module):
    """Sum of embedding rows selected by a sparse multi-hot matrix.

    Implements the concept-sum term of Eq. (1): for item ``i`` the encoder
    adds ``sum_{e_{i,j}=1} c_j``.  Evaluated as a (dense) matmul with the
    item-concept matrix so it stays differentiable w.r.t. the concept table.
    """

    def __init__(self, multi_hot: np.ndarray, dim: int, std: float = 0.02):
        super().__init__()
        self.multi_hot = np.asarray(multi_hot, dtype=np.float32)
        self.num_rows, self.num_concepts = self.multi_hot.shape
        self.dim = dim
        self.weight = Parameter(init.normal((self.num_concepts, dim), std=std))

    def forward(self, indices) -> Tensor:
        """Return summed concept embeddings for each item index."""
        if isinstance(indices, Tensor):
            indices = indices.data
        indices = np.asarray(indices)
        selector = Tensor(self.multi_hot[indices])
        return selector @ self.weight
