"""Parameter initialisers.

All initialisers draw from the global generator in :mod:`repro.utils.seeding`
so that :func:`repro.utils.set_seed` makes model construction deterministic.

The float dtype of every freshly initialised parameter comes from the
active compute backend (:func:`repro.tensor.backend.active_backend`):
float32 under the default backend, float64 under ``use_backend("float64")``
— this is what lets the backend benchmark build the *same* architecture at
two precisions and measure the train-step gap.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.backend import active_backend
from repro.utils.seeding import get_rng


def xavier_uniform(shape: tuple[int, ...], gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    Fan-in/fan-out are taken from the trailing two dimensions; leading
    dimensions (e.g. the per-concept bank dimension) are treated as batch.
    """
    if len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-2], shape[-1]
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return get_rng().uniform(-limit, limit, size=shape).astype(active_backend().dtype)


def normal(shape: tuple[int, ...], std: float = 0.02, mean: float = 0.0) -> np.ndarray:
    """Truncated-free normal initialisation (BERT-style ``std=0.02``)."""
    return (get_rng().normal(mean, std, size=shape)).astype(active_backend().dtype)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialisation."""
    return np.zeros(shape, dtype=active_backend().dtype)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-ones initialisation."""
    return np.ones(shape, dtype=active_backend().dtype)
