"""Gumbel-Softmax estimators for the discrete intention vector (Eq. 5).

The paper samples the multi-hot intention vector ``m_t`` from a categorical
distribution over concepts and trains through the discrete sample with the
Gumbel-Softmax estimator (Jang et al. 2016).  We implement the straight-
through variant generalised to ``lambda`` simultaneous activations: the
forward pass emits a hard multi-hot vector with exactly ``lambda`` ones; the
backward pass flows through the underlying softmax relaxation.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.utils.seeding import get_rng


def sample_gumbel(shape: tuple[int, ...], eps: float = 1e-10) -> np.ndarray:
    """Draw standard Gumbel(0, 1) noise."""
    uniform = get_rng().random(shape)
    return -np.log(-np.log(uniform + eps) + eps)


def hard_top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Multi-hot indicator of the ``k`` largest entries along the last axis.

    Mirrors the paper's operator ``g`` (§3.5): entry ``j`` is 1 iff
    ``scores[..., j]`` is at least the ``k``-th largest value in its row.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, scores.shape[-1])
    # argpartition picks exactly k indices, breaking ties arbitrarily but
    # deterministically, so each row always has exactly k ones.
    top_indices = np.argpartition(-scores, k - 1, axis=-1)[..., :k]
    hard = np.zeros_like(scores, dtype=np.float32)
    np.put_along_axis(hard, top_indices, 1.0, axis=-1)
    return hard


def gumbel_softmax(logits: Tensor, tau: float = 1.0, noise: bool = True) -> Tensor:
    """Relaxed one-hot sample: ``softmax((logits + Gumbel noise) / tau)``.

    The softmax runs through the fused kernel dispatched by ``F.softmax``
    (a single tape node; see :mod:`repro.tensor.fused`).
    """
    if tau <= 0:
        raise ValueError(f"temperature must be positive, got {tau}")
    perturbed = logits
    if noise:
        perturbed = perturbed + Tensor(sample_gumbel(logits.shape).astype(logits.data.dtype))
    return F.softmax(perturbed * (1.0 / tau), axis=-1)


def gumbel_top_k(logits: Tensor, k: int, tau: float = 1.0, noise: bool = True) -> Tensor:
    """Straight-through multi-hot sample with exactly ``k`` active entries.

    Forward value is the hard multi-hot vector of the ``k`` largest perturbed
    logits; the gradient is that of the Gumbel-Softmax relaxation (the hard
    component is treated as a constant offset).

    Parameters
    ----------
    logits:
        ``(..., K)`` similarity scores (cosine similarities in ISRec).
    k:
        Number of simultaneously active concepts (the paper's ``lambda``).
    tau:
        Softmax temperature of the relaxation.
    noise:
        Disable to obtain a deterministic top-``k`` (used at evaluation time).
    """
    soft = gumbel_softmax(logits, tau=tau, noise=noise)
    hard = hard_top_k(soft.data, k)
    # out = hard + soft - stop_gradient(soft): forward == hard, grad == soft.
    return soft + Tensor(hard - soft.data)
