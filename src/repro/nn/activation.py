"""Activation modules (functional forms live on :class:`Tensor`)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor.tensor import Tensor


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        """Apply ``max(x, 0)``."""
        return x.relu()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        """Apply ``1 / (1 + exp(-x))``."""
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        """Apply ``tanh(x)``."""
        return x.tanh()


class GELU(Module):
    """Gaussian error linear unit (tanh approximation, as used by BERT)."""

    _COEFF = float(np.sqrt(2.0 / np.pi))

    def forward(self, x: Tensor) -> Tensor:
        """Apply the tanh-approximated GELU."""
        inner = (x + x * x * x * 0.044715) * self._COEFF
        return x * (inner.tanh() + 1.0) * 0.5
