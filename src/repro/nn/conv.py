"""Horizontal and vertical convolutions for the Caser baseline.

Caser (Tang & Wang 2018) treats the embedding matrix of the last ``L`` items
as an ``L x d`` image.  *Horizontal* filters of height ``h`` slide over the
time axis spanning the full embedding width and are max-pooled over time;
*vertical* filters of width 1 span the full time axis, one per embedding
dimension column.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor, concatenate


class HorizontalConv(Module):
    """Horizontal convolution bank: one filter group per window height.

    Parameters
    ----------
    length:
        Sequence (image height) ``L``.
    dim:
        Embedding (image width) ``d``.
    heights:
        Window heights, e.g. ``(1, 2, 3)``.
    num_filters:
        Filters per height.  Output dimensionality is
        ``len(heights) * num_filters``.
    """

    def __init__(self, length: int, dim: int, heights=(1, 2, 3), num_filters: int = 4):
        super().__init__()
        self.length = length
        self.dim = dim
        self.heights = tuple(h for h in heights if h <= length)
        self.num_filters = num_filters
        self.weights: dict[int, Parameter] = {}
        self.biases: dict[int, Parameter] = {}
        for h in self.heights:
            weight = Parameter(init.xavier_uniform((h * dim, num_filters)))
            bias = Parameter(init.zeros((num_filters,)))
            # Register through __setattr__ so parameter discovery sees them.
            setattr(self, f"weight_h{h}", weight)
            setattr(self, f"bias_h{h}", bias)
            self.weights[h] = weight
            self.biases[h] = bias

    @property
    def output_dim(self) -> int:
        """Width of the pooled output."""
        return len(self.heights) * self.num_filters

    def forward(self, x: Tensor) -> Tensor:
        """Map ``(batch, length, dim)`` to ``(batch, output_dim)``."""
        batch = x.shape[0]
        pooled: list[Tensor] = []
        for h in self.heights:
            num_windows = self.length - h + 1
            # (num_windows, h) constant gather indices over the time axis.
            window_index = np.arange(num_windows)[:, None] + np.arange(h)[None, :]
            windows = x[:, window_index, :]  # (batch, num_windows, h, dim)
            flat = windows.reshape(batch, num_windows, h * self.dim)
            convolved = (flat @ self.weights[h] + self.biases[h]).relu()
            pooled.append(convolved.max(axis=1))  # (batch, num_filters)
        return concatenate(pooled, axis=-1)


class VerticalConv(Module):
    """Vertical convolution: ``num_filters`` weighted sums over the time axis."""

    def __init__(self, length: int, dim: int, num_filters: int = 2):
        super().__init__()
        self.length = length
        self.dim = dim
        self.num_filters = num_filters
        self.weight = Parameter(init.xavier_uniform((length, num_filters)))

    @property
    def output_dim(self) -> int:
        """Width of the flattened output."""
        return self.dim * self.num_filters

    def forward(self, x: Tensor) -> Tensor:
        """Map ``(batch, length, dim)`` to ``(batch, dim * num_filters)``."""
        batch = x.shape[0]
        mixed = x.transpose(0, 2, 1) @ self.weight  # (batch, dim, num_filters)
        return mixed.reshape(batch, self.dim * self.num_filters)
