"""Affine layers: :class:`Linear` and the per-concept :class:`LinearBank`."""

from __future__ import annotations

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor


class Linear(Module):
    """``y = x W + b`` with Xavier-initialised ``W`` of shape ``(in, out)``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Affine map of the last dimension."""
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class LinearBank(Module):
    """``K`` independent affine maps applied to the *same* input.

    This implements the per-concept MLPs of Eq. (8) and Eq. (11) in the
    paper: each of the ``K`` concepts owns its own weight matrix, but all of
    them read the same sequence representation.  The bank is evaluated as a
    single matmul with a ``(in, K * out)`` weight for efficiency, then
    reshaped to ``(..., K, out)``.
    """

    def __init__(self, num_banks: int, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.num_banks = num_banks
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((num_banks, in_features, out_features)))
        self.bias = Parameter(init.zeros((num_banks, out_features))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Map ``(..., in)`` to ``(..., K, out)``."""
        flat_weight = self.weight.transpose(1, 0, 2).reshape(
            self.in_features, self.num_banks * self.out_features
        )
        out = (x @ flat_weight).reshape(*x.shape[:-1], self.num_banks, self.out_features)
        if self.bias is not None:
            out = out + self.bias
        return out

    def forward_per_bank(self, z: Tensor) -> Tensor:
        """Map ``(..., K, in)`` to ``(..., K, out)`` where bank ``k`` reads slice ``k``.

        Used by the intent decoder (Eq. 11) where each concept's reverse MLP
        consumes that concept's own intent feature vector.
        """
        # (..., K, in) x (K, in, out) -> (..., K, out) via broadcast matmul:
        # reshape z to (..., K, 1, in) then matmul with (K, in, out).
        expanded = z.reshape(*z.shape[:-1], 1, z.shape[-1])
        out = (expanded @ self.weight).reshape(*z.shape[:-1], self.out_features)
        if self.bias is not None:
            out = out + self.bias
        return out
