"""Multi-head (self-)attention, causal or bidirectional.

Implements Eq. (3) of the paper.  SASRec and ISRec use the causal variant
(footnote 2: query ``i`` may only attend to keys ``j <= i``); BERT4Rec uses
the bidirectional variant.

The hot path (mask + softmax + weighted sum) runs through the fused
single-tape-node kernel :func:`repro.tensor.fused.attention` by default; the
original composed implementation remains selectable via
``fused.use_fused(False)`` and is what the fused kernel is verified against.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dropout import Dropout, _uniform
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.obs.registry import record_kernel_dispatch
from repro.tensor import functional as F
from repro.tensor import fused
from repro.tensor.tensor import Tensor, is_inference_mode

_NEG_INF = -1e9

_CAUSAL_MASK_CACHE: dict[int, np.ndarray] = {}


def causal_mask(length: int) -> np.ndarray:
    """Boolean ``(length, length)`` mask, ``True`` where attention is forbidden.

    Cached per ``length`` (every forward of every layer reuses the same
    array) and returned read-only so the shared buffer cannot be mutated.
    """
    mask = _CAUSAL_MASK_CACHE.get(length)
    if mask is None:
        mask = np.triu(np.ones((length, length), dtype=bool), k=1)
        mask.setflags(write=False)
        _CAUSAL_MASK_CACHE[length] = mask
    return mask


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads.

    Parameters
    ----------
    dim:
        Model dimensionality ``d`` (must be divisible by ``num_heads``).
    num_heads:
        Number of attention heads.
    dropout:
        Dropout on the attention weights.
    causal:
        When ``True``, position ``i`` can only attend to positions ``<= i``.
    """

    def __init__(self, dim: int, num_heads: int = 2, dropout: float = 0.1,
                 causal: bool = True):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.query = Linear(dim, dim)
        self.key = Linear(dim, dim)
        self.value = Linear(dim, dim)
        self.output = Linear(dim, dim)
        self.dropout = Dropout(dropout)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _forbidden_mask(self, batch: int, length: int,
                        key_padding_mask: np.ndarray | None) -> np.ndarray | None:
        """Mask broadcastable to the ``(B, h, T, T)`` scores, or ``None``.

        Without a padding mask this is just the precomputed ``(T, T)``
        causal mask (or nothing at all for the bidirectional variant) — the
        per-batch ``(B, 1, T, T)`` bool assembly only happens when padding
        actually requires it.
        """
        if key_padding_mask is None:
            return causal_mask(length) if self.causal else None
        forbidden = np.zeros((batch, 1, length, length), dtype=bool)
        if self.causal:
            forbidden |= causal_mask(length)[None, None]
        forbidden |= np.asarray(key_padding_mask, dtype=bool)[:, None, None, :]
        # Guard fully-masked rows (a padded query attending to nothing) by
        # letting them attend to themselves; their output is discarded anyway.
        fully_masked = forbidden.all(axis=-1, keepdims=True)
        if fully_masked.any():
            eye = np.eye(length, dtype=bool)[None, None]
            forbidden = forbidden & ~(fully_masked & eye)
        return forbidden

    def forward(self, x: Tensor, key_padding_mask: np.ndarray | None = None) -> Tensor:
        """Attend within each sequence of the ``(batch, length, dim)`` input.

        Parameters
        ----------
        key_padding_mask:
            Optional boolean ``(batch, length)`` array, ``True`` at padded
            positions which must never be attended to.
        """
        batch, length, _ = x.shape
        q = self._split_heads(self.query(x), batch, length)
        k = self._split_heads(self.key(x), batch, length)
        v = self._split_heads(self.value(x), batch, length)
        forbidden = self._forbidden_mask(batch, length, key_padding_mask)

        record_kernel_dispatch("attention", fused.fused_enabled())
        if fused.fused_enabled():
            dropout_mask = None
            if self.training and self.dropout.p > 0.0 and not is_inference_mode():
                keep = 1.0 - self.dropout.p
                shape = (batch, self.num_heads, length, length)
                dropout_mask = (
                    _uniform(shape, x.data.dtype) < keep
                ).astype(x.data.dtype)
                dropout_mask *= 1.0 / keep
            context = fused.attention(q, k, v, mask=forbidden, scale=self.scale,
                                      dropout_mask=dropout_mask)
        else:
            scores = (q @ k.transpose(0, 1, 3, 2)) * self.scale  # (B, h, T, T)
            if forbidden is not None:
                scores = F.masked_fill(scores, forbidden, _NEG_INF)
            weights = self.dropout(F.softmax(scores, axis=-1))
            context = weights @ v  # (B, h, T, head_dim)

        merged = context.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        return self.output(merged)
