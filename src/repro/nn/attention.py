"""Multi-head (self-)attention, causal or bidirectional.

Implements Eq. (3) of the paper.  SASRec and ISRec use the causal variant
(footnote 2: query ``i`` may only attend to keys ``j <= i``); BERT4Rec uses
the bidirectional variant.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

_NEG_INF = -1e9


def causal_mask(length: int) -> np.ndarray:
    """Boolean ``(length, length)`` mask, ``True`` where attention is forbidden."""
    return np.triu(np.ones((length, length), dtype=bool), k=1)


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads.

    Parameters
    ----------
    dim:
        Model dimensionality ``d`` (must be divisible by ``num_heads``).
    num_heads:
        Number of attention heads.
    dropout:
        Dropout on the attention weights.
    causal:
        When ``True``, position ``i`` can only attend to positions ``<= i``.
    """

    def __init__(self, dim: int, num_heads: int = 2, dropout: float = 0.1,
                 causal: bool = True):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.query = Linear(dim, dim)
        self.key = Linear(dim, dim)
        self.value = Linear(dim, dim)
        self.output = Linear(dim, dim)
        self.dropout = Dropout(dropout)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, key_padding_mask: np.ndarray | None = None) -> Tensor:
        """Attend within each sequence of the ``(batch, length, dim)`` input.

        Parameters
        ----------
        key_padding_mask:
            Optional boolean ``(batch, length)`` array, ``True`` at padded
            positions which must never be attended to.
        """
        batch, length, _ = x.shape
        q = self._split_heads(self.query(x), batch, length)
        k = self._split_heads(self.key(x), batch, length)
        v = self._split_heads(self.value(x), batch, length)

        scores = (q @ k.transpose(0, 1, 3, 2)) * self.scale  # (B, h, T, T)

        forbidden = np.zeros((batch, 1, length, length), dtype=bool)
        if self.causal:
            forbidden |= causal_mask(length)[None, None]
        if key_padding_mask is not None:
            forbidden |= np.asarray(key_padding_mask, dtype=bool)[:, None, None, :]
        # Guard fully-masked rows (a padded query attending to nothing) by
        # letting them attend to themselves; their output is discarded anyway.
        fully_masked = forbidden.all(axis=-1, keepdims=True)
        if fully_masked.any():
            eye = np.eye(length, dtype=bool)[None, None]
            forbidden = forbidden & ~(fully_masked & eye)

        scores = F.masked_fill(scores, forbidden, _NEG_INF)
        weights = self.dropout(F.softmax(scores, axis=-1))
        context = weights @ v  # (B, h, T, head_dim)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        return self.output(merged)
