"""Multi-layer perceptrons, including the per-concept bank used by ISRec."""

from __future__ import annotations

from typing import Sequence

from repro.nn.activation import ReLU
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear, LinearBank
from repro.nn.module import Module, ModuleList
from repro.tensor.tensor import Tensor


class MLP(Module):
    """A stack of ``Linear -> ReLU (-> Dropout)`` blocks with a linear head.

    Parameters
    ----------
    dims:
        Layer widths including input and output, e.g. ``[64, 32, 16]``
        builds ``Linear(64, 32) -> ReLU -> Linear(32, 16)``.
    dropout:
        Dropout probability applied after every hidden activation.
    """

    def __init__(self, dims: Sequence[int], dropout: float = 0.0):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output width")
        self.dims = list(dims)
        layers: list[Module] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out))
            if i < len(dims) - 2:
                layers.append(ReLU())
                if dropout > 0:
                    layers.append(Dropout(dropout))
        self.layers = ModuleList(layers)

    def forward(self, x: Tensor) -> Tensor:
        """Apply the layer stack."""
        for layer in self.layers:
            x = layer(x)
        return x


class ConceptMLPBank(Module):
    """``K`` independent two-layer MLPs sharing an input (Eq. 8) or reading
    per-concept slices (Eq. 11).

    Forward mode ``"broadcast"`` maps ``(..., in)`` to ``(..., K, hidden)``
    then to ``(..., K, out)``; mode ``"per_bank"`` maps ``(..., K, in)`` to
    ``(..., K, out)`` with bank ``k`` consuming slice ``k``.
    """

    def __init__(self, num_banks: int, in_features: int, out_features: int,
                 hidden: int | None = None):
        super().__init__()
        self.num_banks = num_banks
        self.hidden = hidden
        if hidden is None:
            self.first = LinearBank(num_banks, in_features, out_features)
            self.second = None
        else:
            self.first = LinearBank(num_banks, in_features, hidden)
            self.second = LinearBank(num_banks, hidden, out_features)

    def forward(self, x: Tensor) -> Tensor:
        """Broadcast mode: every bank reads the same ``(..., in)`` input."""
        out = self.first(x)
        if self.second is not None:
            out = self.second.forward_per_bank(out.relu())
        return out

    def forward_per_bank(self, z: Tensor) -> Tensor:
        """Per-bank mode: bank ``k`` reads ``z[..., k, :]``."""
        out = self.first.forward_per_bank(z)
        if self.second is not None:
            out = self.second.forward_per_bank(out.relu())
        return out
