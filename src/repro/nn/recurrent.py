"""Gated recurrent units for the GRU4Rec / GRU4Rec+ baselines."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor, stack, where, zeros


class GRUCell(Module):
    """A single GRU step ``h' = GRU(x, h)`` (Cho et al. 2014 formulation)."""

    def __init__(self, input_dim: int, hidden_dim: int):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        # Gates are fused: [update | reset | candidate] along the output axis.
        self.weight_input = Parameter(init.xavier_uniform((input_dim, 3 * hidden_dim)))
        self.weight_hidden = Parameter(init.xavier_uniform((hidden_dim, 3 * hidden_dim)))
        self.bias = Parameter(init.zeros((3 * hidden_dim,)))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        """One gated update of the hidden state."""
        gates_x = x @ self.weight_input + self.bias
        gates_h = hidden @ self.weight_hidden
        h = self.hidden_dim
        update = (gates_x[:, 0:h] + gates_h[:, 0:h]).sigmoid()
        reset = (gates_x[:, h:2 * h] + gates_h[:, h:2 * h]).sigmoid()
        candidate = (gates_x[:, 2 * h:] + reset * gates_h[:, 2 * h:]).tanh()
        return update * hidden + (Tensor(1.0) - update) * candidate


class GRU(Module):
    """Run a :class:`GRUCell` over the time axis of ``(batch, length, input_dim)``.

    Returns the hidden state at every step, ``(batch, length, hidden_dim)``.
    Padded steps (marked in ``padding_mask``) carry the previous hidden state
    forward unchanged so padding never contaminates the sequence state.
    """

    def __init__(self, input_dim: int, hidden_dim: int):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.cell = GRUCell(input_dim, hidden_dim)

    def forward(self, x: Tensor, padding_mask: np.ndarray | None = None) -> Tensor:
        """Unroll the cell over time; returns all hidden states."""
        batch, length, _ = x.shape
        hidden = zeros((batch, self.hidden_dim), dtype=x.data.dtype)
        outputs: list[Tensor] = []
        for step in range(length):
            step_input = x[:, step, :]
            new_hidden = self.cell(step_input, hidden)
            if padding_mask is not None:
                keep_previous = np.asarray(padding_mask, dtype=bool)[:, step:step + 1]
                hidden = where(keep_previous, hidden, new_hidden)
            else:
                hidden = new_hidden
            outputs.append(hidden)
        return stack(outputs, axis=1)
