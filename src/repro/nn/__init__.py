"""Neural network layers built on the :mod:`repro.tensor` autograd engine.

The layer set covers everything the paper's model zoo needs: embeddings with
concept sums (Eq. 1), causal/bidirectional multi-head attention and
transformer blocks (Eq. 3-4, SASRec, BERT4Rec), per-concept MLP banks
(Eq. 8, 11), GCN layers over the concept graph (Eq. 10), GRUs (GRU4Rec),
Caser-style convolutions, and Gumbel-Softmax sampling (Eq. 5).
"""

from repro.nn.activation import GELU, ReLU, Sigmoid, Tanh
from repro.nn.attention import MultiHeadSelfAttention, causal_mask
from repro.nn.conv import HorizontalConv, VerticalConv
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding, MultiHotEmbedding
from repro.nn.graph import GCN, GCNLayer, LearnedAdjacencyGCN, normalized_adjacency
from repro.nn.gumbel import gumbel_softmax, gumbel_top_k, hard_top_k, sample_gumbel
from repro.nn.linear import Linear, LinearBank
from repro.nn.mlp import MLP, ConceptMLPBank
from repro.nn.module import Module, ModuleList, Parameter, Sequential
from repro.nn.normalization import LayerNorm
from repro.nn.recurrent import GRU, GRUCell
from repro.nn.transformer import (
    PositionwiseFeedForward,
    TransformerEncoder,
    TransformerEncoderLayer,
)

__all__ = [
    "Module", "ModuleList", "Parameter", "Sequential",
    "Linear", "LinearBank", "Embedding", "MultiHotEmbedding",
    "LayerNorm", "Dropout", "MLP", "ConceptMLPBank",
    "ReLU", "GELU", "Sigmoid", "Tanh",
    "MultiHeadSelfAttention", "causal_mask",
    "TransformerEncoder", "TransformerEncoderLayer", "PositionwiseFeedForward",
    "GRU", "GRUCell",
    "HorizontalConv", "VerticalConv",
    "GCN", "GCNLayer", "LearnedAdjacencyGCN", "normalized_adjacency",
    "gumbel_softmax", "gumbel_top_k", "hard_top_k", "sample_gumbel",
]
