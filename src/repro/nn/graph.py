"""Graph convolution layers for the structured intent transition (Eq. 9-10).

The GCN follows Kipf & Welling (2017): ``H' = sigma(D^-1/2 (A + I) D^-1/2 H W)``.
The normalised adjacency is precomputed once from a constant graph.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, ModuleList, Parameter
from repro.tensor.tensor import Tensor


def normalized_adjacency(adjacency: np.ndarray, add_self_loops: bool = True) -> np.ndarray:
    """Symmetric normalisation ``D^-1/2 (A + I) D^-1/2`` of Eq. (10)."""
    a = np.asarray(adjacency, dtype=np.float32)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {a.shape}")
    if add_self_loops:
        a = a + np.eye(a.shape[0], dtype=np.float32)
    degree = a.sum(axis=1)
    inv_sqrt = np.zeros_like(degree)
    nonzero = degree > 0
    inv_sqrt[nonzero] = degree[nonzero] ** -0.5
    return (a * inv_sqrt[:, None]) * inv_sqrt[None, :]


class GCNLayer(Module):
    """One graph convolution over a fixed node set.

    Input may be ``(num_nodes, in)`` or batched ``(..., num_nodes, in)``;
    the (constant) normalised adjacency left-multiplies the node features.
    """

    def __init__(self, adjacency: np.ndarray, in_features: int, out_features: int,
                 activation: bool = True):
        super().__init__()
        self.adjacency = Tensor(normalized_adjacency(adjacency))
        self.weight = Parameter(init.xavier_uniform((in_features, out_features)))
        self.bias = Parameter(init.zeros((out_features,)))
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        """Propagate node features over the normalised adjacency."""
        propagated = self.adjacency @ (x @ self.weight) + self.bias
        return propagated.relu() if self.activation else propagated


class LearnedAdjacencyGCN(Module):
    """GCN over a *learned* relation graph.

    The paper notes (§3.5) that ISRec "can also be extended to other
    available concept relations or learning the relation".  This layer
    realises that extension: edge logits are trainable, the dense adjacency
    is ``sigmoid`` of the symmetrised logits (diagonal removed), and the
    symmetric normalisation of Eq. (10) is recomputed differentiably on
    every forward pass so relations co-train with the rest of the model.

    Parameters
    ----------
    num_nodes:
        Number of graph nodes (concepts).
    dim:
        Feature dimensionality (input == output, as in :class:`GCN`).
    num_layers:
        Stacked propagation layers.
    init_adjacency:
        Optional ``(num_nodes, num_nodes)`` 0/1 prior (e.g. the ConceptNet
        graph); edges start near probability 0.85, non-edges near 0.15.
        Without it all logits start at 0 (probability 0.5).
    """

    def __init__(self, num_nodes: int, dim: int, num_layers: int = 2,
                 init_adjacency: np.ndarray | None = None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("LearnedAdjacencyGCN needs at least one layer")
        self.num_nodes = num_nodes
        if init_adjacency is not None:
            prior = np.asarray(init_adjacency, dtype=np.float32)
            if prior.shape != (num_nodes, num_nodes):
                raise ValueError(
                    f"init_adjacency must be ({num_nodes}, {num_nodes}), got {prior.shape}"
                )
            logits = np.where(prior > 0, 1.75, -1.75).astype(np.float32)
        else:
            logits = np.zeros((num_nodes, num_nodes), dtype=np.float32)
        self.edge_logits = Parameter(logits)
        self.weights = ModuleList([
            _GCNWeight(dim, dim, activation=(i < num_layers - 1))
            for i in range(num_layers)
        ])
        self._diag_mask = 1.0 - np.eye(num_nodes, dtype=np.float32)

    def adjacency(self) -> Tensor:
        """Differentiable dense adjacency in ``[0, 1]`` (zero diagonal)."""
        symmetric = (self.edge_logits + self.edge_logits.T) * 0.5
        return symmetric.sigmoid() * Tensor(self._diag_mask)

    def _normalized(self) -> Tensor:
        dense = self.adjacency() + Tensor(np.eye(self.num_nodes, dtype=np.float32))
        degree = dense.sum(axis=1)
        inv_sqrt = (degree + 1e-8) ** -0.5
        return dense * inv_sqrt.reshape(-1, 1) * inv_sqrt.reshape(1, -1)

    def forward(self, x: Tensor) -> Tensor:
        """Propagate with the current (learned) adjacency."""
        normalized = self._normalized()
        for layer in self.weights:
            x = layer(normalized, x)
        return x


class _GCNWeight(Module):
    """One propagation layer whose adjacency is supplied at call time."""

    def __init__(self, in_features: int, out_features: int, activation: bool):
        super().__init__()
        self.weight = Parameter(init.xavier_uniform((in_features, out_features)))
        self.bias = Parameter(init.zeros((out_features,)))
        self.activation = activation

    def forward(self, adjacency: Tensor, x: Tensor) -> Tensor:
        """One propagation with a caller-supplied adjacency."""
        propagated = adjacency @ (x @ self.weight) + self.bias
        return propagated.relu() if self.activation else propagated


class GCN(Module):
    """A stack of :class:`GCNLayer` with a linear final layer.

    Used as the message-passing function ``F`` in Eq. (9):
    ``Z_{t+1} = GCN(Z_t, A)``.
    """

    def __init__(self, adjacency: np.ndarray, dim: int, num_layers: int = 2):
        super().__init__()
        if num_layers < 1:
            raise ValueError("GCN needs at least one layer")
        self.layers = ModuleList([
            GCNLayer(adjacency, dim, dim, activation=(i < num_layers - 1))
            for i in range(num_layers)
        ])

    def forward(self, x: Tensor) -> Tensor:
        """Apply every GCN layer in order (Eq. 9)."""
        for layer in self.layers:
            x = layer(x)
        return x
