"""Module/Parameter abstractions mirroring ``torch.nn``.

A :class:`Module` tracks its :class:`Parameter` attributes and sub-modules so
that optimizers can discover every trainable tensor via
:meth:`Module.parameters`, and training/evaluation mode (dropout on/off) can
be toggled recursively.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` flagged as trainable model state."""

    __slots__ = ()

    def __init__(self, data, dtype=None):
        super().__init__(data, requires_grad=True, dtype=dtype)


class Module:
    """Base class for all neural network layers and models.

    Sub-classes assign :class:`Parameter` and :class:`Module` instances as
    attributes; discovery is automatic.  Lists of sub-modules must be wrapped
    in :class:`ModuleList`.
    """

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
            self.__dict__.setdefault("_modules", {}).pop(name, None)
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
            self.__dict__.setdefault("_parameters", {}).pop(name, None)
        else:
            # Re-assigning a tracked name to a plain value must untrack it,
            # or the optimizer would keep updating a dangling parameter.
            self.__dict__.setdefault("_parameters", {}).pop(name, None)
            self.__dict__.setdefault("_modules", {}).pop(name, None)
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, own first then children."""
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (enables dropout, Gumbel noise)."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by its dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Copy values from ``state`` into parameters (strict keys/shapes)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data[...] = value

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module's output (implemented by sub-classes)."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list of sub-modules that participates in parameter discovery."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        """Add a sub-module to the end of the list."""
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Apply modules in order, feeding each output into the next."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = ModuleList(modules)

    def forward(self, x):
        """Apply every layer in order."""
        for layer in self.layers:
            x = layer(x)
        return x
