"""Gradient-descent optimizers and learning-rate schedules."""

from repro.optim.optimizer import Optimizer, clip_grad_norm, grad_norm
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.lr_scheduler import ConstantLR, ExponentialDecay, WarmupLinearDecay

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "grad_norm",
    "ConstantLR",
    "ExponentialDecay",
    "WarmupLinearDecay",
]
