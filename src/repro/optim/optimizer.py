"""Optimizer base class and gradient utilities."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class: tracks parameters and applies L2 weight decay.

    Weight decay implements the ``alpha * ||Theta||^2`` regulariser of
    Eq. (14) by adding ``2 * alpha * theta`` to every gradient before the
    update (equivalent to including the penalty in the loss).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        """Clear gradients of every tracked parameter."""
        for param in self.parameters:
            param.zero_grad()

    def _decayed_grad(self, param: Parameter) -> np.ndarray | None:
        if param.grad is None:
            return None
        if self.weight_decay:
            return param.grad + 2.0 * self.weight_decay * param.data
        return param.grad

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the optimizer's mutable state.

        The base contract covers the learning rate and weight decay;
        sub-classes extend it with their moment buffers via
        :meth:`_extra_state`.  Array entries are copies, so the snapshot is
        immune to subsequent :meth:`step` calls.
        """
        state: dict = {"lr": float(self.lr),
                       "weight_decay": float(self.weight_decay)}
        state.update(self._extra_state())
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        The optimizer must already track the same number of parameters (with
        the same shapes) as the one that produced the snapshot.
        """
        if "lr" not in state:
            raise KeyError("optimizer state dict is missing 'lr'")
        self.lr = float(state["lr"])
        self.weight_decay = float(state.get("weight_decay", 0.0))
        self._load_extra_state(state)

    def _extra_state(self) -> dict:
        """Sub-class hook: extra entries for :meth:`state_dict`."""
        return {}

    def _load_extra_state(self, state: dict) -> None:
        """Sub-class hook: restore entries added by :meth:`_extra_state`."""

    def _check_buffers(self, name: str, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Validate per-parameter buffers against the tracked parameters."""
        if len(buffers) != len(self.parameters):
            raise ValueError(
                f"optimizer state {name!r} holds {len(buffers)} buffers for "
                f"{len(self.parameters)} parameters")
        for buffer, param in zip(buffers, self.parameters):
            if np.asarray(buffer).shape != param.data.shape:
                raise ValueError(
                    f"optimizer state {name!r} buffer shape "
                    f"{np.asarray(buffer).shape} does not match parameter "
                    f"shape {param.data.shape}")
        return [np.array(b, dtype=p.data.dtype)
                for b, p in zip(buffers, self.parameters)]


def grad_norm(parameters: Sequence[Parameter]) -> float:
    """Global L2 norm of all accumulated gradients (NaN-propagating)."""
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float(np.sum(param.grad.astype(np.float64) ** 2))
    return float(np.sqrt(total))


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    norm = grad_norm(parameters)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in parameters:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm
