"""Optimizer base class and gradient utilities."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class: tracks parameters and applies L2 weight decay.

    Weight decay implements the ``alpha * ||Theta||^2`` regulariser of
    Eq. (14) by adding ``2 * alpha * theta`` to every gradient before the
    update (equivalent to including the penalty in the loss).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        """Clear gradients of every tracked parameter."""
        for param in self.parameters:
            param.zero_grad()

    def _decayed_grad(self, param: Parameter) -> np.ndarray | None:
        if param.grad is None:
            return None
        if self.weight_decay:
            return param.grad + 2.0 * self.weight_decay * param.data
        return param.grad

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        raise NotImplementedError


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float(np.sum(grad.astype(np.float64) ** 2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in parameters:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm
