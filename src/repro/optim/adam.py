"""Adam optimizer (Kingma & Ba 2015) — the paper's training optimizer."""

from __future__ import annotations

import numpy as np

from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction; ``weight_decay`` is classic L2 (Eq. 14)."""

    def __init__(self, parameters, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one bias-corrected Adam step."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for i, param in enumerate(self.parameters):
            grad = self._decayed_grad(param)
            if grad is None:
                continue
            m = self._first_moment[i]
            v = self._second_moment[i]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _extra_state(self) -> dict:
        return {
            "beta1": self.beta1,
            "beta2": self.beta2,
            "eps": self.eps,
            "step_count": self._step_count,
            "first_moment": [m.copy() for m in self._first_moment],
            "second_moment": [v.copy() for v in self._second_moment],
        }

    def _load_extra_state(self, state: dict) -> None:
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self._step_count = int(state["step_count"])
        self._first_moment = self._check_buffers("first_moment",
                                                 list(state["first_moment"]))
        self._second_moment = self._check_buffers("second_moment",
                                                  list(state["second_moment"]))
