"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

import numpy as np

from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """``theta <- theta - lr * (momentum-buffered) gradient``."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters] if momentum else None

    def step(self) -> None:
        """Apply one (possibly momentum-buffered) descent step."""
        for i, param in enumerate(self.parameters):
            grad = self._decayed_grad(param)
            if grad is None:
                continue
            if self._velocity is not None:
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            param.data -= self.lr * grad

    def _extra_state(self) -> dict:
        state: dict = {"momentum": self.momentum}
        if self._velocity is not None:
            state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def _load_extra_state(self, state: dict) -> None:
        self.momentum = float(state["momentum"])
        if "velocity" in state:
            self._velocity = self._check_buffers("velocity",
                                                 list(state["velocity"]))
        elif self.momentum:
            # Momentum enabled but the snapshot predates any buffers.
            self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        else:
            self._velocity = None
