"""Learning-rate schedules (applied per epoch by the trainer)."""

from __future__ import annotations

from repro.optim.optimizer import Optimizer


class ConstantLR:
    """Keep the optimizer's learning rate fixed."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer

    def step(self) -> float:
        """Return the (unchanged) learning rate."""
        return self.optimizer.lr

    def state_dict(self) -> dict:
        """Serializable snapshot (the schedule itself is stateless)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (no-op)."""


class ExponentialDecay:
    """Multiply the learning rate by ``gamma`` each call."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95, min_lr: float = 1e-5):
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.optimizer = optimizer
        self.gamma = gamma
        self.min_lr = min_lr

    def step(self) -> float:
        """Decay the learning rate once and return it."""
        self.optimizer.lr = max(self.optimizer.lr * self.gamma, self.min_lr)
        return self.optimizer.lr

    def state_dict(self) -> dict:
        """Serializable snapshot (the current rate lives on the optimizer)."""
        return {"gamma": self.gamma, "min_lr": self.min_lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.gamma = float(state["gamma"])
        self.min_lr = float(state["min_lr"])


class WarmupLinearDecay:
    """Linear warm-up to the base rate, then linear decay to zero.

    ``total_steps`` counts calls to :meth:`step`.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int):
        if warmup_steps < 0 or total_steps <= warmup_steps:
            raise ValueError("require 0 <= warmup_steps < total_steps")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self._step_count = 0

    def _lr_at(self, step_count: int) -> float:
        """Learning rate the schedule prescribes after ``step_count`` steps."""
        if step_count <= self.warmup_steps:
            fraction = step_count / max(1, self.warmup_steps)
        else:
            remaining = self.total_steps - step_count
            fraction = max(0.0, remaining / (self.total_steps - self.warmup_steps))
        return self.base_lr * fraction

    def step(self) -> float:
        """Advance the schedule one step and return the new rate."""
        self._step_count += 1
        self.optimizer.lr = self._lr_at(self._step_count)
        return self.optimizer.lr

    def state_dict(self) -> dict:
        """Serializable snapshot of the schedule position."""
        return {"base_lr": self.base_lr, "warmup_steps": self.warmup_steps,
                "total_steps": self.total_steps, "step_count": self._step_count}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.

        Also recomputes ``optimizer.lr`` for the restored position: the
        optimizer the schedule is re-attached to after a crash typically
        still carries its construction-time rate, so restoring only the
        step counter would train the first resumed epoch at that stale
        rate.  At position 0 (no steps taken) the optimizer keeps its
        current rate, matching a freshly constructed schedule.
        """
        self.base_lr = float(state["base_lr"])
        self.warmup_steps = int(state["warmup_steps"])
        self.total_steps = int(state["total_steps"])
        self._step_count = int(state["step_count"])
        if self._step_count > 0:
            self.optimizer.lr = self._lr_at(self._step_count)
