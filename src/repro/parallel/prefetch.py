"""Background batch prefetching behind a bounded queue.

Batch assembly (left-padding, shuffling, negative sampling) and the
optimisation step are serialised in the plain training loop: the model
waits while numpy builds the next batch.  :class:`PrefetchLoader` moves
the assembly onto a daemon thread feeding a bounded :class:`queue.Queue`,
so the next batch is (usually) already materialised when the optimiser
finishes the current step.

The wrapper is stream-transparent: it yields exactly the items of the
wrapped iterator, in order, and exceptions raised by the producer are
re-raised at the consuming ``next()`` call.  Determinism is therefore
untouched — the underlying RNG is only ever advanced by the single
producer thread, in the same order a foreground loop would advance it.

Instrumentation (live values regardless of telemetry; mirrored into
:mod:`repro.obs` when telemetry is enabled):

- ``prefetch.hits`` / ``prefetch.misses`` — was a batch already waiting
  when the consumer asked?  ``hit_rate`` close to 1.0 means assembly is
  fully hidden behind compute; close to 0.0 means the producer is the
  bottleneck (consider a larger ``capacity`` or cheaper assembly).
- ``prefetch.queue_depth`` — queue occupancy sampled at each ``next()``.
"""

from __future__ import annotations

import queue
import threading

from repro import obs

_SENTINEL = object()


class _ProducerError:
    def __init__(self, error: BaseException):
        self.error = error


class PrefetchLoader:
    """Iterate ``iterable`` through a background thread and bounded queue.

    Parameters
    ----------
    iterable:
        Any iterable/iterator of batches.  Consumed exactly once.
    capacity:
        Maximum number of assembled batches held in flight (>= 1).
    name:
        Metric-name prefix (default ``"prefetch"``).
    """

    def __init__(self, iterable, capacity: int = 4, name: str = "prefetch"):
        if capacity < 1:
            raise ValueError(f"prefetch capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.name = name
        self.hits = 0
        self.misses = 0
        self._queue: queue.Queue = queue.Queue(maxsize=self.capacity)
        self._stop = threading.Event()
        self._exhausted = False
        self._thread = threading.Thread(
            target=self._produce, args=(iter(iterable),),
            name=f"{name}-producer", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # Producer (background thread)
    # ------------------------------------------------------------------
    def _produce(self, iterator) -> None:
        try:
            for item in iterator:
                if not self._put(item):
                    return  # closed by the consumer
            self._put(_SENTINEL)
        except BaseException as error:  # delivered to the consumer
            self._put(_ProducerError(error))

    def _put(self, item) -> bool:
        """Bounded put that gives up promptly once :meth:`close` is called."""
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    # ------------------------------------------------------------------
    # Consumer
    # ------------------------------------------------------------------
    def __iter__(self) -> "PrefetchLoader":
        return self

    def __next__(self):
        if self._exhausted:
            raise StopIteration
        depth = self._queue.qsize()
        if depth > 0:
            self.hits += 1
        else:
            self.misses += 1
        if obs.telemetry_enabled():
            obs.gauge(f"{self.name}.queue_depth").set(depth)
            obs.counter(f"{self.name}.hits" if depth > 0
                        else f"{self.name}.misses").inc()
        item = self._queue.get()
        if item is _SENTINEL:
            self._exhausted = True
            raise StopIteration
        if isinstance(item, _ProducerError):
            self._exhausted = True
            raise item.error
        return item

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float | None:
        """Fraction of ``next()`` calls served without waiting, or ``None``."""
        total = self.hits + self.misses
        return None if total == 0 else self.hits / total

    def close(self) -> None:
        """Stop the producer and release the queue (idempotent).

        Safe to call mid-stream — e.g. when divergence recovery abandons
        the rest of an epoch — and after exhaustion.
        """
        self._stop.set()
        # Unblock a producer waiting on a full queue.
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(timeout=5.0)
        self._exhausted = True

    def __enter__(self) -> "PrefetchLoader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
