"""Benchmark harness for the parallel training subsystem.

Times full training runs of a synthetic SASRec workload (ML-1M-scale
shapes, the same as :mod:`repro.utils.bench`) under:

- the single-process :class:`~repro.train.Trainer` (baseline);
- the baseline plus a :class:`~repro.parallel.PrefetchLoader`;
- the :class:`~repro.parallel.DataParallelTrainer` at 1/2/4 workers.

Results — wall seconds, sequences/s, speedup vs. the baseline, and the
final-epoch loss of every configuration (a built-in equivalence check:
the deterministic-forward workload must land on the same loss curve) —
go to ``BENCH_parallel.json`` at the repository root::

    make bench-parallel           # or:
    PYTHONPATH=src python -m repro.parallel.bench --out BENCH_parallel.json

The document also records the machine's CPU budget (``cpu_count`` and the
scheduler affinity mask): data-parallel speedup is bounded by physical
cores, so a 4-worker run on a 1-core container measures synchronisation
overhead, not speedup.  Interpret the numbers against that stamp.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.models.sasrec import SASRec
from repro.parallel.trainer import DataParallelTrainer
from repro.train.trainer import TrainConfig, Trainer
from repro.utils.bench import environment_info, write_bench
from repro.utils.seeding import temp_seed

SCHEMA = "bench_parallel/v1"

#: ML-1M-scale workload (matches repro.utils.bench.DEFAULT_SHAPES) with a
#: dataset large enough for the step loop to dominate process start-up.
DEFAULT_SHAPES = dict(batch_size=128, seq_len=50, vocab=3416, dim=64,
                      num_heads=2, num_layers=2, num_sequences=512, epochs=2)
#: Miniature shapes for CI smoke runs and the tier-1 bench test.
SMOKE_SHAPES = dict(batch_size=32, seq_len=16, vocab=200, dim=32,
                    num_heads=2, num_layers=1, num_sequences=64, epochs=1)

PRESETS = {"default": DEFAULT_SHAPES, "smoke": SMOKE_SHAPES}


def cpu_budget() -> dict:
    """How much CPU the scheduler will actually give this process."""
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        affinity = None
    return {"cpu_count": os.cpu_count(), "cpu_affinity": affinity}


def synthetic_sequences(shapes: dict) -> list[np.ndarray]:
    """Deterministic variable-length item sequences for the workload."""
    rng = np.random.default_rng(1234)
    lengths = rng.integers(shapes["seq_len"] // 2,
                           int(shapes["seq_len"] * 1.5) + 1,
                           size=shapes["num_sequences"])
    return [rng.integers(1, shapes["vocab"] + 1, size=int(length))
            for length in lengths]


def build_workload(shapes: dict) -> SASRec:
    """Fresh identically-initialised model with training sequences set.

    ``dropout=0.0`` keeps the forward pass deterministic, so every
    configuration in the bench walks the same loss curve and the recorded
    ``final_loss`` doubles as a correctness cross-check.
    """
    with temp_seed(0):
        model = SASRec(num_items=shapes["vocab"], dim=shapes["dim"],
                       max_len=shapes["seq_len"],
                       num_layers=shapes["num_layers"],
                       num_heads=shapes["num_heads"], dropout=0.0)
    model._train_sequences = synthetic_sequences(shapes)
    model._train_batch_size = shapes["batch_size"]
    return model


def _train_config(shapes: dict, **overrides) -> TrainConfig:
    settings = dict(epochs=shapes["epochs"], batch_size=shapes["batch_size"],
                    lr=1e-3, eval_every=10_000, patience=0, seed=0)
    settings.update(overrides)
    return TrainConfig(**settings)


def _run(shapes: dict, **overrides) -> dict:
    """Train one fresh workload under ``overrides``; returns its metrics."""
    model = build_workload(shapes)
    config = _train_config(shapes, **overrides)
    if config.num_workers > 1:
        trainer = DataParallelTrainer(model, config)
    else:
        trainer = Trainer(model, config)
    with temp_seed(0):
        start = time.perf_counter()
        history = trainer.fit()
        seconds = time.perf_counter() - start
    sequences = shapes["num_sequences"] * shapes["epochs"]
    return {
        "workers": config.num_workers,
        "prefetch": config.prefetch,
        "wall_time_s": seconds,
        "seq_per_s": sequences / max(seconds, 1e-12),
        "final_loss": float(history.losses[-1]),
    }


def run_parallel_bench(shapes: dict | None = None, preset: str = "default",
                       workers: list[int] | None = None) -> dict:
    """Run every configuration and return the full results document."""
    shapes = dict(shapes or PRESETS[preset])
    workers = workers or [1, 2, 4]
    baseline = _run(shapes)
    results = {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "preset": preset,
        "shapes": shapes,
        "environment": {**environment_info(), **cpu_budget()},
        "single_process": baseline,
        "single_process_prefetch": _run(shapes, prefetch=2),
        "data_parallel": {},
    }
    for world in workers:
        run = _run(shapes, num_workers=world, prefetch=0)
        run["speedup_vs_single"] = baseline["wall_time_s"] / max(
            run["wall_time_s"], 1e-12)
        run["loss_matches_single"] = bool(
            abs(run["final_loss"] - baseline["final_loss"]) <= 1e-6)
        results["data_parallel"][str(world)] = run
    return results


def format_summary(results: dict) -> str:
    """Human-readable one-line-per-configuration summary."""
    budget = results["environment"]
    lines = [f"parallel bench  preset={results['preset']}  "
             f"cpu_count={budget.get('cpu_count')} "
             f"affinity={budget.get('cpu_affinity')}"]

    def line(label: str, run: dict, speedup: float | None = None) -> str:
        text = (f"  {label:<22} {run['wall_time_s']:8.2f} s  "
                f"{run['seq_per_s']:8.1f} seq/s  "
                f"loss {run['final_loss']:.6f}")
        if speedup is not None:
            text += f"  speedup {speedup:.2f}x"
        return text

    lines.append(line("single-process", results["single_process"]))
    lines.append(line("single + prefetch", results["single_process_prefetch"]))
    for world, run in sorted(results["data_parallel"].items(),
                             key=lambda item: int(item[0])):
        lines.append(line(f"data-parallel x{world}", run,
                          run["speedup_vs_single"]))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_parallel.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--preset", default="default", choices=sorted(PRESETS),
                        help="shape preset (default: %(default)s)")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                        help="worker counts to measure (default: 1 2 4)")
    args = parser.parse_args(argv)

    results = run_parallel_bench(preset=args.preset, workers=args.workers)
    write_bench(results, args.out)
    print(format_summary(results))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
