"""Forked gradient workers and the shared-memory all-reduce pool.

One :class:`WorkerPool` owns ``world`` forked processes, two shared-memory
buffers (a ``(P,)`` parameter broadcast buffer and a ``(world, P)``
per-worker gradient buffer; see :mod:`repro.parallel.flat`), and one
control pipe per worker.  The per-step protocol, driven by
:class:`~repro.parallel.trainer.DataParallelTrainer`:

1. the parent flattens the current parameters into the broadcast buffer
   and sends ``("step",)`` down every pipe;
2. each worker copies the parameters into its model replica, pulls the
   next batch from its *own* identically-seeded batch stream, shards it
   by rank (:func:`repro.data.batching.shard_batch`), runs the fused
   forward/backward on its shard, writes its flat gradient into row
   ``rank`` of the gradient buffer, and replies with its scalar stats
   (loss, token weight, rows, grad-presence mask, compute seconds);
3. the parent weight-averages the gradient rows in float64 and applies
   the existing optimizer — one update, mathematically equal to the
   single-process large-batch step.

Workers never receive batches over the pipe: every worker replays the
same deterministic batch stream from the epoch-start RNG state the parent
broadcast, so the only per-step traffic is the tiny command/stat tuples.
Worker-local stochasticity (dropout masks, Gumbel noise) draws from a
stream seeded by ``(seed, rank, epoch)`` — deterministic under resume and
independent across ranks.

Workers run with telemetry disabled and a private metrics registry: a
forked child sharing the parent's JSONL sink handle would interleave
writes into the parent's stream.  Their stats travel back through the
pipes instead and the parent records them.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np

from repro import obs
from repro.data.batching import shard_batch
from repro.parallel.flat import FlatLayout, SharedFlatBuffer, weighted_average
from repro.parallel.prefetch import PrefetchLoader
from repro.utils.seeding import set_seed


class WorkerCrashed(RuntimeError):
    """A gradient worker exited or stopped answering the step protocol."""


class EndOfEpoch:
    """Every worker exhausted its batch stream for the current epoch."""

    def __init__(self, rng_state: dict, prefetch_hits: int, prefetch_misses: int):
        self.rng_state = rng_state
        self.prefetch_hits = prefetch_hits
        self.prefetch_misses = prefetch_misses


class StepStats:
    """Aggregated result of one synchronous data-parallel step."""

    def __init__(self, loss: float, weight: float, sequences: int,
                 tokens: float | None, worker_seconds: list[float],
                 allreduce_seconds: float):
        self.loss = loss
        self.weight = weight
        self.sequences = sequences
        self.tokens = tokens
        self.worker_seconds = worker_seconds
        self.allreduce_seconds = allreduce_seconds


def shard_stream_seed(seed: int, rank: int, epoch: int) -> int:
    """Deterministic per-(worker, epoch) seed for worker-local noise.

    Derived through :class:`numpy.random.SeedSequence` so neighbouring
    ``(seed, rank, epoch)`` triples yield statistically independent
    streams, and a resumed run re-derives the exact stream of the epoch it
    restarts — worker randomness survives crash/resume unchanged.
    """
    return int(np.random.SeedSequence((seed, rank, epoch)).generate_state(1)[0])


def _worker_main(rank: int, world: int, model, conn, params_buf, grads_buf,
                 layout, seed: int, prefetch: int) -> None:
    """Entry point of one forked gradient worker."""
    # Forked children must not share the parent's telemetry sinks.
    obs.set_registry(obs.MetricsRegistry())
    obs.set_telemetry(False)
    parameters = list(model.parameters())
    grad_row = grads_buf.array[rank]
    rng = np.random.default_rng(seed)
    batches = None
    loader: PrefetchLoader | None = None
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "stop":
                break
            if command == "epoch":
                _, rng_state, epoch = message
                rng = np.random.default_rng(seed)
                rng.bit_generator.state = rng_state
                set_seed(shard_stream_seed(seed, rank, epoch))
                if loader is not None:
                    loader.close()
                    loader = None
                model.train()
                batches = iter(model.training_batches(rng))
                if prefetch > 0:
                    loader = PrefetchLoader(batches, capacity=prefetch)
                    batches = loader
                conn.send(("ready", rank))
                continue
            if command != "step":
                raise RuntimeError(f"unknown worker command {command!r}")
            started = time.perf_counter()
            layout.read_params(params_buf.array, parameters)
            try:
                batch = next(batches)
            except StopIteration:
                hits = loader.hits if loader is not None else 0
                misses = loader.misses if loader is not None else 0
                conn.send(("end", rng.bit_generator.state, hits, misses))
                continue
            shard, weight = shard_batch(batch, rank, world)
            rows = int(np.asarray(shard[0]).shape[0])
            if rows == 0 or weight <= 0:
                grad_row[:] = 0.0
                conn.send(("ok", 0.0, 0.0, 0, [False] * len(parameters),
                           time.perf_counter() - started))
                continue
            for parameter in parameters:
                parameter.zero_grad()
            loss = model.training_loss(shard)
            value = float(loss.data)
            if np.isfinite(value):
                loss.backward()
                present = layout.write_grads(parameters, grad_row)
            else:
                # The parent aborts the epoch on a non-finite loss exactly
                # like the single-process trainer; skip the wasted backward.
                grad_row[:] = 0.0
                present = [False] * len(parameters)
            conn.send(("ok", value, weight, rows, present,
                       time.perf_counter() - started))
    except (EOFError, KeyboardInterrupt):
        pass  # parent died or interrupted; exit quietly
    finally:
        if loader is not None:
            loader.close()
        conn.close()


class WorkerPool:
    """Lifecycle + step protocol of ``world`` forked gradient workers.

    Create it around a fully-constructed model (training sequences set,
    resume state loaded or about to be broadcast — workers receive fresh
    parameters every step, so parent-side weight mutations after the fork
    are always picked up).  Use as a context manager; :meth:`shutdown`
    tears down processes, pipes, and shared memory exactly once.
    """

    def __init__(self, model, world: int, seed: int, prefetch: int = 0):
        if world < 1:
            raise ValueError(f"world size must be >= 1, got {world}")
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "data-parallel training requires the 'fork' start method "
                "(POSIX only)") from error
        self.world = world
        self.parameters = list(model.parameters())
        self.layout = FlatLayout(self.parameters)
        self.params_buf = SharedFlatBuffer((self.layout.size,))
        self.grads_buf = SharedFlatBuffer((world, self.layout.size))
        self._weights = np.zeros(world, dtype=np.float64)
        self._connections = []
        self._processes = []
        self._closed = False
        for rank in range(world):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(rank, world, model, child_conn, self.params_buf,
                      self.grads_buf, self.layout, seed, prefetch),
                daemon=True, name=f"repro-dp-worker-{rank}")
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)

    # ------------------------------------------------------------------
    # Step protocol (parent side)
    # ------------------------------------------------------------------
    def begin_epoch(self, rng_state: dict, epoch: int) -> None:
        """Broadcast the epoch-start batch-RNG state; wait for readiness."""
        for connection in self._connections:
            connection.send(("epoch", rng_state, epoch))
        for rank in range(self.world):
            reply = self._recv(rank)
            if reply[0] != "ready":
                raise WorkerCrashed(
                    f"worker {rank} replied {reply[0]!r} to epoch start")

    def step(self) -> StepStats | EndOfEpoch:
        """Run one synchronous step; returns stats or the end-of-epoch mark.

        On return the weighted-average gradient is installed on the
        parent's parameters (``grad=None`` where no worker produced a
        gradient) and the returned loss is the exact full-batch loss.
        """
        self.layout.write_params(self.parameters, self.params_buf.array)
        for connection in self._connections:
            connection.send(("step",))
        replies = [self._recv(rank) for rank in range(self.world)]
        kinds = {reply[0] for reply in replies}
        if kinds == {"end"}:
            return EndOfEpoch(replies[0][1],
                              prefetch_hits=sum(r[2] for r in replies),
                              prefetch_misses=sum(r[3] for r in replies))
        if "end" in kinds:  # pragma: no cover - defensive: streams desynced
            raise WorkerCrashed(
                "workers disagree on epoch length; batch streams desynced")
        reduce_start = time.perf_counter()
        self._weights[:] = [reply[2] for reply in replies]
        total = float(self._weights.sum())
        if total <= 0:
            raise WorkerCrashed("no worker produced a weighted shard")
        loss = float(np.dot(self._weights,
                            [reply[1] for reply in replies]) / total)
        present = [False] * len(self.layout)
        for reply in replies:
            present = [a or b for a, b in zip(present, reply[4])]
        average = weighted_average(self.grads_buf.array, self._weights)
        self.layout.assign_grads(average, self.parameters, present)
        sequences = sum(reply[3] for reply in replies)
        return StepStats(
            loss=loss, weight=total, sequences=sequences,
            tokens=total if total != sequences else None,
            worker_seconds=[reply[5] for reply in replies],
            allreduce_seconds=time.perf_counter() - reduce_start)

    def _recv(self, rank: int):
        connection = self._connections[rank]
        try:
            return connection.recv()
        except (EOFError, OSError) as error:
            code = self._processes[rank].exitcode
            raise WorkerCrashed(
                f"worker {rank} died mid-step (exit code {code})") from error

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop workers and release pipes + shared memory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5.0)
        for connection in self._connections:
            connection.close()
        for buffer in (self.params_buf, self.grads_buf):
            buffer.close()
            buffer.unlink()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
