"""Synchronous multi-process data-parallel training.

:class:`DataParallelTrainer` is a drop-in :class:`~repro.train.Trainer`
that farms each optimisation step out to ``TrainConfig.num_workers``
forked worker processes (:mod:`repro.parallel.worker`) and applies one
weight-averaged update in the parent.  Everything around the epoch loop —
validation early stopping, crash-safe checkpoints, bit-exact resume,
divergence rollback + LR halving — is inherited unchanged, because only
``_run_epoch`` is replaced.

Semantics (see ``docs/parallelism.md`` for the full argument):

- ISRec's training loss (Eq. 13-14) is a token-weighted mean over
  independent sequences, so the token-weighted average of shard gradients
  *equals* the full-batch gradient; the parallel loss curve matches the
  single-process large-batch run with the same seed to float32 rounding
  (pinned at 1e-6 by ``tests/parallel/test_data_parallel_trainer.py``).
- The batch stream is identical to the single-process one: every worker
  replays the same generator from the same epoch-start RNG state and
  takes its contiguous row shard, and the parent adopts the post-epoch
  RNG state, so checkpoints interoperate with single-process runs in both
  directions.
- Models whose *forward* is stochastic in train mode (dropout > 0, ISRec
  Gumbel sampling) remain deterministic per (seed, rank, epoch) but draw
  different noise than a single-process run — equivalence is exact only
  for deterministic-forward models.

Telemetry (enabled the usual way, ``docs/observability.md``): per-step
``parallel.step_s`` / ``parallel.allreduce_s`` / per-worker compute-time
histograms, worker-count gauge, and the workers' aggregated prefetch
hit/miss counters.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.optim.optimizer import clip_grad_norm, grad_norm
from repro.parallel.worker import EndOfEpoch, WorkerPool
from repro.train.trainer import TrainConfig, Trainer, TrainingHistory


class DataParallelTrainer(Trainer):
    """Train with ``config.num_workers`` forked gradient workers.

    Use exactly like :class:`~repro.train.Trainer`::

        config = TrainConfig(epochs=30, batch_size=256, num_workers=4)
        history = DataParallelTrainer(model, config, validate=fn).fit()

    or implicitly through ``model.fit`` — every
    :class:`~repro.models.base.SequenceRecommender` dispatches here when
    ``train_config.num_workers > 1``.  The model must expose the standard
    trainer protocol plus batches that
    :func:`~repro.data.batching.shard_batch` understands (tuples of
    equal-first-dimension arrays).
    """

    def __init__(self, model, config: TrainConfig, validate=None):
        super().__init__(model, config, validate=validate)
        self.num_workers = max(int(getattr(config, "num_workers", 1)), 1)
        self._pool: WorkerPool | None = None

    # ------------------------------------------------------------------
    # Lifecycle: the worker pool lives for one fit() call
    # ------------------------------------------------------------------
    def fit(self, resume_from=None) -> TrainingHistory:
        """Run the training loop with a live worker pool around it."""
        with WorkerPool(self.model, self.num_workers, seed=self.config.seed,
                        prefetch=self.config.prefetch) as pool:
            self._pool = pool
            obs.emit("parallel_pool", workers=self.num_workers,
                     flat_params=pool.layout.size)
            if obs.telemetry_enabled():
                obs.gauge("parallel.workers").set(self.num_workers)
            try:
                return super().fit(resume_from=resume_from)
            finally:
                self._pool = None

    def _checkpoint_extras(self) -> dict:
        """Stamp checkpoints with the world size that produced them."""
        return {"world_size": self.num_workers}

    # ------------------------------------------------------------------
    # One data-parallel epoch
    # ------------------------------------------------------------------
    def _run_epoch(self, rng, epoch: int = 0) -> tuple[float | None, str | None]:
        config = self.config
        pool = self._pool
        if pool is None:
            raise RuntimeError("worker pool is not running; call fit()")
        self.model.train()
        telemetry = obs.telemetry_enabled()
        pool.begin_epoch(rng.bit_generator.state, epoch)
        epoch_loss = 0.0
        num_batches = 0
        while True:
            step_start = time.perf_counter()
            result = pool.step()
            if isinstance(result, EndOfEpoch):
                # Adopt the fully-advanced batch-stream state so checkpoints
                # stay bit-compatible with single-process runs.
                rng.bit_generator.state = result.rng_state
                if telemetry and (result.prefetch_hits or result.prefetch_misses):
                    obs.counter("parallel.prefetch_hits").inc(result.prefetch_hits)
                    obs.counter("parallel.prefetch_misses").inc(result.prefetch_misses)
                break
            if not np.isfinite(result.loss):
                return None, f"non-finite training loss ({result.loss})"
            if config.clip_norm is not None:
                norm = clip_grad_norm(self.optimizer.parameters,
                                      config.clip_norm)
            else:
                norm = grad_norm(self.optimizer.parameters)
            if not np.isfinite(norm):
                return None, f"non-finite gradient norm ({norm})"
            with obs.profile("optimizer_step"):
                self.optimizer.step()
            epoch_loss += result.loss
            num_batches += 1
            if telemetry:
                self._emit_parallel_step(epoch, num_batches - 1, result,
                                         float(norm), step_start)
        return epoch_loss / max(num_batches, 1), None

    def _emit_parallel_step(self, epoch: int, step: int, result, norm: float,
                            step_start: float) -> None:
        seconds = time.perf_counter() - step_start
        allreduce = result.allreduce_seconds
        obs.emit("train_step", epoch=epoch, step=step, loss=result.loss,
                 grad_norm=norm, lr=self.optimizer.lr,
                 step_time_s=round(seconds, 6),
                 allreduce_s=round(allreduce, 6),
                 workers=self.num_workers,
                 sequences=result.sequences, tokens=result.tokens,
                 seq_per_s=(round(result.sequences / seconds, 3)
                            if seconds > 0 else None))
        obs.counter("trainer.steps").inc()
        obs.gauge("trainer.lr").set(self.optimizer.lr)
        obs.histogram("trainer.loss").observe(result.loss)
        obs.histogram("trainer.grad_norm").observe(norm)
        obs.histogram("trainer.step_time_s").observe(seconds)
        obs.histogram("parallel.step_s").observe(seconds)
        obs.histogram("parallel.allreduce_s").observe(allreduce)
        for worker_seconds in result.worker_seconds:
            obs.histogram("parallel.worker_step_s").observe(worker_seconds)
        if seconds > 0:
            obs.histogram("trainer.seq_per_s").observe(result.sequences / seconds)
