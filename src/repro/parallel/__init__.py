"""Multi-process parallelism: data-parallel training, prefetch, sweeps.

Three independent levers, all documented in ``docs/parallelism.md``:

- :class:`DataParallelTrainer` / :class:`WorkerPool` — synchronous
  data-parallel SGD over forked gradient workers with a shared-memory
  all-reduce; selected by ``TrainConfig(num_workers=N)``.
- :class:`PrefetchLoader` — overlaps batch assembly / negative sampling
  with compute in *any* trainer; selected by ``TrainConfig(prefetch=K)``.
- :func:`run_cells` / :class:`SweepCell` — process-parallel execution of
  experiment grids, ``--jobs N`` on the :mod:`repro.experiments` CLI.

``python -m repro.parallel.bench`` measures all of it into
``BENCH_parallel.json`` (``make bench-parallel``).
"""

from repro.parallel.flat import FlatLayout, SharedFlatBuffer, weighted_average
from repro.parallel.prefetch import PrefetchLoader
from repro.parallel.trainer import DataParallelTrainer
from repro.parallel.worker import (
    EndOfEpoch,
    StepStats,
    WorkerCrashed,
    WorkerPool,
    shard_stream_seed,
)

__all__ = [
    "DataParallelTrainer",
    "EndOfEpoch",
    "FlatLayout",
    "PrefetchLoader",
    "SharedFlatBuffer",
    "StepStats",
    "SweepCell",
    "WorkerCrashed",
    "WorkerPool",
    "run_cells",
    "shard_stream_seed",
    "weighted_average",
]


def __getattr__(name: str):
    # The sweep executor imports repro.experiments.common, which imports
    # repro.models -> repro.train; loading it lazily keeps `import
    # repro.parallel` cheap and cycle-free for the trainer dispatch path.
    if name in ("SweepCell", "run_cells"):
        from repro.parallel import sweep

        return getattr(sweep, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
