"""Parallel execution of independent experiment sweep cells.

A paper table/figure is a grid of independent ``(dataset, model, seed)``
training runs — *cells*.  :func:`run_cells` schedules the pending cells of
such a grid across a fork-server of worker processes (``--jobs N`` on the
:mod:`repro.experiments` CLI) while keeping the crash-safety contract of
the serial runners:

- the PR-1 :class:`~repro.experiments.common.SweepState` ledger is read
  *before* scheduling (completed cells are returned from the ledger, never
  recomputed) and written *only by the parent*, one atomic flush per
  finished cell, so a killed parallel sweep resumes exactly like a killed
  serial one;
- per-model epoch checkpoints (``ExperimentConfig.checkpoint_dir``) keep
  working inside the children, so even the cells in flight at kill time
  resume mid-training;
- each cell runs under ``set_seed(config.seed)`` in a fresh process with
  its own freshly-prepared dataset/evaluator, and the evaluator's
  negatives depend only on ``(stage, seed)`` — results are bit-identical
  to the serial runner regardless of ``jobs`` or completion order.

Children run with telemetry disabled (a forked child writing the parent's
JSONL stream would interleave records); the parent emits the per-run
telemetry from the returned results instead.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace
from typing import Callable

from repro import obs
from repro.experiments.common import (
    ExperimentConfig,
    RunResult,
    SweepState,
    prepare,
    prepare_session,
    run_model,
)


@dataclass
class SweepCell:
    """One independent (model, dataset[, hyper-parameter]) grid cell.

    ``key`` is the ledger key (``"<dataset>/<model>"`` by convention, with
    a hyper-parameter suffix for sweeps like Table 6's ``.../T=20``).
    ``overrides`` is forwarded to :func:`~repro.experiments.common.run_model`
    (``max_len``, ``isrec_config``).  ``session_eval=True`` prepares the
    session-annotated dataset variant with a session-boundary split and
    attaches a :class:`repro.eval.SessionEvaluator` report to the run's
    ``extras["session"]``.
    """

    key: str
    model: str
    profile: str
    scale: float
    config: ExperimentConfig
    max_len: int | None = None
    isrec_config: object | None = None
    session_eval: bool = False


# One prepared (dataset, split, evaluator) triple per profile, cached per
# process: pool workers keep it across the cells they execute, the serial
# path keeps it across the whole grid.
_PREPARED: dict = {}


def _prepared(cell: SweepCell):
    key = (cell.profile, cell.scale, cell.config.seed,
           cell.config.num_negatives, cell.config.dim, cell.session_eval)
    if key not in _PREPARED:
        builder = prepare_session if cell.session_eval else prepare
        _PREPARED[key] = builder(cell.profile, cell.config, scale=cell.scale)
    return _PREPARED[key]


def _init_pool_worker() -> None:
    """Detach forked pool workers from the parent's telemetry stream."""
    obs.set_registry(obs.MetricsRegistry())
    obs.set_telemetry(False)


def _execute_cell(cell: SweepCell) -> tuple[str, RunResult]:
    """Train + evaluate one cell (runs in a pool worker or inline)."""
    config = replace(cell.config, telemetry_dir=None)
    dataset, split, evaluator = _prepared(cell)
    extra_eval = None
    if cell.session_eval:
        from repro.eval.session import SessionEvaluator

        session_evaluator = SessionEvaluator(
            dataset, num_negatives=config.num_negatives, seed=config.seed)

        def extra_eval(model):
            return {"session": session_evaluator.evaluate(model).as_dict()}

    run = run_model(cell.model, dataset, split, evaluator, config,
                    max_len=cell.max_len, isrec_config=cell.isrec_config,
                    sweep=None, sweep_key=cell.key, extra_eval=extra_eval)
    return cell.key, run


def run_cells(cells: list[SweepCell], jobs: int = 1,
              sweep: SweepState | None = None,
              progress: Callable[[SweepCell, RunResult], None] | None = None,
              ) -> dict[str, RunResult]:
    """Execute a grid of sweep cells, ``jobs`` at a time.

    Returns ``{cell.key: RunResult}`` for every cell.  ``jobs <= 1`` runs
    serially in-process (sharing one prepared dataset per profile, exactly
    like the pre-parallel runners); ``jobs > 1`` forks a process pool and
    streams completions back in finish order.  Either way completed cells
    found in ``sweep`` are served from the ledger and new completions are
    recorded there by the calling process only.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    by_key = {cell.key: cell for cell in cells}
    if len(by_key) != len(cells):
        raise ValueError("sweep cells have duplicate ledger keys")
    results: dict[str, RunResult] = {}
    pending: list[SweepCell] = []
    for cell in cells:
        cached = sweep.get(cell.key) if sweep is not None else None
        if cached is not None:
            cached.extras["resumed_from_sweep"] = True
            obs.emit("run", key=cell.key, model=cell.model,
                     dataset=cached.dataset_name, cached=True,
                     hr10=cached.report.hr10)
            results[cell.key] = cached
            if progress is not None:
                progress(cell, cached)
        else:
            pending.append(cell)

    def record(key: str, run: RunResult) -> None:
        if sweep is not None:
            sweep.record(key, run)
        results[key] = run
        if progress is not None:
            progress(by_key[key], run)

    if jobs <= 1 or len(pending) <= 1:
        for cell in pending:
            record(*_execute_cell(cell))
        return results

    obs.emit("parallel_sweep", jobs=min(jobs, len(pending)),
             pending=len(pending), cached=len(results))
    context = multiprocessing.get_context("fork")
    with context.Pool(processes=min(jobs, len(pending)),
                      initializer=_init_pool_worker) as pool:
        for key, run in pool.imap_unordered(_execute_cell, pending):
            # Pool children run with telemetry off; re-emit their run
            # records into the parent's stream on completion.
            obs.emit("run", key=key, model=run.model_name,
                     dataset=run.dataset_name, cached=False,
                     seconds=round(run.seconds, 3), **run.report.as_dict())
            if obs.telemetry_enabled():
                obs.counter("experiments.runs").inc()
                obs.histogram("experiments.run_seconds").observe(run.seconds)
            record(key, run)
        pool.close()
        pool.join()
    return results
