"""Flat parameter/gradient buffers shared across processes.

Data-parallel training moves two kinds of payload between the parent and
its workers every step: the current model parameters (parent -> workers)
and each worker's gradients (workers -> parent).  Both travel through one
contiguous ``float64`` buffer per direction backed by
:mod:`multiprocessing.shared_memory`, so the per-step "all-reduce" is a
handful of vectorised numpy operations on shared pages — no pickling, no
pipe bandwidth proportional to the model size.

:class:`FlatLayout` freezes the mapping between a model's parameter list
and offsets into such a buffer; :class:`SharedFlatBuffer` owns the shared
memory segment.  Both objects are created in the parent before forking,
so workers inherit the mapped pages directly.

``float64`` is deliberate: parameters are float32, and a float32 value
round-trips exactly through float64, so broadcasting parameters through
the buffer is lossless, and accumulating the weighted gradient average in
float64 keeps the data-parallel loss curve within ~1 float32 ulp of the
equivalent single-process large batch (see ``docs/parallelism.md``).
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np


class FlatLayout:
    """Frozen mapping from a parameter list to flat-buffer slices.

    The layout is defined by the order of ``parameters`` — the same order
    ``model.parameters()`` yields in every process, which fork guarantees
    because workers inherit the already-constructed model.
    """

    def __init__(self, parameters):
        parameters = list(parameters)
        if not parameters:
            raise ValueError("FlatLayout needs at least one parameter")
        self.shapes = [tuple(p.data.shape) for p in parameters]
        self.dtypes = [p.data.dtype for p in parameters]
        sizes = [int(p.data.size) for p in parameters]
        self.offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        self.size = int(self.offsets[-1])

    def __len__(self) -> int:
        return len(self.shapes)

    def slices(self):
        """Yield ``(index, slice, shape, dtype)`` for every parameter."""
        for index, (shape, dtype) in enumerate(zip(self.shapes, self.dtypes)):
            yield index, slice(int(self.offsets[index]),
                               int(self.offsets[index + 1])), shape, dtype

    def write_params(self, parameters, out: np.ndarray) -> None:
        """Flatten ``parameters``' data into ``out`` (a ``(size,)`` buffer)."""
        for index, region, _shape, _dtype in self.slices():
            out[region] = parameters[index].data.reshape(-1)

    def read_params(self, buffer: np.ndarray, parameters) -> None:
        """Copy flat ``buffer`` back into ``parameters``' data in place."""
        for index, region, shape, dtype in self.slices():
            np.copyto(parameters[index].data,
                      buffer[region].reshape(shape), casting="unsafe")

    def write_grads(self, parameters, out: np.ndarray) -> list[bool]:
        """Flatten gradients into ``out``; ``None`` grads become zeros.

        Returns the per-parameter presence mask so the reducer can
        distinguish "no gradient flowed" from "the gradient is zero" and
        preserve the single-process optimizer semantics (parameters
        without gradients are skipped, not decayed).
        """
        present = []
        for index, region, _shape, _dtype in self.slices():
            grad = parameters[index].grad
            if grad is None:
                out[region] = 0.0
                present.append(False)
            else:
                out[region] = np.asarray(grad).reshape(-1)
                present.append(True)
        return present

    def assign_grads(self, buffer: np.ndarray, parameters,
                     present: list[bool]) -> None:
        """Install flat ``buffer`` as the parameters' gradients.

        Parameters whose ``present`` flag is ``False`` keep ``grad=None``
        (matching a single-process step in which the graph never reached
        them).
        """
        for index, region, shape, dtype in self.slices():
            if present[index]:
                parameters[index].grad = (
                    buffer[region].reshape(shape).astype(dtype, copy=False))
            else:
                parameters[index].grad = None


class SharedFlatBuffer:
    """A ``float64`` numpy array backed by POSIX shared memory.

    Created once in the parent; forked workers inherit the mapping, so the
    array is the same physical pages in every process.  Only the creating
    process should call :meth:`unlink`.
    """

    def __init__(self, shape: tuple[int, ...]):
        size = int(np.prod(shape))
        if size <= 0:
            raise ValueError(f"shared buffer shape {shape} has no elements")
        self._shm = shared_memory.SharedMemory(create=True,
                                               size=size * np.dtype(np.float64).itemsize)
        self.array = np.ndarray(shape, dtype=np.float64, buffer=self._shm.buf)
        self.array[...] = 0.0

    def close(self) -> None:
        """Release this process's mapping (workers call this on exit)."""
        # Drop the numpy view first: SharedMemory refuses to close while
        # an exported buffer is alive.
        self.array = None
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (creating process only, after close)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked (double shutdown)
            pass


def weighted_average(grads: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """``sum_i w_i * grads[i] / sum_i w_i`` in float64.

    This is the mathematical all-reduce of data-parallel training: when
    each worker's loss is a weighted mean over its shard (weight = number
    of supervised tokens), the weighted average of shard gradients equals
    the gradient of the full-batch loss exactly.
    """
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("weighted_average needs a positive total weight")
    return np.tensordot(weights, grads, axes=1) / total
