"""Generic epoch-based trainer with validation-driven early stopping.

Every neural recommender exposes ``training_batches(rng)`` (an iterable of
opaque batches) and ``training_loss(batch) -> Tensor``; the trainer owns the
optimisation loop: gradient steps with clipping, epoch bookkeeping,
periodic validation through a callback, and early stopping with
best-weights restoration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.optim import Adam
from repro.optim.optimizer import clip_grad_norm


@dataclass
class TrainConfig:
    """Hyper-parameters of the optimisation loop (paper Appendix B regime)."""

    epochs: int = 30
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 1e-6
    clip_norm: float = 5.0
    eval_every: int = 2
    patience: int = 3
    seed: int = 0
    verbose: bool = False

    def __post_init__(self):
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.patience < 0 or self.eval_every <= 0:
            raise ValueError("patience must be >= 0 and eval_every > 0")


@dataclass
class TrainingHistory:
    """Per-epoch loss curve and validation checkpoints."""

    losses: list[float] = field(default_factory=list)
    validation: list[tuple[int, float]] = field(default_factory=list)
    best_score: float = -np.inf
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        """Number of completed epochs."""
        return len(self.losses)


class Trainer:
    """Optimise a model with Adam + gradient clipping + early stopping.

    Parameters
    ----------
    model:
        Object with ``parameters()``, ``train()``, ``eval()``,
        ``state_dict()``, ``load_state_dict()``, ``training_batches(rng)``
        and ``training_loss(batch)``.
    config:
        Loop hyper-parameters.
    validate:
        Optional zero-argument callable returning a scalar score (higher is
        better), typically validation HR@10.  When provided, early stopping
        monitors it and the best weights are restored after training.
    """

    def __init__(self, model, config: TrainConfig,
                 validate: Callable[[], float] | None = None):
        self.model = model
        self.config = config
        self.validate = validate
        self.optimizer = Adam(model.parameters(), lr=config.lr,
                              weight_decay=config.weight_decay)

    def fit(self) -> TrainingHistory:
        """Run the training loop; returns the history (best weights restored)."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        history = TrainingHistory()
        best_state: dict | None = None
        bad_evals = 0
        for epoch in range(1, config.epochs + 1):
            self.model.train()
            epoch_loss = 0.0
            num_batches = 0
            for batch in self.model.training_batches(rng):
                self.optimizer.zero_grad()
                loss = self.model.training_loss(batch)
                if not np.isfinite(float(loss.data)):
                    raise RuntimeError(
                        f"non-finite training loss ({float(loss.data)}) at "
                        f"epoch {epoch}; lower the learning rate or check the "
                        f"input data"
                    )
                loss.backward()
                if config.clip_norm:
                    clip_grad_norm(self.optimizer.parameters, config.clip_norm)
                self.optimizer.step()
                epoch_loss += float(loss.data)
                num_batches += 1
            mean_loss = epoch_loss / max(num_batches, 1)
            history.losses.append(mean_loss)
            on_epoch_end = getattr(self.model, "on_epoch_end", None)
            if callable(on_epoch_end):
                on_epoch_end(epoch)
            if config.verbose:
                print(f"[{getattr(self.model, 'name', 'model')}] "
                      f"epoch {epoch:3d} loss {mean_loss:.4f}")

            should_validate = (
                self.validate is not None
                and (epoch % config.eval_every == 0 or epoch == config.epochs)
            )
            if should_validate:
                self.model.eval()
                score = float(self.validate())
                history.validation.append((epoch, score))
                if config.verbose:
                    print(f"    valid score {score:.4f}")
                if score > history.best_score:
                    history.best_score = score
                    history.best_epoch = epoch
                    best_state = self.model.state_dict()
                    bad_evals = 0
                else:
                    bad_evals += 1
                    if bad_evals > config.patience:
                        history.stopped_early = True
                        break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return history
