"""Generic epoch-based trainer: early stopping, checkpointing, recovery.

Every neural recommender exposes ``training_batches(rng)`` (an iterable of
opaque batches) and ``training_loss(batch) -> Tensor``; the trainer owns the
optimisation loop: gradient steps with clipping, epoch bookkeeping,
periodic validation through a callback, and early stopping with
best-weights restoration.

Fault tolerance (see ``docs/fault-tolerance.md``):

- when ``TrainConfig.checkpoint_dir`` is set, a full-fidelity
  :class:`~repro.train.checkpoint.TrainState` (weights, optimizer moments,
  both RNG streams, epoch counter, history) is written atomically every
  ``checkpoint_every`` epochs with keep-last-``keep_checkpoints`` rotation;
- ``fit(resume_from=...)`` restarts bit-exactly from the newest valid
  checkpoint, falling back through the rotation when newer files fail their
  integrity checks;
- a non-finite loss or gradient norm triggers divergence recovery: roll the
  model/optimizer/RNG back to the start of the epoch, halve the learning
  rate, and retry — up to ``divergence_retries`` times across the run —
  before surfacing a structured :class:`TrainingDiverged` error.

Parallelism (see ``docs/parallelism.md``): ``TrainConfig.prefetch``
overlaps batch assembly with compute in this loop, and
``TrainConfig.num_workers > 1`` selects the multi-process
:class:`repro.parallel.DataParallelTrainer`, which subclasses this class
and replaces only the epoch body with a sharded, all-reduced equivalent.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro import obs
from repro.optim import Adam
from repro.optim.optimizer import clip_grad_norm, grad_norm
from repro.tensor.tensor import tensor_allocs
from repro.train.checkpoint import (
    CheckpointManager,
    TrainState,
    load_train_state,
)
from repro.utils.seeding import get_rng
from repro.utils.serialization import read_npz_verified, save_checkpoint


def _batch_counts(batch) -> tuple[int | None, int | None]:
    """Best-effort ``(sequences, tokens)`` of an opaque training batch.

    The trainer treats batches as opaque, so throughput telemetry
    introspects conservatively: a ``(users, inputs, targets, mask)``-style
    tuple yields ``len(inputs)`` sequences and ``mask.sum()`` (or the count
    of non-padding inputs) tokens; anything unrecognisable yields ``None``.
    """
    if not isinstance(batch, (tuple, list)) or len(batch) < 2:
        return None, None
    try:
        inputs = np.asarray(batch[1])
    except (TypeError, ValueError):
        return None, None
    if inputs.ndim < 1 or not inputs.shape:
        return None, None
    sequences = int(inputs.shape[0])
    tokens = None
    try:
        if len(batch) >= 4 and batch[3] is not None:
            tokens = int(np.asarray(batch[3], dtype=np.float64).sum())
        elif inputs.ndim >= 2 and np.issubdtype(inputs.dtype, np.integer):
            tokens = int((inputs != 0).sum())
    except (TypeError, ValueError):
        tokens = None
    return sequences, tokens


class TrainingDiverged(RuntimeError):
    """Training kept producing non-finite numbers after every recovery retry.

    Carries the failing ``epoch``, the last learning rate ``lr``, and the
    number of rollback ``retries`` that were attempted.
    """

    def __init__(self, message: str, *, epoch: int, lr: float, retries: int):
        super().__init__(message)
        self.epoch = epoch
        self.lr = lr
        self.retries = retries


@dataclass
class TrainConfig:
    """Hyper-parameters of the optimisation loop (paper Appendix B regime).

    ``clip_norm=None`` explicitly disables gradient clipping; any configured
    value must be positive.  ``checkpoint_dir=None`` disables epoch
    checkpointing.  ``divergence_retries`` bounds how many rollback + LR
    halving recoveries one ``fit`` may perform before raising
    :class:`TrainingDiverged`.

    Parallelism (``docs/parallelism.md``): ``num_workers > 1`` makes
    :meth:`repro.models.base.SequenceRecommender.fit` train through the
    multi-process :class:`repro.parallel.DataParallelTrainer` instead of
    this single-process loop; ``prefetch > 0`` overlaps batch assembly
    with compute through a :class:`repro.parallel.PrefetchLoader` holding
    up to ``prefetch`` assembled batches (both trainers honour it).

    Training objectives (``docs/training-objectives.md``):
    ``contrastive_weight > 0`` adds the intent-contrastive InfoNCE
    auxiliary loss to :meth:`repro.models.base.SequenceRecommender.training_loss`
    with that coefficient; ``contrastive_temperature`` sharpens the
    similarity distribution.  Weight ``0.0`` (the default) takes the exact
    pre-existing code path, so baselines reproduce bit-for-bit.
    """

    epochs: int = 30
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 1e-6
    clip_norm: float | None = 5.0
    eval_every: int = 2
    patience: int = 3
    seed: int = 0
    verbose: bool = False
    divergence_retries: int = 3
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    keep_checkpoints: int = 3
    num_workers: int = 1
    prefetch: int = 0
    contrastive_weight: float = 0.0
    contrastive_temperature: float = 0.2

    def __post_init__(self):
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.patience < 0 or self.eval_every <= 0:
            raise ValueError("patience must be >= 0 and eval_every > 0")
        if self.clip_norm is not None and not self.clip_norm > 0:
            raise ValueError(
                f"clip_norm must be positive or None to disable clipping, "
                f"got {self.clip_norm!r}")
        if self.divergence_retries < 0:
            raise ValueError("divergence_retries must be >= 0")
        if self.checkpoint_every <= 0 or self.keep_checkpoints < 1:
            raise ValueError(
                "checkpoint_every must be > 0 and keep_checkpoints >= 1")
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}")
        if self.prefetch < 0:
            raise ValueError(
                f"prefetch must be >= 0 (0 disables), got {self.prefetch}")
        if not (np.isfinite(self.contrastive_weight)
                and self.contrastive_weight >= 0):
            raise ValueError(
                f"contrastive_weight must be finite and >= 0 (0 disables), "
                f"got {self.contrastive_weight!r}")
        if not self.contrastive_temperature > 0:
            raise ValueError(
                f"contrastive_temperature must be positive, "
                f"got {self.contrastive_temperature!r}")


@dataclass
class TrainingHistory:
    """Per-epoch loss curve, validation checkpoints, and recovery log."""

    losses: list[float] = field(default_factory=list)
    validation: list[tuple[int, float]] = field(default_factory=list)
    best_score: float = -np.inf
    best_epoch: int = -1
    stopped_early: bool = False
    divergence_recoveries: list[dict] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        """Number of completed epochs."""
        return len(self.losses)

    def to_dict(self) -> dict:
        """JSON-serializable form (used by the checkpoint meta blob)."""
        return {
            "losses": [float(loss) for loss in self.losses],
            "validation": [[int(epoch), float(score)]
                           for epoch, score in self.validation],
            "best_score": float(self.best_score),
            "best_epoch": int(self.best_epoch),
            "stopped_early": bool(self.stopped_early),
            "divergence_recoveries": list(self.divergence_recoveries),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainingHistory":
        """Inverse of :meth:`to_dict`."""
        return cls(
            losses=[float(loss) for loss in payload.get("losses", [])],
            validation=[(int(epoch), float(score))
                        for epoch, score in payload.get("validation", [])],
            best_score=float(payload.get("best_score", -np.inf)),
            best_epoch=int(payload.get("best_epoch", -1)),
            stopped_early=bool(payload.get("stopped_early", False)),
            divergence_recoveries=list(payload.get("divergence_recoveries", [])),
        )


class Trainer:
    """Optimise a model with Adam + gradient clipping + early stopping.

    Parameters
    ----------
    model:
        Object with ``parameters()``, ``train()``, ``eval()``,
        ``state_dict()``, ``load_state_dict()``, ``training_batches(rng)``
        and ``training_loss(batch)``.
    config:
        Loop hyper-parameters.
    validate:
        Optional zero-argument callable returning a scalar score (higher is
        better), typically validation HR@10.  When provided, early stopping
        monitors it and the best weights are restored after training.
    """

    def __init__(self, model, config: TrainConfig,
                 validate: Callable[[], float] | None = None):
        self.model = model
        self.config = config
        self.validate = validate
        self.optimizer = Adam(model.parameters(), lr=config.lr,
                              weight_decay=config.weight_decay)
        self._best_checkpoint_path: Path | None = None

    @property
    def best_checkpoint_path(self) -> Path | None:
        """On-disk checkpoint of the best validation weights, if any.

        Populated only when ``config.checkpoint_dir`` is set and at least one
        validation improved on the previous best; survives early stopping so
        callers can reload the restored weights independently of the trainer.
        """
        return self._best_checkpoint_path

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def fit(self, resume_from: str | Path | bool | None = None) -> TrainingHistory:
        """Run the training loop; returns the history (best weights restored).

        ``resume_from`` may be a checkpoint *file*, a checkpoint *directory*
        (the newest valid file in the rotation wins, falling back past
        corrupt ones), or ``True`` as a shorthand for
        ``config.checkpoint_dir``.  A missing/empty directory simply starts
        fresh, so crash-looped jobs can always pass their checkpoint dir.
        """
        config = self.config
        rng = np.random.default_rng(config.seed)
        history = TrainingHistory()
        best_state: dict | None = None
        bad_evals = 0
        recoveries_used = 0
        start_epoch = 1
        manager = (CheckpointManager(config.checkpoint_dir,
                                     keep=config.keep_checkpoints)
                   if config.checkpoint_dir is not None else None)

        resumed = self._resolve_resume(resume_from, manager)
        if resumed is not None:
            self.model.load_state_dict(resumed.model_state)
            self.optimizer.load_state_dict(resumed.optimizer_state)
            if resumed.trainer_rng is not None:
                rng.bit_generator.state = resumed.trainer_rng
            if resumed.global_rng is not None:
                get_rng().bit_generator.state = resumed.global_rng
            # Pre-contrastive checkpoints simply lack the key: clean resume.
            self._restore_aux_rng((resumed.extras or {}).get("aux_rng"))
            history = resumed.history
            bad_evals = resumed.bad_evals
            recoveries_used = resumed.recoveries_used
            start_epoch = resumed.epoch + 1
            if resumed.best_checkpoint_path:
                best_path = Path(resumed.best_checkpoint_path)
                if best_path.exists():
                    best_state, _meta = read_npz_verified(best_path)
                    self._best_checkpoint_path = best_path

        obs.emit("train_start", model=getattr(self.model, "name", "model"),
                 epochs=config.epochs, start_epoch=start_epoch,
                 lr=self.optimizer.lr, resumed=resumed is not None)
        epoch = start_epoch
        while epoch <= config.epochs and not history.stopped_early:
            snapshot = self._capture_snapshot(rng)
            epoch_start = time.perf_counter()
            mean_loss, divergence = self._run_epoch(rng, epoch=epoch)
            if divergence is not None:
                if recoveries_used >= config.divergence_retries:
                    raise TrainingDiverged(
                        f"training diverged at epoch {epoch}: {divergence}; "
                        f"gave up after {recoveries_used} rollback/LR-halving "
                        f"retries (lr {self.optimizer.lr:g})",
                        epoch=epoch, lr=self.optimizer.lr,
                        retries=recoveries_used)
                recoveries_used += 1
                self._restore_snapshot(snapshot, rng)
                lr_before = self.optimizer.lr
                self.optimizer.lr = lr_before / 2.0
                history.divergence_recoveries.append({
                    "epoch": int(epoch), "reason": divergence,
                    "lr_before": float(lr_before),
                    "lr_after": float(self.optimizer.lr),
                })
                obs.emit("divergence_recovery", epoch=epoch, reason=divergence,
                         lr_before=float(lr_before),
                         lr_after=float(self.optimizer.lr),
                         retries_used=recoveries_used)
                if obs.telemetry_enabled():
                    obs.counter("trainer.divergence_recoveries").inc()
                if config.verbose:
                    print(f"[{getattr(self.model, 'name', 'model')}] "
                          f"epoch {epoch:3d} diverged ({divergence}); rolled "
                          f"back, lr {lr_before:g} -> {self.optimizer.lr:g}")
                continue  # retry the same epoch from the rolled-back state

            history.losses.append(mean_loss)
            obs.emit("epoch", epoch=epoch, mean_loss=mean_loss,
                     seconds=round(time.perf_counter() - epoch_start, 6),
                     lr=self.optimizer.lr)
            on_epoch_end = getattr(self.model, "on_epoch_end", None)
            if callable(on_epoch_end):
                on_epoch_end(epoch)
            if config.verbose:
                print(f"[{getattr(self.model, 'name', 'model')}] "
                      f"epoch {epoch:3d} loss {mean_loss:.4f}")

            should_validate = (
                self.validate is not None
                and (epoch % config.eval_every == 0 or epoch == config.epochs)
            )
            if should_validate:
                self.model.eval()
                with obs.profile("validate"):
                    score = float(self.validate())
                history.validation.append((epoch, score))
                obs.emit("validation", epoch=epoch, score=score,
                         best_score=max(score, history.best_score),
                         improved=score > history.best_score)
                if config.verbose:
                    print(f"    valid score {score:.4f}")
                if score > history.best_score:
                    history.best_score = score
                    history.best_epoch = epoch
                    best_state = self.model.state_dict()
                    bad_evals = 0
                    if manager is not None:
                        self._best_checkpoint_path = save_checkpoint(
                            self.model, manager.directory / "best.npz")
                else:
                    bad_evals += 1
                    if bad_evals > config.patience:
                        history.stopped_early = True

            if manager is not None and (epoch % config.checkpoint_every == 0
                                        or epoch == config.epochs
                                        or history.stopped_early):
                with obs.timer("trainer.checkpoint_s") as checkpoint_timer:
                    saved_path = manager.save(TrainState(
                        epoch=epoch,
                        model_state=self.model.state_dict(),
                        optimizer_state=self.optimizer.state_dict(),
                        history=history,
                        trainer_rng=copy.deepcopy(rng.bit_generator.state),
                        global_rng=copy.deepcopy(get_rng().bit_generator.state),
                        bad_evals=bad_evals,
                        recoveries_used=recoveries_used,
                        best_checkpoint_path=(str(self._best_checkpoint_path)
                                              if self._best_checkpoint_path else None),
                        model_class=type(self.model).__name__,
                        extras=self._extras_with_aux_rng(),
                    ))
                obs.emit("checkpoint", epoch=epoch, path=str(saved_path),
                         seconds=round(checkpoint_timer.elapsed, 6))
            epoch += 1

        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        obs.emit("train_end", model=getattr(self.model, "name", "model"),
                 epochs_run=history.epochs_run,
                 best_epoch=history.best_epoch,
                 best_score=(None if history.best_score == -np.inf
                             else float(history.best_score)),
                 stopped_early=history.stopped_early,
                 recoveries_used=recoveries_used)
        return history

    # ------------------------------------------------------------------
    # One epoch
    # ------------------------------------------------------------------
    def _run_epoch(self, rng, epoch: int = 0) -> tuple[float | None, str | None]:
        """Run one epoch; returns ``(mean_loss, None)`` or ``(None, reason)``
        when a non-finite loss/gradient demands divergence recovery.

        With telemetry enabled (``repro.obs``) every optimisation step emits
        a ``train_step`` record — loss, gradient norm, effective LR,
        sequences/s, tokens/s, step wall time, and the number of tensor
        temporaries the step materialised — and feeds the registry
        histograms the end-of-run summary aggregates.
        """
        config = self.config
        self.model.train()
        epoch_loss = 0.0
        num_batches = 0
        telemetry = obs.telemetry_enabled()
        batches = self.model.training_batches(rng)
        loader = None
        if config.prefetch > 0:
            from repro.parallel.prefetch import PrefetchLoader
            loader = PrefetchLoader(batches, capacity=config.prefetch)
            batches = loader
        try:
            for batch in batches:
                if telemetry:
                    step_start = time.perf_counter()
                    allocs_before = tensor_allocs()
                self.optimizer.zero_grad()
                with obs.profile("train_step"):
                    with obs.profile("forward"):
                        loss = self.model.training_loss(batch)
                    value = float(loss.data)
                    if not np.isfinite(value):
                        return None, f"non-finite training loss ({value})"
                    with obs.profile("backward"):
                        loss.backward()
                    if config.clip_norm is not None:
                        norm = clip_grad_norm(self.optimizer.parameters,
                                              config.clip_norm)
                    else:
                        norm = grad_norm(self.optimizer.parameters)
                    if not np.isfinite(norm):
                        return None, f"non-finite gradient norm ({norm})"
                    with obs.profile("optimizer_step"):
                        self.optimizer.step()
                epoch_loss += value
                num_batches += 1
                if telemetry:
                    self._emit_step(epoch, num_batches - 1, value, float(norm),
                                    time.perf_counter() - step_start,
                                    tensor_allocs() - allocs_before, batch)
        finally:
            if loader is not None:
                loader.close()
        return epoch_loss / max(num_batches, 1), None

    def _emit_step(self, epoch: int, step: int, loss: float, norm: float,
                   seconds: float, allocs: int, batch) -> None:
        """Record one optimisation step (telemetry-enabled path only)."""
        sequences, tokens = _batch_counts(batch)
        seq_per_s = (sequences / seconds) if sequences and seconds > 0 else None
        tok_per_s = (tokens / seconds) if tokens and seconds > 0 else None
        obs.emit("train_step", epoch=epoch, step=step, loss=loss,
                 grad_norm=norm, lr=self.optimizer.lr,
                 step_time_s=round(seconds, 6), tensor_allocs=allocs,
                 sequences=sequences, tokens=tokens,
                 seq_per_s=None if seq_per_s is None else round(seq_per_s, 3),
                 tok_per_s=None if tok_per_s is None else round(tok_per_s, 3))
        obs.counter("trainer.steps").inc()
        obs.gauge("trainer.lr").set(self.optimizer.lr)
        obs.histogram("trainer.loss").observe(loss)
        obs.histogram("trainer.grad_norm").observe(norm)
        obs.histogram("trainer.step_time_s").observe(seconds)
        obs.histogram("trainer.step_tensor_allocs").observe(allocs)
        if seq_per_s is not None:
            obs.histogram("trainer.seq_per_s").observe(seq_per_s)
        if tok_per_s is not None:
            obs.histogram("trainer.tok_per_s").observe(tok_per_s)

    def _checkpoint_extras(self) -> dict:
        """Sub-class hook: extra JSON-able metadata stored per checkpoint.

        :class:`repro.parallel.DataParallelTrainer` stamps the world size
        here; checkpoints remain loadable by either trainer regardless.
        """
        return {}

    def _extras_with_aux_rng(self) -> dict:
        """Checkpoint extras plus the model's auxiliary-loss RNG stream.

        Merged outside :meth:`_checkpoint_extras` so sub-classes that
        override the hook (the data-parallel trainer) cannot silently drop
        the stream a contrastive resume needs for bit-exactness.
        """
        extras = self._checkpoint_extras()
        aux = self._aux_rng_state()
        if aux is not None:
            extras = {**extras, "aux_rng": aux}
        return extras

    def _aux_rng_state(self):
        """The model's auxiliary-loss RNG state, or ``None`` when absent."""
        getter = getattr(self.model, "aux_rng_state", None)
        return getter() if callable(getter) else None

    def _restore_aux_rng(self, state) -> None:
        if state is None:
            return
        setter = getattr(self.model, "set_aux_rng_state", None)
        if callable(setter):
            setter(state)

    # ------------------------------------------------------------------
    # Snapshots (divergence rollback) and resume resolution
    # ------------------------------------------------------------------
    def _capture_snapshot(self, rng) -> dict:
        return {
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "trainer_rng": copy.deepcopy(rng.bit_generator.state),
            "global_rng": copy.deepcopy(get_rng().bit_generator.state),
            "aux_rng": self._aux_rng_state(),
        }

    def _restore_snapshot(self, snapshot: dict, rng) -> None:
        self.model.load_state_dict(snapshot["model"])
        self.optimizer.load_state_dict(snapshot["optimizer"])
        rng.bit_generator.state = copy.deepcopy(snapshot["trainer_rng"])
        get_rng().bit_generator.state = copy.deepcopy(snapshot["global_rng"])
        self._restore_aux_rng(snapshot.get("aux_rng"))

    def _resolve_resume(self, resume_from, manager) -> TrainState | None:
        if resume_from is None or resume_from is False:
            return None
        if resume_from is True:
            if manager is None:
                raise ValueError(
                    "fit(resume_from=True) requires config.checkpoint_dir")
            found = manager.load_latest()
            return found[0] if found else None
        path = Path(resume_from)
        if path.is_file():
            return load_train_state(path)
        if path.is_dir() or not path.exists():
            found = CheckpointManager(
                path, keep=self.config.keep_checkpoints).load_latest()
            return found[0] if found else None
        return None
