"""Training harness shared by every neural recommender."""

from repro.train.trainer import TrainConfig, Trainer, TrainingHistory

__all__ = ["TrainConfig", "Trainer", "TrainingHistory"]
