"""Training harness shared by every neural recommender."""

from repro.train.checkpoint import (
    CheckpointManager,
    TrainState,
    load_model_state,
    load_train_state,
    save_train_state,
)
from repro.train.trainer import (
    TrainConfig,
    Trainer,
    TrainingDiverged,
    TrainingHistory,
)

__all__ = [
    "TrainConfig",
    "Trainer",
    "TrainingDiverged",
    "TrainingHistory",
    "TrainState",
    "CheckpointManager",
    "save_train_state",
    "load_train_state",
    "load_model_state",
]
