"""Full-fidelity training checkpoints with rotation and integrity fallback.

A :class:`TrainState` captures everything needed to resume a run bit-exactly:
model weights, optimizer moments (via ``Optimizer.state_dict``), both RNG
streams (the trainer's batch generator and the global :mod:`repro` stream),
the epoch counter, early-stopping bookkeeping, and the
:class:`~repro.train.trainer.TrainingHistory` so far.

On disk a state is one ``.npz`` archive written atomically
(:func:`repro.utils.serialization.write_npz_atomic`): model parameters under
``model/<name>`` keys, optimizer buffers under ``optim/<name>`` keys, and all
scalar state (epoch, RNG states, history, optimizer hyper-parameters) in the
versioned ``__meta__`` JSON blob alongside per-array CRC-32 checksums.

:class:`CheckpointManager` owns a directory of ``ckpt-epochNNNNN.npz`` files,
keeps only the newest ``keep`` of them, and on load falls back through the
rotation when the newest file fails its integrity checks (truncated write,
bit rot), so one bad file never strands a resumable run.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.utils.serialization import (
    CheckpointIntegrityError,
    read_npz_verified,
    write_npz_atomic,
)

_MODEL_PREFIX = "model/"
_OPTIM_PREFIX = "optim/"
_ARRAY_SENTINEL = "__array__"
_ARRAY_LIST_KEY = "__array_list__"


@dataclass
class TrainState:
    """Everything the trainer needs to continue a run from epoch ``epoch+1``."""

    epoch: int
    model_state: dict[str, np.ndarray]
    optimizer_state: dict
    history: "object"  # TrainingHistory (kept loose to avoid a cyclic import)
    trainer_rng: dict | None = None
    global_rng: dict | None = None
    bad_evals: int = 0
    recoveries_used: int = 0
    best_checkpoint_path: str | None = None
    model_class: str = ""
    scheduler_state: dict | None = None
    extras: dict = field(default_factory=dict)


def _split_optimizer_state(state: dict) -> tuple[dict[str, np.ndarray], dict]:
    """Separate array-valued optimizer entries from JSON-able scalars."""
    arrays: dict[str, np.ndarray] = {}
    scalars: dict = {}
    for key, value in state.items():
        if isinstance(value, np.ndarray):
            arrays[key] = value
            scalars[key] = _ARRAY_SENTINEL
        elif (isinstance(value, (list, tuple))
              and all(isinstance(item, np.ndarray) for item in value)
              and len(value) > 0):
            for index, item in enumerate(value):
                arrays[f"{key}.{index}"] = item
            scalars[key] = {_ARRAY_LIST_KEY: len(value)}
        elif value is None or isinstance(value, (bool, int, float, str)):
            scalars[key] = value
        else:
            raise TypeError(
                f"optimizer state entry {key!r} has unserializable type "
                f"{type(value).__name__}")
    return arrays, scalars


def _join_optimizer_state(scalars: dict, arrays: dict[str, np.ndarray]) -> dict:
    """Inverse of :func:`_split_optimizer_state`."""
    state: dict = {}
    for key, value in scalars.items():
        if value == _ARRAY_SENTINEL:
            state[key] = arrays[key]
        elif isinstance(value, dict) and _ARRAY_LIST_KEY in value:
            state[key] = [arrays[f"{key}.{index}"]
                          for index in range(value[_ARRAY_LIST_KEY])]
        else:
            state[key] = value
    return state


def save_train_state(state: TrainState, path: str | Path) -> Path:
    """Atomically write ``state`` to ``path`` (checksummed npz)."""
    arrays = {f"{_MODEL_PREFIX}{name}": np.asarray(value)
              for name, value in state.model_state.items()}
    optim_arrays, optim_scalars = _split_optimizer_state(state.optimizer_state)
    for key, value in optim_arrays.items():
        arrays[f"{_OPTIM_PREFIX}{key}"] = np.asarray(value)
    meta = {
        "kind": "train_state",
        "epoch": int(state.epoch),
        "bad_evals": int(state.bad_evals),
        "recoveries_used": int(state.recoveries_used),
        "best_checkpoint_path": state.best_checkpoint_path,
        "model_class": state.model_class,
        "history": state.history.to_dict(),
        "trainer_rng": state.trainer_rng,
        "global_rng": state.global_rng,
        "optimizer_scalars": optim_scalars,
        "scheduler_state": state.scheduler_state,
        "extras": state.extras,
    }
    return write_npz_atomic(path, arrays, meta)


def load_train_state(path: str | Path) -> TrainState:
    """Load and integrity-check a :class:`TrainState` archive.

    Raises :class:`~repro.utils.serialization.CheckpointIntegrityError` on a
    truncated/corrupt file or a non-train-state archive.
    """
    from repro.train.trainer import TrainingHistory

    arrays, meta = read_npz_verified(path)
    if meta.get("kind") != "train_state":
        raise CheckpointIntegrityError(
            f"{path}: not a TrainState checkpoint (kind={meta.get('kind')!r})")
    model_state = {key[len(_MODEL_PREFIX):]: value
                   for key, value in arrays.items()
                   if key.startswith(_MODEL_PREFIX)}
    optim_arrays = {key[len(_OPTIM_PREFIX):]: value
                    for key, value in arrays.items()
                    if key.startswith(_OPTIM_PREFIX)}
    optimizer_state = _join_optimizer_state(meta["optimizer_scalars"],
                                            optim_arrays)
    return TrainState(
        epoch=int(meta["epoch"]),
        model_state=model_state,
        optimizer_state=optimizer_state,
        history=TrainingHistory.from_dict(meta["history"]),
        trainer_rng=meta.get("trainer_rng"),
        global_rng=meta.get("global_rng"),
        bad_evals=int(meta.get("bad_evals", 0)),
        recoveries_used=int(meta.get("recoveries_used", 0)),
        best_checkpoint_path=meta.get("best_checkpoint_path"),
        model_class=meta.get("model_class", ""),
        scheduler_state=meta.get("scheduler_state"),
        extras=meta.get("extras", {}),
    )


def load_model_state(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Model weights + meta from *any* checkpoint archive in the project.

    Accepts both archive kinds the training stack writes — a full
    :class:`TrainState` (weights under ``model/`` keys) and a plain
    :func:`repro.utils.serialization.save_checkpoint` state-dict archive —
    and returns ``(model_state, meta)`` with bare parameter names either
    way.  This is what the serving exporter builds inference artifacts
    from, so a best-checkpoint file and a resume checkpoint are equally
    valid export sources.
    """
    arrays, meta = read_npz_verified(path)
    if meta.get("kind") == "train_state":
        model_state = {key[len(_MODEL_PREFIX):]: value
                       for key, value in arrays.items()
                       if key.startswith(_MODEL_PREFIX)}
        if not model_state:
            raise CheckpointIntegrityError(
                f"{path}: train_state archive holds no model/ arrays")
        return model_state, meta
    if "model_class" in meta:  # save_checkpoint state-dict archive
        return arrays, meta
    raise CheckpointIntegrityError(
        f"{path}: not a model checkpoint (kind={meta.get('kind')!r}, "
        f"meta keys={sorted(meta)})")


class CheckpointManager:
    """Keep-last-K rotation of :class:`TrainState` files in one directory.

    File names encode the epoch (``ckpt-epoch00012.npz``) so the rotation
    order is stable under lexicographic sort regardless of mtime games.
    """

    def __init__(self, directory: str | Path, keep: int = 3):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = int(keep)

    def path_for(self, epoch: int) -> Path:
        """Rotation slot for ``epoch``."""
        return self.directory / f"ckpt-epoch{epoch:05d}.npz"

    def checkpoints(self) -> list[Path]:
        """All rotation files, oldest first."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("ckpt-epoch*.npz"))

    def save(self, state: TrainState) -> Path:
        """Write ``state`` to its epoch slot and prune beyond ``keep``."""
        path = save_train_state(state, self.path_for(state.epoch))
        for stale in self.checkpoints()[:-self.keep]:
            stale.unlink(missing_ok=True)
        return path

    def load_latest(self) -> tuple[TrainState, Path] | None:
        """Newest checkpoint that passes integrity checks, or ``None``.

        Falls back through the rotation when newer files are corrupt; raises
        :class:`~repro.utils.serialization.CheckpointIntegrityError` only when
        checkpoints exist but *none* of them is loadable.
        """
        failures: list[str] = []
        for path in reversed(self.checkpoints()):
            try:
                return load_train_state(path), path
            except CheckpointIntegrityError as exc:
                failures.append(str(exc))
                warnings.warn(
                    f"checkpoint {path.name} failed integrity check; falling "
                    f"back to the previous one in the rotation ({exc})",
                    RuntimeWarning, stacklevel=2)
        if failures:
            raise CheckpointIntegrityError(
                "no checkpoint in the rotation passed integrity checks:\n  "
                + "\n  ".join(failures))
        return None
