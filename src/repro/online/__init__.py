"""Online learning: close the train → serve → observe loop.

The serving tier emits every ``observe(user, item)`` into a ring-buffered
:class:`EventLog`; an :class:`OnlineLearner` drains it in order, runs
incremental fine-tuning rounds on the fused ``training_loss`` path with
full checkpoint/divergence crash safety, and publishes checksummed
artifacts into the live :class:`~repro.serve.ServingCluster` through the
canary-first hot-swap — gated by an interleaved :class:`ShadowEvaluator`
that refuses regressing candidates with a typed
:class:`ShadowRegression`.  See ``docs/online-learning.md``.
"""

from repro.online.events import EventLog, InteractionEvent
from repro.online.learner import OnlineConfig, OnlineLearner
from repro.online.shadow import ShadowEvaluator, ShadowRegression, ShadowReport

__all__ = [
    "EventLog",
    "InteractionEvent",
    "OnlineConfig",
    "OnlineLearner",
    "ShadowEvaluator",
    "ShadowRegression",
    "ShadowReport",
]
