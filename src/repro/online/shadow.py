"""Interleaved shadow evaluation gating artifact promotion.

Before :class:`~repro.online.OnlineLearner` rolls a fine-tuned artifact
into the live cluster, the candidate must survive a shadow comparison
against the incumbent on a held-out next-item stream: for every example
the *same* request runs through both engines back to back (the pairing is
interleaved — incumbent-first on even examples, candidate-first on odd —
so neither engine systematically benefits from cache warmth), and the
held-out item's position in each top-K yields paired HR@k / NDCG@k
samples.  The deltas in the resulting :class:`ShadowReport` decide the
rollout: a candidate whose HR@k drops more than ``tolerance`` below the
incumbent is refused with a typed :class:`ShadowRegression` carrying the
full report, and the cluster keeps serving the incumbent.

NDCG follows the :func:`repro.eval.metrics.ndcg_at_k` convention
(``1 / log2(rank + 1)`` for a hit at 1-based ``rank``, 0 for a miss).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class ShadowRegression(RuntimeError):
    """Candidate artifact refused: it regresses beyond tolerance.

    Carries the full :class:`ShadowReport` and the tolerance that was
    applied, so callers (and telemetry) can see exactly how far the
    candidate fell short.
    """

    def __init__(self, report: "ShadowReport", tolerance: float):
        super().__init__(
            f"candidate refused by shadow evaluation: HR@{report.k} "
            f"{report.candidate_hr:.4f} vs incumbent {report.incumbent_hr:.4f} "
            f"(delta {report.hr_delta:+.4f} < -{tolerance:g})")
        self.report = report
        self.tolerance = float(tolerance)


@dataclass(frozen=True)
class ShadowReport:
    """Paired incumbent/candidate metrics from one shadow evaluation."""

    k: int
    examples: int
    incumbent_hr: float
    incumbent_ndcg: float
    candidate_hr: float
    candidate_ndcg: float

    @property
    def hr_delta(self) -> float:
        """Candidate minus incumbent HR@k (negative = regression)."""
        return self.candidate_hr - self.incumbent_hr

    @property
    def ndcg_delta(self) -> float:
        """Candidate minus incumbent NDCG@k (negative = regression)."""
        return self.candidate_ndcg - self.incumbent_ndcg

    def to_dict(self) -> dict:
        """JSON-friendly form (benchmarks, telemetry events)."""
        return {
            "k": int(self.k),
            "examples": int(self.examples),
            "incumbent_hr": float(self.incumbent_hr),
            "incumbent_ndcg": float(self.incumbent_ndcg),
            "candidate_hr": float(self.candidate_hr),
            "candidate_ndcg": float(self.candidate_ndcg),
            "hr_delta": float(self.hr_delta),
            "ndcg_delta": float(self.ndcg_delta),
        }


class ShadowEvaluator:
    """Compare two serving engines on a held-out next-item stream.

    Parameters
    ----------
    examples:
        Iterable of ``(user, history, target)`` triples: the engine is
        given ``history`` (which must *not* contain ``target`` at its
        tail — this is the standard leave-one-out next-item setup) and is
        scored on whether ``target`` appears in its top-``k``.
    k:
        Cutoff for HR@k / NDCG@k.
    """

    def __init__(self, examples, k: int = 10):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.examples = [(int(user), [int(item) for item in history],
                          int(target))
                         for user, history, target in examples]
        if not self.examples:
            raise ValueError("shadow evaluation needs at least one example")

    @classmethod
    def from_histories(cls, histories: dict[int, list[int]],
                       k: int = 10) -> "ShadowEvaluator":
        """Hold out each user's last item as the next-item target.

        Users with fewer than 2 interactions cannot yield an example and
        are skipped.
        """
        examples = [(user, list(history[:-1]), int(history[-1]))
                    for user, history in sorted(histories.items())
                    if len(history) >= 2]
        return cls(examples, k=k)

    def _gain(self, engine, user: int, history, target: int) -> tuple[float, float]:
        """(hit, ndcg) of ``target`` in the engine's top-K for ``history``."""
        engine.set_history(user, history)
        items = [item for item, _score in
                 engine.recommend(user, k=self.k, filter_seen=True)]
        if target in items:
            rank = items.index(target) + 1
            return 1.0, float(1.0 / np.log2(rank + 1))
        return 0.0, 0.0

    def evaluate(self, incumbent, candidate) -> ShadowReport:
        """Run the interleaved comparison; returns the paired report.

        Both engines see identical histories per example; the order the
        two are queried alternates between examples.
        """
        hits = np.zeros((2, len(self.examples)))
        gains = np.zeros((2, len(self.examples)))
        engines = (incumbent, candidate)
        for index, (user, history, target) in enumerate(self.examples):
            order = (0, 1) if index % 2 == 0 else (1, 0)
            for side in order:
                hit, gain = self._gain(engines[side], user, history, target)
                hits[side, index] = hit
                gains[side, index] = gain
        return ShadowReport(
            k=self.k, examples=len(self.examples),
            incumbent_hr=float(hits[0].mean()),
            incumbent_ndcg=float(gains[0].mean()),
            candidate_hr=float(hits[1].mean()),
            candidate_ndcg=float(gains[1].mean()),
        )

    def gate(self, incumbent, candidate, tolerance: float) -> ShadowReport:
        """Evaluate and enforce the rollout gate.

        Returns the report when the candidate's HR@k is within
        ``tolerance`` of the incumbent's; raises :class:`ShadowRegression`
        (carrying the report) otherwise.
        """
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        report = self.evaluate(incumbent, candidate)
        if report.hr_delta < -float(tolerance):
            raise ShadowRegression(report, tolerance)
        return report
