"""Incremental fine-tuning from the serving event stream, with gated rollout.

:class:`OnlineLearner` closes the train → serve → observe loop
(``docs/online-learning.md``): it drains the
:class:`~repro.online.EventLog` the serving tier feeds, folds fresh
interactions into its own history store, runs a bounded number of
optimisation steps per *round* on the standard fused
``training_loss`` path (next-item cross-entropy over the touched users'
updated histories), and periodically exports a checksummed
``inference_artifact`` that is rolled into the live
:class:`~repro.serve.ServingCluster` through the canary-first
:meth:`~repro.serve.ServingCluster.swap` — but only after the candidate
survives :class:`~repro.online.ShadowEvaluator` gating
(:class:`~repro.online.ShadowRegression` otherwise).

Crash safety reuses the PR-1 checkpoint machinery verbatim: every round
boundary writes a full-fidelity :class:`~repro.train.TrainState` (weights,
Adam moments, both RNG streams) whose ``extras`` additionally carry the
event-stream cursor and the learner's history store, so a learner killed
mid-round resumes bit-exactly — it re-drains the same events from the
still-buffered ring and replays the identical round.  Divergence recovery
is the Trainer's too: a non-finite loss or gradient norm rolls the round
back, halves the learning rate, and retries, bounded by
``divergence_retries`` before raising
:class:`~repro.train.TrainingDiverged`.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.data.batching import next_item_batches
from repro.online.events import EventLog
from repro.online.shadow import ShadowEvaluator, ShadowRegression
from repro.optim import Adam
from repro.optim.optimizer import clip_grad_norm, grad_norm
from repro.serve.artifact import export_artifact
from repro.serve.quantize import engine_for_artifact
from repro.train.checkpoint import CheckpointManager, TrainState, load_train_state
from repro.train.trainer import TrainingDiverged, TrainingHistory
from repro.utils.seeding import get_rng


@dataclass
class OnlineConfig:
    """Tuning knobs of the online loop (see ``docs/online-learning.md``).

    ``steps_per_round`` bounds the optimisation work one round may do
    (freshness beats convergence online); ``min_events`` skips the
    fine-tune when too few fresh events arrived (the cursor still
    advances); ``export_every`` controls how many rounds
    :meth:`OnlineLearner.run` fine-tunes between publish attempts
    (``0`` = never publish automatically); ``quantize="int8"`` exports
    int8 artifacts that roll through the cluster unchanged.
    """

    batch_size: int = 32
    lr: float = 1e-3
    weight_decay: float = 0.0
    clip_norm: float | None = 5.0
    steps_per_round: int = 8
    min_events: int = 1
    export_every: int = 1
    shadow_tolerance: float = 0.05
    shadow_k: int = 10
    quantize: str | None = None
    divergence_retries: int = 3
    checkpoint_dir: str | None = None
    keep_checkpoints: int = 3
    seed: int = 0

    def __post_init__(self):
        if self.batch_size <= 0 or self.steps_per_round <= 0:
            raise ValueError("batch_size and steps_per_round must be positive")
        if self.min_events < 1:
            raise ValueError(f"min_events must be >= 1, got {self.min_events}")
        if self.export_every < 0:
            raise ValueError(
                f"export_every must be >= 0 (0 disables), got {self.export_every}")
        if self.shadow_tolerance < 0 or self.shadow_k < 1:
            raise ValueError("shadow_tolerance must be >= 0 and shadow_k >= 1")
        if self.clip_norm is not None and not self.clip_norm > 0:
            raise ValueError(
                f"clip_norm must be positive or None to disable clipping, "
                f"got {self.clip_norm!r}")
        if self.divergence_retries < 0:
            raise ValueError("divergence_retries must be >= 0")
        if self.keep_checkpoints < 1:
            raise ValueError("keep_checkpoints must be >= 1")


class OnlineLearner:
    """Drain serving events, fine-tune incrementally, publish behind a gate.

    Parameters
    ----------
    model:
        A live :class:`~repro.models.base.SequenceRecommender` — typically
        ``load_artifact(cluster.artifact_path)`` so fine-tuning starts from
        exactly the weights being served.
    events:
        The :class:`~repro.online.EventLog` the serving tier appends to
        (``cluster.events`` for a :class:`~repro.serve.ServingCluster`).
    config:
        An :class:`OnlineConfig`; defaults are drift-chasing-shaped.
    base_histories:
        Optional ``{user: [items]}`` seed for the learner's history store
        (e.g. the training split), so the first fine-tune round sees full
        histories rather than only post-deployment events.
    cluster:
        The live :class:`~repro.serve.ServingCluster` that
        :meth:`publish` rolls candidates into.  Optional: a learner
        without a cluster can still drain, fine-tune, and export.
    shadow:
        A :class:`~repro.online.ShadowEvaluator` gating every publish.
        Optional: without it, :meth:`publish` promotes unconditionally.
    """

    def __init__(self, model, events: EventLog,
                 config: OnlineConfig | None = None,
                 base_histories: dict[int, list[int]] | None = None,
                 cluster=None, shadow: ShadowEvaluator | None = None):
        self.model = model
        self.events = events
        self.config = config or OnlineConfig()
        self.cluster = cluster
        self.shadow = shadow
        self.optimizer = Adam(model.parameters(), lr=self.config.lr,
                              weight_decay=self.config.weight_decay)
        self.history = TrainingHistory()
        self.rounds = 0
        self.cursor = 0
        self.recoveries_used = 0
        self._rng = np.random.default_rng(self.config.seed)
        self._histories: dict[int, list[int]] = {
            int(user): [int(item) for item in items]
            for user, items in (base_histories or {}).items()}
        self._manager = (CheckpointManager(self.config.checkpoint_dir,
                                           keep=self.config.keep_checkpoints)
                         if self.config.checkpoint_dir is not None else None)

    # ------------------------------------------------------------------
    # Event consumption
    # ------------------------------------------------------------------
    def histories(self) -> dict[int, list[int]]:
        """Copy of the learner's per-user history store."""
        return {user: list(items) for user, items in self._histories.items()}

    def drain(self) -> tuple[list, int]:
        """Fold every fresh event into the history store.

        Returns ``(events, dropped)``; ``dropped`` counts ring-evicted
        events this consumer was too slow for (also surfaced through the
        ``online.events.dropped`` counter — the loop keeps going, but the
        histories silently miss those interactions).
        """
        events, dropped = self.events.read_since(self.cursor)
        for event in events:
            self._histories.setdefault(event.user, []).append(event.item)
        if events:
            self.cursor = events[-1].seq
        if obs.telemetry_enabled():
            obs.counter("online.events.consumed").inc(len(events))
            if dropped:
                obs.counter("online.events.dropped").inc(dropped)
            obs.gauge("online.cursor").set(self.cursor)
        return events, dropped

    # ------------------------------------------------------------------
    # Fine-tuning
    # ------------------------------------------------------------------
    def _round_batches(self, users: list[int], rng):
        sequences = [np.asarray(self._histories[user], dtype=np.int64)
                     for user in users]
        user_ids = np.asarray(users, dtype=np.int64)
        for batch_users, inputs, targets, mask in next_item_batches(
                sequences, self.model.max_len, self.config.batch_size, rng):
            yield user_ids[batch_users], inputs, targets, mask

    def _run_steps(self, users: list[int], rng) -> tuple[float | None, int, str | None]:
        """Up to ``steps_per_round`` optimisation steps over ``users``.

        Returns ``(mean_loss, steps, divergence_reason)``.
        """
        config = self.config
        self.model.train()
        total_loss, steps = 0.0, 0
        try:
            for batch in self._round_batches(users, rng):
                if steps >= config.steps_per_round:
                    break
                step_start = time.perf_counter()
                self.optimizer.zero_grad()
                loss = self.model.training_loss(batch)
                value = float(loss.data)
                if not np.isfinite(value):
                    return None, steps, f"non-finite training loss ({value})"
                loss.backward()
                if config.clip_norm is not None:
                    norm = clip_grad_norm(self.optimizer.parameters,
                                          config.clip_norm)
                else:
                    norm = grad_norm(self.optimizer.parameters)
                if not np.isfinite(norm):
                    return None, steps, f"non-finite gradient norm ({norm})"
                self.optimizer.step()
                total_loss += value
                steps += 1
                if obs.telemetry_enabled():
                    obs.counter("online.steps").inc()
                    obs.histogram("online.step_time_s").observe(
                        time.perf_counter() - step_start)
                    obs.histogram("online.loss").observe(value)
        finally:
            self.model.eval()
        if steps == 0:
            return None, 0, None
        return total_loss / steps, steps, None

    def fine_tune_round(self) -> dict:
        """One loop iteration: drain, fine-tune touched users, checkpoint.

        Mirrors the Trainer's divergence protocol: a non-finite loss or
        gradient rolls model/optimizer/RNG back to the round start, halves
        the learning rate, and retries the identical round, bounded by
        ``divergence_retries`` across the learner's lifetime before
        raising :class:`~repro.train.TrainingDiverged`.  Every completed
        round (even an empty one) checkpoints, so the event cursor on disk
        never runs ahead of the weights.
        """
        config = self.config
        events, dropped = self.drain()
        touched = sorted({event.user for event in events
                          if len(self._histories.get(event.user, [])) >= 2})
        summary = {"round": self.rounds + 1, "events": len(events),
                   "dropped": dropped, "touched_users": len(touched),
                   "steps": 0, "mean_loss": None, "lr": self.optimizer.lr}
        if len(events) >= config.min_events and touched:
            while True:
                snapshot = self._capture_snapshot()
                mean_loss, steps, divergence = self._run_steps(
                    touched, self._rng)
                if divergence is None:
                    summary["steps"] = steps
                    summary["mean_loss"] = mean_loss
                    if mean_loss is not None:
                        self.history.losses.append(mean_loss)
                    break
                if self.recoveries_used >= config.divergence_retries:
                    raise TrainingDiverged(
                        f"online fine-tune diverged at round "
                        f"{self.rounds + 1}: {divergence}; gave up after "
                        f"{self.recoveries_used} rollback/LR-halving retries "
                        f"(lr {self.optimizer.lr:g})",
                        epoch=self.rounds + 1, lr=self.optimizer.lr,
                        retries=self.recoveries_used)
                self.recoveries_used += 1
                self._restore_snapshot(snapshot)
                lr_before = self.optimizer.lr
                self.optimizer.lr = lr_before / 2.0
                self.history.divergence_recoveries.append({
                    "epoch": int(self.rounds + 1), "reason": divergence,
                    "lr_before": float(lr_before),
                    "lr_after": float(self.optimizer.lr),
                })
                obs.emit("online_divergence_recovery", round=self.rounds + 1,
                         reason=divergence, lr_before=float(lr_before),
                         lr_after=float(self.optimizer.lr),
                         retries_used=self.recoveries_used)
        self.rounds += 1
        summary["lr"] = self.optimizer.lr
        self._checkpoint()
        obs.emit("online_round", **{key: value for key, value
                                    in summary.items()})
        if obs.telemetry_enabled():
            obs.gauge("online.rounds").set(self.rounds)
        return summary

    # ------------------------------------------------------------------
    # Export and gated publication
    # ------------------------------------------------------------------
    def export(self, path: str | Path) -> Path:
        """Freeze the current weights into a checksummed artifact."""
        return export_artifact(
            self.model, path,
            extra_meta={"online_rounds": int(self.rounds),
                        "event_cursor": int(self.cursor)},
            quantize=self.config.quantize)

    def publish(self, path: str | Path | None = None) -> dict:
        """Export a candidate and roll it into the cluster, shadow-gated.

        The candidate is refused — :class:`~repro.online.ShadowRegression`
        propagates and the cluster keeps the incumbent — when the shadow
        evaluation's HR@k delta falls below ``-shadow_tolerance``.  Every
        decision is emitted as an ``online.swap_decision`` telemetry
        event; the drift gauges ``online.drift.hr_delta`` /
        ``online.drift.ndcg_delta`` track the latest shadow comparison.
        """
        if self.cluster is None:
            raise ValueError("publish() requires a cluster")
        if path is None:
            if self._manager is None:
                raise ValueError(
                    "publish() needs an explicit path when checkpoint_dir "
                    "is unset")
            path = self._manager.directory / \
                f"candidate-round{self.rounds:05d}.npz"
        path = self.export(path)
        report = None
        if self.shadow is not None:
            incumbent = engine_for_artifact(self.cluster.artifact_path)
            candidate = engine_for_artifact(path)
            try:
                report = self.shadow.gate(incumbent, candidate,
                                          self.config.shadow_tolerance)
            except ShadowRegression as error:
                self._note_shadow(error.report)
                obs.emit("online.swap_decision", decision="refused",
                         path=str(path), round=self.rounds,
                         **error.report.to_dict())
                if obs.telemetry_enabled():
                    obs.counter("online.swaps.refused").inc()
                raise
            self._note_shadow(report)
        swap = self.cluster.swap(path)
        obs.emit("online.swap_decision", decision="promoted", path=str(path),
                 round=self.rounds,
                 **(report.to_dict() if report is not None else {}))
        if obs.telemetry_enabled():
            obs.counter("online.swaps.promoted").inc()
        return {"path": str(path), "swap": swap,
                "shadow": report.to_dict() if report is not None else None}

    @staticmethod
    def _note_shadow(report) -> None:
        if obs.telemetry_enabled():
            obs.gauge("online.drift.hr_delta").set(report.hr_delta)
            obs.gauge("online.drift.ndcg_delta").set(report.ndcg_delta)

    def run(self, rounds: int) -> dict:
        """Drive ``rounds`` loop iterations, publishing every ``export_every``.

        A refused candidate does not stop the loop — the refusal is
        recorded and fine-tuning continues (the next rounds may recover).
        Returns a summary with per-round records and publish outcomes.
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        records, publishes, refusals = [], [], 0
        for index in range(rounds):
            records.append(self.fine_tune_round())
            every = self.config.export_every
            if self.cluster is not None and every and (index + 1) % every == 0:
                try:
                    publishes.append(self.publish())
                except ShadowRegression as error:
                    refusals += 1
                    publishes.append({"refused": True,
                                      "shadow": error.report.to_dict()})
        return {"rounds": records, "publishes": publishes,
                "refusals": refusals}

    # ------------------------------------------------------------------
    # Checkpointing and bit-exact resume
    # ------------------------------------------------------------------
    def _capture_snapshot(self) -> dict:
        return {
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "rng": copy.deepcopy(self._rng.bit_generator.state),
            "global_rng": copy.deepcopy(get_rng().bit_generator.state),
        }

    def _restore_snapshot(self, snapshot: dict) -> None:
        self.model.load_state_dict(snapshot["model"])
        self.optimizer.load_state_dict(snapshot["optimizer"])
        self._rng.bit_generator.state = copy.deepcopy(snapshot["rng"])
        get_rng().bit_generator.state = copy.deepcopy(snapshot["global_rng"])

    def _checkpoint(self) -> Path | None:
        if self._manager is None:
            return None
        state = TrainState(
            epoch=self.rounds,
            model_state=self.model.state_dict(),
            optimizer_state=self.optimizer.state_dict(),
            history=self.history,
            trainer_rng=copy.deepcopy(self._rng.bit_generator.state),
            global_rng=copy.deepcopy(get_rng().bit_generator.state),
            recoveries_used=self.recoveries_used,
            model_class=type(self.model).__name__,
            extras={
                "online": True,
                "event_cursor": int(self.cursor),
                "rounds": int(self.rounds),
                "histories": {str(user): [int(item) for item in items]
                              for user, items in self._histories.items()},
            },
        )
        path = self._manager.save(state)
        obs.emit("online_checkpoint", round=self.rounds, path=str(path),
                 cursor=self.cursor)
        return path

    def resume(self, resume_from: str | Path | None = None) -> bool:
        """Restore the newest valid checkpoint; returns whether one loaded.

        ``resume_from`` may be a checkpoint file or directory; by default
        the configured ``checkpoint_dir`` rotation is searched (corrupt
        newest files fall back to older ones).  Restores weights, Adam
        moments, both RNG streams, the history store, and the event-stream
        cursor — the next :meth:`fine_tune_round` re-drains exactly the
        events the crashed round saw, replaying it bit-exactly.
        """
        state: TrainState | None = None
        if resume_from is not None:
            path = Path(resume_from)
            if path.is_file():
                state = load_train_state(path)
            else:
                found = CheckpointManager(
                    path, keep=self.config.keep_checkpoints).load_latest()
                state = found[0] if found else None
        elif self._manager is not None:
            found = self._manager.load_latest()
            state = found[0] if found else None
        else:
            raise ValueError(
                "resume() needs resume_from or config.checkpoint_dir")
        if state is None:
            return False
        if not state.extras.get("online"):
            raise ValueError(
                "checkpoint was not written by an OnlineLearner "
                f"(extras={sorted(state.extras)})")
        self.model.load_state_dict(state.model_state)
        self.optimizer.load_state_dict(state.optimizer_state)
        if state.trainer_rng is not None:
            self._rng.bit_generator.state = state.trainer_rng
        if state.global_rng is not None:
            get_rng().bit_generator.state = state.global_rng
        self.history = state.history
        self.recoveries_used = state.recoveries_used
        self.cursor = int(state.extras["event_cursor"])
        self.rounds = int(state.extras["rounds"])
        self._histories = {int(user): [int(item) for item in items]
                           for user, items in
                           state.extras["histories"].items()}
        obs.emit("online_resume", round=self.rounds, cursor=self.cursor)
        return True
