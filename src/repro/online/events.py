"""Ring-buffered interaction event stream connecting serving to training.

Every ``observe(user, item)`` that reaches the serving tier lands here as
an :class:`InteractionEvent` with a monotonically increasing sequence
number.  The :class:`EventLog` is the contract between the two halves of
the online-learning loop (``docs/online-learning.md``):

- the **producer** side is the serving stack — :class:`~repro.serve.Router`
  appends under its history lock, so event order always matches the order
  interactions entered the authoritative history store, and a standalone
  :class:`~repro.serve.engine.RecommendationEngine` can tap in through its
  ``event_log`` constructor argument;
- the **consumer** side is :class:`~repro.online.OnlineLearner`, which
  drains events strictly in order through a cursor
  (:meth:`EventLog.read_since`) that it checkpoints alongside the model
  weights, so a crashed fine-tune resumes from exactly the event it
  stopped at.

The buffer is bounded (``capacity`` events, a ``collections.deque`` ring):
a producer never blocks and never grows memory without bound; a consumer
that falls more than ``capacity`` events behind *loses the oldest events*
and is told exactly how many (the ``dropped`` count in
:meth:`~EventLog.read_since`), which the learner surfaces through the
``online.events.dropped`` counter rather than silently mistraining.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class InteractionEvent:
    """One observed interaction: sequence number, user, and item."""

    seq: int
    user: int
    item: int


class EventLog:
    """Thread-safe bounded ring buffer of :class:`InteractionEvent`.

    Sequence numbers start at 1 and never repeat; ``capacity`` bounds how
    many events are retained for lagging consumers.
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._events: deque[InteractionEvent] = deque(maxlen=self.capacity)
        self._next_seq = 1
        self._lock = threading.Lock()

    def append(self, user: int, item: int) -> InteractionEvent:
        """Record one interaction; returns the stamped event."""
        with self._lock:
            event = InteractionEvent(self._next_seq, int(user), int(item))
            self._next_seq += 1
            self._events.append(event)
            return event

    @property
    def latest_seq(self) -> int:
        """Sequence number of the newest event (0 when empty)."""
        with self._lock:
            return self._next_seq - 1

    @property
    def oldest_seq(self) -> int:
        """Sequence number of the oldest *retained* event (0 when empty)."""
        with self._lock:
            return self._events[0].seq if self._events else 0

    def __len__(self) -> int:
        return len(self._events)

    def read_since(self, cursor: int, limit: int | None = None
                   ) -> tuple[list[InteractionEvent], int]:
        """Events with ``seq > cursor`` in order, plus the dropped count.

        Returns ``(events, dropped)`` where ``dropped`` counts events the
        ring already evicted before the consumer got to them (0 for a
        consumer keeping up).  ``limit`` caps how many events are returned
        in one call; the caller advances its cursor to ``events[-1].seq``.
        """
        cursor = int(cursor)
        if cursor < 0:
            raise ValueError(f"cursor must be >= 0, got {cursor}")
        with self._lock:
            if not self._events:
                return [], 0
            oldest = self._events[0].seq
            dropped = max(0, oldest - cursor - 1)
            events = [event for event in self._events if event.seq > cursor]
        if limit is not None:
            events = events[:int(limit)]
        return events, dropped

    def stats(self) -> dict:
        """JSON-friendly snapshot: size, capacity, and sequence bounds."""
        with self._lock:
            return {
                "size": len(self._events),
                "capacity": self.capacity,
                "oldest_seq": self._events[0].seq if self._events else 0,
                "latest_seq": self._next_seq - 1,
            }
