"""Online-loop benchmark: drift absorption, fine-tune latency, gated rollout.

Drives the whole train → serve → observe loop against a live
:class:`~repro.serve.ServingCluster` on a simulated intent-drift scenario
and writes ``BENCH_online.json`` at the repository root
(``make bench-online``):

- ``absorb`` — streams a burst of drifted interactions through
  ``cluster.observe`` (authoritative store + shard replica sync + event
  ring); reports sustained events/s.
- ``fine_tune`` — :class:`~repro.online.OnlineLearner` rounds over the
  drained stream; reports per-step latency (mean/p50/p99) on the fused
  ``training_loss`` path.
- ``rollout`` — publishes the adapted artifact through the shadow gate and
  the canary-first swap while a prober hammers ``recommend``; reports the
  swap duration and the longest gap between successful responses (the
  observed "downtime", which the run asserts never becomes a dropped or
  degraded request).
- ``refusal`` — offers a deliberately regressed candidate (a re-initialised
  model) to the same gate; it must be refused with
  :class:`~repro.online.ShadowRegression`.
- ``verdict_accuracy`` — fraction of the two gate decisions the shadow
  evaluation got right (promote the adapted model, refuse the regressed
  one); 1.0 means the gate is doing its job.

Run it directly::

    make bench-online             # or:
    PYTHONPATH=src python -m repro.online.bench --out BENCH_online.json
"""

from __future__ import annotations

import argparse
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.obs import MetricsRegistry, set_registry, use_telemetry
from repro.online.learner import OnlineConfig, OnlineLearner
from repro.online.shadow import ShadowEvaluator, ShadowRegression
from repro.serve.artifact import export_artifact, load_artifact
from repro.serve.bench import build_model
from repro.serve.cluster import ClusterConfig, ServingCluster
from repro.serve.quantize import engine_for_artifact
from repro.utils.bench import environment_info, write_bench

SCHEMA = "bench_online/v1"

#: Default workload: a real drift burst over a two-shard cluster.
DEFAULT_SHAPES = dict(vocab=600, dim=32, max_len=20, num_concepts=16,
                      num_users=128, history_len=12, events=1500,
                      rounds=3, steps_per_round=8, batch_size=16,
                      lr=1e-3, top_k=10, world=2, shadow_users=32,
                      drift_band=24, deadline_s=5.0)
#: Miniature preset for CI smoke runs.
SMOKE_SHAPES = dict(vocab=200, dim=16, max_len=12, num_concepts=8,
                    num_users=48, history_len=8, events=240,
                    rounds=2, steps_per_round=4, batch_size=16,
                    lr=1e-3, top_k=10, world=2, shadow_users=16,
                    drift_band=12, deadline_s=5.0)

PRESETS = {"default": DEFAULT_SHAPES, "smoke": SMOKE_SHAPES}


class _RolloutProber(threading.Thread):
    """Hammers ``recommend`` during a swap; times gaps between successes."""

    def __init__(self, cluster: ServingCluster, users: list[int],
                 top_k: int, deadline_s: float):
        super().__init__(name="online-bench-prober", daemon=True)
        self._cluster = cluster
        self._users = users
        self._top_k = top_k
        self._deadline_s = deadline_s
        self._halt = threading.Event()
        self.ok = 0
        self.degraded = 0
        self.errors: list[str] = []
        self.max_gap_s = 0.0

    def run(self) -> None:
        index = 0
        last_success = time.perf_counter()
        while not self._halt.is_set():
            user = self._users[index % len(self._users)]
            index += 1
            try:
                response = self._cluster.recommend(
                    user, k=self._top_k, deadline_s=self._deadline_s)
            except Exception as error:  # typed errors are still failures here
                self.errors.append(f"{type(error).__name__}: {error}")
            else:
                now = time.perf_counter()
                if response.degraded:
                    self.degraded += 1
                else:
                    self.ok += 1
                    self.max_gap_s = max(self.max_gap_s, now - last_success)
                    last_success = now
            time.sleep(0.001)

    def stop(self) -> dict:
        self._halt.set()
        self.join(timeout=60.0)
        return {"ok": self.ok, "degraded": self.degraded,
                "errors": len(self.errors),
                "max_request_gap_s": self.max_gap_s}


def _drift_events(shapes: dict, rng: np.random.Generator):
    """(user, item) stream for the drifted regime: a narrow hot item band
    at the top of the vocabulary that the seed histories never touched."""
    band_lo = max(1, shapes["vocab"] - shapes["drift_band"])
    for index in range(shapes["events"]):
        user = index % shapes["num_users"]
        yield user, int(rng.integers(band_lo, shapes["vocab"] + 1))


def run_online_bench(preset: str = "default",
                     shapes: dict | None = None) -> dict:
    """Run the full drift scenario and return the results document."""
    shapes = dict(shapes or PRESETS[preset])
    model = build_model(shapes)
    rng = np.random.default_rng(2)
    registry_before = set_registry(MetricsRegistry())
    try:
        with tempfile.TemporaryDirectory() as tmp, use_telemetry():
            incumbent_path = export_artifact(model, Path(tmp) / "incumbent.npz")
            config = ClusterConfig(world=shapes["world"],
                                   cache_size=shapes["num_users"],
                                   default_deadline_s=shapes["deadline_s"],
                                   heartbeat_interval_s=0.1,
                                   check_interval_s=0.02)
            cluster = ServingCluster(incumbent_path, config)
            try:
                # Seed histories drawn from the *bottom* of the vocabulary,
                # so the drift band genuinely is novel behaviour.
                histories = {}
                for user in range(shapes["num_users"]):
                    length = int(rng.integers(2, shapes["history_len"] + 1))
                    items = rng.integers(
                        1, shapes["vocab"] - shapes["drift_band"], size=length)
                    histories[user] = [int(item) for item in items]
                    cluster.set_history(user, items)

                # --- absorb + fine-tune, interleaved like production -----
                # Each round first streams its share of the drift burst
                # through the serving tier, then drains and fine-tunes; the
                # absorb clock only runs while observes are in flight.
                learner = OnlineLearner(
                    load_artifact(incumbent_path), cluster.events,
                    config=OnlineConfig(
                        batch_size=shapes["batch_size"],
                        steps_per_round=shapes["steps_per_round"],
                        lr=shapes["lr"], shadow_tolerance=1.0,
                        shadow_k=shapes["top_k"], seed=3,
                        checkpoint_dir=str(Path(tmp) / "ckpts")),
                    base_histories=histories, cluster=cluster)
                stream = list(_drift_events(shapes, rng))
                per_round = -(-len(stream) // shapes["rounds"])  # ceil
                absorb_s, round_records = 0.0, []
                for index in range(shapes["rounds"]):
                    chunk = stream[index * per_round:(index + 1) * per_round]
                    start = time.perf_counter()
                    for user, item in chunk:
                        cluster.observe(user, item)
                    absorb_s += time.perf_counter() - start
                    round_records.append(learner.fine_tune_round())
                absorbed = len(stream)
                learner.shadow = ShadowEvaluator.from_histories(
                    {user: cluster.router.history(user)
                     for user in range(shapes["shadow_users"])},
                    k=shapes["top_k"])
                steps_hist = obs.histogram("online.step_time_s")
                fine_tune = {
                    "rounds": shapes["rounds"],
                    "steps": int(steps_hist.count),
                    "mean_loss": round_records[0]["mean_loss"],
                    "step_latency_mean_s": (steps_hist.total / steps_hist.count
                                            if steps_hist.count else None),
                    "step_latency_p50_s": steps_hist.quantile(0.50),
                    "step_latency_p99_s": steps_hist.quantile(0.99),
                }

                # --- gated rollout of the adapted artifact --------------
                prober = _RolloutProber(cluster,
                                        list(range(8)), shapes["top_k"],
                                        shapes["deadline_s"])
                prober.start()
                try:
                    publish = learner.publish(Path(tmp) / "adapted.npz")
                    promoted = True
                except ShadowRegression as error:  # wrong verdict, recorded
                    publish = {"shadow": error.report.to_dict()}
                    promoted = False
                finally:
                    probe_stats = prober.stop()
                if prober.errors:
                    raise AssertionError(  # the rollout resilience invariant
                        f"{len(prober.errors)} request(s) failed during the "
                        f"rollout: {prober.errors[:3]}")
                rollout = {
                    "promoted": promoted,
                    "shadow": publish["shadow"],
                    "swap_duration_s": (publish["swap"]["duration_s"]
                                        if promoted else None),
                    **probe_stats,
                }

                # --- the gate must refuse a regressed candidate ---------
                incumbent_engine = engine_for_artifact(cluster.artifact_path)
                examples = []
                for user in range(shapes["shadow_users"]):
                    history = cluster.router.history(user)
                    incumbent_engine.set_history(user, history)
                    top1 = incumbent_engine.recommend(user, k=1)[0][0]
                    examples.append((user, history, int(top1)))
                regressed = build_model(shapes, seed=1234)
                regressed_path = export_artifact(
                    regressed, Path(tmp) / "regressed.npz")
                strict_gate = ShadowEvaluator(examples, k=shapes["top_k"])
                try:
                    strict_gate.gate(incumbent_engine,
                                     engine_for_artifact(regressed_path),
                                     tolerance=0.05)
                    refusal = {"refused": False, "shadow": None}
                except ShadowRegression as error:
                    refusal = {"refused": True,
                               "shadow": error.report.to_dict()}
            finally:
                cluster.close()
    finally:
        set_registry(registry_before)

    correct = int(promoted) + int(refusal["refused"])
    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "preset": preset,
        "shapes": shapes,
        "environment": environment_info(),
        "absorb": {
            "events": absorbed,
            "seconds": absorb_s,
            "events_per_s": absorbed / absorb_s if absorb_s > 0 else None,
        },
        "fine_tune": fine_tune,
        "rollout": rollout,
        "refusal": refusal,
        "verdict_accuracy": correct / 2.0,
    }


def format_summary(results: dict) -> str:
    """Human-readable summary of an online-bench results document."""
    absorb, tune = results["absorb"], results["fine_tune"]
    rollout, refusal = results["rollout"], results["refusal"]
    as_ms = lambda value: "n/a" if value is None else f"{value * 1e3:.1f} ms"
    lines = [
        f"online bench  preset={results['preset']}  "
        f"world={results['shapes']['world']}",
        f"  absorb: {absorb['events']} events at "
        f"{absorb['events_per_s']:.0f} events/s",
        f"  fine-tune: {tune['steps']} steps over {tune['rounds']} rounds"
        f"   step p50 {as_ms(tune['step_latency_p50_s'])}"
        f"  p99 {as_ms(tune['step_latency_p99_s'])}",
        f"  rollout: promoted={rollout['promoted']}"
        f"  swap {as_ms(rollout['swap_duration_s'])}"
        f"  max request gap {as_ms(rollout['max_request_gap_s'])}"
        f"  ({rollout['ok']} ok / {rollout['degraded']} degraded / "
        f"{rollout['errors']} errors)",
        f"  refusal: regressed candidate refused={refusal['refused']}",
        f"  shadow verdict accuracy: {results['verdict_accuracy']:.2f}",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_online.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--preset", default="default", choices=sorted(PRESETS),
                        help="shape preset (default: %(default)s)")
    args = parser.parse_args(argv)

    results = run_online_bench(preset=args.preset)
    write_bench(results, args.out)
    print(format_summary(results))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
