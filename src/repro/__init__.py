"""ISRec reproduction: intention-aware sequential recommendation.

Public API tour
---------------
- :mod:`repro.data` — synthetic intent-driven datasets (profiles mirroring
  the paper's Beauty/Steam/Epinions/ML-1m/ML-20m) with concept annotations,
  plus graph-bearing variants carrying an item knowledge graph and a user
  social graph (``beauty-kg``, ...).
- :mod:`repro.core` — the ISRec model, its four modules, ablation variants,
  and the intent-trace explainability API.
- :mod:`repro.models` — the ten baselines of Table 2, plus the
  structure-aware baselines (KTUP, FM) for the graph workloads.
- :mod:`repro.eval` — HR/NDCG/MRR and the leave-one-out ranking protocol.
- :mod:`repro.train` — the shared training loop.
- :mod:`repro.serve` — inference artifacts, the top-K engine, the sharded
  serving cluster (consumes :mod:`repro.train` checkpoints and
  :mod:`repro.models` exports).
- :mod:`repro.online` — the train → serve → observe loop: event log,
  incremental fine-tuning, shadow-gated artifact rollout (depends on
  :mod:`repro.serve` and :mod:`repro.train`).
- :mod:`repro.parallel` — data-parallel training, prefetch, parallel sweeps.
- :mod:`repro.experiments` — one runner per paper table/figure.
- :mod:`repro.obs` — opt-in telemetry every layer may emit into.
- :mod:`repro.tensor` / :mod:`repro.nn` / :mod:`repro.optim` — the
  from-scratch numpy deep-learning substrate everything is built on.

Quickstart
----------
>>> from repro import quick_isrec
>>> model, report = quick_isrec("beauty", epochs=2)  # doctest: +SKIP
>>> report.hr10  # doctest: +SKIP
"""

from repro.core import ISRec, ISRecConfig, IntentTracer
from repro.data import load_dataset, split_leave_one_out
from repro.eval import MetricReport, RankingEvaluator, evaluate_model
from repro.train import TrainConfig

__version__ = "1.8.0"

__all__ = [
    "ISRec",
    "ISRecConfig",
    "IntentTracer",
    "load_dataset",
    "split_leave_one_out",
    "MetricReport",
    "RankingEvaluator",
    "evaluate_model",
    "TrainConfig",
    "quick_isrec",
    "__version__",
]


def quick_isrec(profile: str = "beauty", epochs: int = 10, max_len: int | None = None,
                config: ISRecConfig | None = None, seed: int = 0):
    """Train ISRec on a named profile and return ``(model, test_report)``.

    A convenience entry point used by the quickstart example; for full
    control assemble the pieces from :mod:`repro.data`, :mod:`repro.core`,
    and :mod:`repro.train` directly.
    """
    from repro.data import default_max_len
    from repro.utils import set_seed

    set_seed(seed)
    dataset = load_dataset(profile)
    split = split_leave_one_out(dataset.sequences)
    length = max_len or default_max_len(profile)
    model = ISRec.from_dataset(dataset, max_len=length, config=config)
    model.fit(dataset, split, TrainConfig(epochs=epochs, seed=seed))
    evaluator = RankingEvaluator(split, dataset.num_items, seed=seed)
    report = evaluator.evaluate(model, stage="test")
    return model, report
