"""Worker supervision for the serving cluster: liveness, restarts.

Two pieces (``docs/resilience.md``):

- :class:`WorkerHandle` — the parent-side record of one shard worker
  process: the process + pipe of the current *generation*, a ``ready``
  event dispatchers gate on, suspicion state (a dispatcher that saw a
  broken pipe or a blown liveness budget marks the handle suspect), and
  restart bookkeeping.
- :class:`Supervisor` — one background thread health-checking every
  handle: a worker is restarted when its process has exited, when a
  dispatcher marked it suspect (hung forward, dead pipe), or when a
  heartbeat ping goes unanswered.  Restarts are delegated to the
  cluster's respawn routine (which re-seeds the new worker's history
  replica) and are rate-limited by ``restart_backoff_s`` so a
  crash-looping worker cannot spin the supervisor hot.

The supervisor never touches worker pipes directly — pipes are owned by
exactly one dispatcher thread per shard, so heartbeats travel through the
same per-shard queue as requests (as unbounded control entries) and
liveness is judged from reply timestamps the dispatcher records.
"""

from __future__ import annotations

import threading
import time

from repro import obs


class WorkerHandle:
    """Parent-side state of one shard worker process (one *generation*).

    The handle is the synchronisation point between three threads: the
    shard's dispatcher (sends/receives on ``conn`` while ``ready``),
    the supervisor (restarts and reinstalls), and callers of
    ``cluster.stats()``.
    """

    def __init__(self, shard: int):
        self.shard = shard
        self.lock = threading.RLock()
        self.ready = threading.Event()
        self.process = None
        self.conn = None
        self.generation = 0
        self.restarts = 0
        self.suspect_reason: str | None = None
        self.last_reply = time.monotonic()
        self.last_restart_attempt = 0.0
        self.ping_pending = False

    def install(self, process, conn) -> None:
        """Adopt a freshly spawned worker process as the new generation."""
        with self.lock:
            self.process = process
            self.conn = conn
            self.generation += 1
            self.suspect_reason = None
            self.ping_pending = False
            self.last_reply = time.monotonic()
            self.ready.set()

    def mark_suspect(self, reason: str) -> None:
        """Take the worker out of service; the supervisor will restart it."""
        with self.lock:
            if self.suspect_reason is None:
                self.suspect_reason = reason
            self.ready.clear()

    def note_reply(self) -> None:
        """Record proof of life (any reply on the pipe)."""
        with self.lock:
            self.last_reply = time.monotonic()
            self.ping_pending = False

    def is_alive(self) -> bool:
        """Whether the current generation's process is running."""
        with self.lock:
            return self.process is not None and self.process.is_alive()

    def needs_restart(self) -> bool:
        """Whether the supervisor should respawn this worker."""
        with self.lock:
            if self.suspect_reason is not None:
                return True
            if not self.ready.is_set():
                return True
            return not self.is_alive()

    def kill(self, join_timeout: float = 5.0) -> None:
        """Force the current generation's process down (idempotent)."""
        with self.lock:
            process, conn = self.process, self.conn
            self.ready.clear()
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=join_timeout)
            if process.is_alive():  # pragma: no cover - stuck in a syscall
                process.kill()
                process.join(timeout=join_timeout)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def snapshot(self) -> dict:
        """JSON-friendly health summary for ``cluster.stats()``."""
        with self.lock:
            return {
                "ready": self.ready.is_set(),
                "alive": self.is_alive(),
                "generation": self.generation,
                "restarts": self.restarts,
                "suspect": self.suspect_reason,
                "pid": getattr(self.process, "pid", None),
            }


class Supervisor:
    """Background health-checker driving worker restarts and heartbeats.

    Parameters
    ----------
    handles:
        One :class:`WorkerHandle` per shard.
    restart:
        ``restart(shard) -> bool`` — the cluster's respawn routine
        (kill leftover process, fork a new worker, re-seed histories,
        install into the handle).  Returns whether the worker came up.
    ping:
        ``ping(shard) -> None`` — enqueue a heartbeat control entry on
        the shard's queue (answered by the dispatcher).
    """

    def __init__(self, handles, restart, ping,
                 check_interval_s: float = 0.05,
                 heartbeat_interval_s: float = 0.25,
                 liveness_timeout_s: float = 5.0,
                 restart_backoff_s: float = 0.25):
        self.handles = list(handles)
        self._restart = restart
        self._ping = ping
        self.check_interval_s = float(check_interval_s)
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.liveness_timeout_s = float(liveness_timeout_s)
        self.restart_backoff_s = float(restart_backoff_s)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-supervisor")

    def start(self) -> None:
        """Start the health-check thread."""
        self._thread.start()

    def stop(self, join_timeout: float = 5.0) -> None:
        """Stop the health-check thread (idempotent)."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=join_timeout)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.check_interval_s):
            for handle in self.handles:
                if self._stop.is_set():
                    return
                try:
                    self._check(handle)
                except Exception:  # pragma: no cover - supervision must
                    continue       # survive anything a check throws

    def _check(self, handle: WorkerHandle) -> None:
        if handle.needs_restart():
            now = time.monotonic()
            with handle.lock:
                due = (now - handle.last_restart_attempt
                       >= self.restart_backoff_s)
                if due:
                    handle.last_restart_attempt = now
                reason = handle.suspect_reason or "process exited"
            if not due:
                return
            if obs.telemetry_enabled():
                obs.counter("serve.cluster.restarts").inc()
                obs.emit("serve.cluster.restart", shard=handle.shard,
                         reason=reason)
            if self._restart(handle.shard):
                with handle.lock:
                    handle.restarts += 1
            return
        # Healthy and ready: heartbeat when the pipe has been quiet.
        now = time.monotonic()
        with handle.lock:
            quiet = now - handle.last_reply
            should_ping = (not handle.ping_pending
                           and quiet >= self.heartbeat_interval_s)
            if should_ping:
                handle.ping_pending = True
        if should_ping:
            self._ping(handle.shard)
