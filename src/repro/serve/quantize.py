"""Int8 weight quantization for the inference-only serving path.

Training stays in float; quantization happens once, at
:func:`~repro.serve.artifact.export_artifact` time, and only touches the
artifact and the serving stack:

- :func:`quantize_per_channel` / :func:`dequantize` — symmetric per-channel
  int8 codecs for weight matrices: one float32 scale per output channel
  (row), values clipped to ``[-127, 127]`` so the representable range is
  symmetric and zero is exact.  A ``dim=64`` embedding table shrinks 4x.
- :func:`int8_gemv` — the honest integer product: quantizes the activation
  per-tensor, accumulates in int32, and rescales to float32.  On a pure
  numpy substrate this is *slower* than letting BLAS run the float32 GEMV
  (numpy has no int8 SIMD kernels; the int32 upcast alone costs more than
  the float product), which is why it exists as an explicitly selectable
  mode rather than the default — the backend benchmark measures both and
  records the truth in ``BENCH_backends.json``.
- :class:`QuantizedEngine` — a :class:`~repro.serve.engine.RecommendationEngine`
  whose scoring hot path is rebuilt around the quantized table: the int8
  weights are dequantized **once at load** into a contiguous float32 table,
  per-request scoring runs entirely in float32 into a preallocated scores
  buffer (the base engine upcasts every request's full-vocabulary scores to
  a fresh float64 array), and cached encoder states are stored as float16,
  halving state-cache memory.  ``gemm="int8"`` switches the scoring product
  to :func:`int8_gemv`.
- :func:`engine_for_artifact` — the factory the cluster workers use: it
  inspects the artifact's metadata and builds a :class:`QuantizedEngine`
  for quantized artifacts, a plain engine otherwise, so int8 artifacts roll
  through :meth:`~repro.serve.cluster.ServingCluster.swap` unchanged.

Accuracy is validated two ways (``tests/serve/test_quantized.py`` and the
benchmark): top-10 overlap against the exact engine, and HR@10/NDCG@10
parity of the quantized artifact under the offline evaluator.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.serve.engine import RecommendationEngine

#: Quantization modes accepted by ``export_artifact(quantize=...)``.
QUANT_SCHEMES = ("int8",)

#: Minimum dimensionality for a weight to be quantized at export: matrices
#: and embedding tables are; biases, gains, and other vectors stay float,
#: where quantization saves nothing and costs accuracy.
_MIN_QUANT_NDIM = 2


def quantize_per_channel(array: np.ndarray, axis: int = 0
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-channel int8 quantization of a float array.

    Each slice along ``axis`` (a "channel" — for an ``(V+1, dim)`` embedding
    table, one item's vector) gets its own scale ``max|w| / 127`` so that
    outlier rows do not crush the resolution of every other row.  Returns
    ``(q, scales)`` with ``q`` int8 of the input shape and ``scales`` a
    float32 vector of length ``array.shape[axis]``.  All-zero channels get
    scale 1.0 (they decode to exact zeros either way).
    """
    arr = np.asarray(array, dtype=np.float32)
    if arr.ndim < 1:
        raise ValueError("cannot per-channel quantize a scalar")
    moved = np.moveaxis(arr, axis, 0)
    flat = moved.reshape(moved.shape[0], -1)
    max_abs = np.abs(flat).max(axis=1)
    scales = np.where(max_abs > 0.0, max_abs / 127.0, 1.0).astype(np.float32)
    q = np.clip(np.rint(flat / scales[:, None]), -127, 127).astype(np.int8)
    q = np.moveaxis(q.reshape(moved.shape), 0, axis)
    return np.ascontiguousarray(q), scales


def dequantize(q: np.ndarray, scales: np.ndarray, axis: int = 0) -> np.ndarray:
    """Decode :func:`quantize_per_channel` output back to float32."""
    q = np.asarray(q)
    shape = [1] * q.ndim
    shape[axis] = -1
    scales = np.asarray(scales, dtype=np.float32).reshape(shape)
    return q.astype(np.float32) * scales


def int8_gemv(q_matrix: np.ndarray, scales: np.ndarray,
              x: np.ndarray) -> np.ndarray:
    """``dequantize(q_matrix) @ x`` computed in integer arithmetic.

    The activation is quantized per-tensor (one scale), the product is
    accumulated in int32 — exact for ``dim <= 131072`` since each term is
    bounded by ``127 * 127`` — and the result is rescaled to float32 in one
    fused multiply.  Kept for fidelity to the int8-GEMM deployment recipe
    and for hardware where integer dot products *are* the fast path; see
    the module docstring for why it is not the numpy default.
    """
    x32 = np.asarray(x, dtype=np.float32)
    x_max = float(np.abs(x32).max()) if x32.size else 0.0
    x_scale = np.float32(x_max / 127.0 if x_max > 0.0 else 1.0)
    qx = np.clip(np.rint(x32 / x_scale), -127, 127).astype(np.int8)
    acc = q_matrix.astype(np.int32) @ qx.astype(np.int32)
    return acc.astype(np.float32) * (np.asarray(scales, dtype=np.float32) * x_scale)


class QuantizedEngine(RecommendationEngine):
    """Serve top-K from an int8-quantized item table.

    Parameters
    ----------
    model:
        The dequantized model from :func:`~repro.serve.artifact.load_artifact`
        (used for encoder forwards and the offline ``score`` protocol).
    item_q, item_scales:
        The raw int8 item-embedding table and its per-row scales, straight
        from the artifact.
    gemm:
        ``"dequant"`` (default) scores with a load-time-dequantized float32
        table written into a preallocated buffer; ``"int8"`` scores with
        :func:`int8_gemv`.
    state_dtype:
        Storage dtype of cached encoder states (default float16 — half the
        cache memory; states are upcast to float32 per request).
    event_log:
        Optional :class:`~repro.online.EventLog` observe tap (see the base
        engine).
    """

    def __init__(self, model, item_q: np.ndarray, item_scales: np.ndarray,
                 cache_size: int = 1024, gemm: str = "dequant",
                 state_dtype=np.float16, event_log=None):
        super().__init__(model, cache_size=cache_size, event_log=event_log)
        if gemm not in ("dequant", "int8"):
            raise ValueError(f"gemm must be 'dequant' or 'int8', got {gemm!r}")
        if np.asarray(item_q).dtype != np.int8:
            raise TypeError("item_q must be an int8 array")
        self.gemm = gemm
        self.name = f"serve-int8({model.name})"
        self._item_q = np.ascontiguousarray(item_q)
        self._item_scales = np.asarray(item_scales, dtype=np.float32).reshape(-1)
        self._table = dequantize(self._item_q, self._item_scales)
        self._state_dtype = np.dtype(state_dtype)
        # Reused across requests (all scoring runs under the engine lock),
        # as is the per-user deduplicated seen-item index (recomputing
        # ``np.unique`` of the history on every warm request costs more
        # than the suppression itself).
        self._scores_buf = np.empty(self._table.shape[0], dtype=np.float32)
        self._seen_cache: dict[int, np.ndarray] = {}

    def _invalidate_user(self, user: int) -> None:
        # Runs under the engine lock (base-class contract), making the
        # history mutation and the seen-index invalidation atomic: a
        # concurrent recommend can no longer observe the new history with
        # the stale memoised index.
        super()._invalidate_user(user)
        self._seen_cache.pop(user, None)

    def _cache_put(self, user: int, state: np.ndarray) -> None:
        super()._cache_put(user, state.astype(self._state_dtype))

    def _seen_index(self, user: int) -> np.ndarray:
        suppress = self._seen_cache.get(user)
        if suppress is None:
            seen = self._histories.get(user)
            suppress = np.unique(np.asarray(seen if seen else [], dtype=np.int64))
            limit = self._table.shape[0]
            suppress = suppress[(suppress > 0) & (suppress < limit)]
            self._seen_cache[user] = suppress
        return suppress

    def _topk(self, user: int, k: int, filter_seen: bool) -> list[tuple[int, float]]:
        """Float32 scoring over the quantized table; exact partial sort.

        Unlike the base engine this never materialises a float64 copy of
        the full-vocabulary scores — the argpartition/lexsort ranking is
        dtype-agnostic and the returned scores are Python floats anyway —
        and the result list is assembled through vectorised ``tolist()``
        instead of per-item numpy scalar conversions.
        """
        state = self._states[user].astype(np.float32)
        if self.gemm == "int8":
            scores = int8_gemv(self._item_q, self._item_scales, state)
        else:
            scores = np.matmul(self._table, state, out=self._scores_buf)
        scores[0] = -np.inf  # padding id is never recommended
        if filter_seen:
            suppress = self._seen_index(user)
            if suppress.size:
                scores[suppress] = -np.inf
        k = min(int(k), self.model.num_items)
        winners = np.argpartition(scores, -k)[-k:]
        winners = winners[np.lexsort((winners, -scores[winners]))]
        values = scores[winners]
        finite = np.isfinite(values)
        return list(zip(winners[finite].tolist(),
                        values[finite].astype(np.float64).tolist()))

    def quantization_info(self) -> dict:
        """Scheme, table shape, and memory footprint versus float32."""
        int8_bytes = self._item_q.nbytes + self._item_scales.nbytes
        return {
            "scheme": "int8",
            "gemm": self.gemm,
            "table_shape": tuple(self._item_q.shape),
            "state_dtype": self._state_dtype.name,
            "int8_bytes": int(int8_bytes),
            "float32_bytes": int(self._table.nbytes),
            "compression": float(self._table.nbytes / int8_bytes),
        }


def engine_for_artifact(path: str | Path, cache_size: int = 1024,
                        gemm: str = "dequant",
                        event_log=None) -> RecommendationEngine:
    """Build the right engine for an artifact.

    Quantized artifacts (``export_artifact(..., quantize="int8")``) get a
    :class:`QuantizedEngine` wired to the raw int8 item table; plain
    artifacts get a :class:`~repro.serve.engine.RecommendationEngine`.
    This is the factory :class:`~repro.serve.cluster.ServingCluster`
    workers build their shards through, which is what makes artifact
    hot-swap quantization-transparent.
    """
    from repro.serve.artifact import load_artifact, read_quantization

    model = load_artifact(path)
    quantized = read_quantization(path)
    if quantized:
        for name, (q, scales) in quantized.items():
            if name.endswith("item_embedding.weight"):
                return QuantizedEngine(model, q, scales,
                                       cache_size=cache_size, gemm=gemm,
                                       event_log=event_log)
    return RecommendationEngine(model, cache_size=cache_size,
                                event_log=event_log)
