"""Batched top-K inference: frozen artifacts, engine, micro-batcher.

The serving stack (``docs/serving.md``) turns a trained
:class:`~repro.models.base.SequenceRecommender` into a low-latency
recommendation service without ever building an autograd tape:

- :mod:`repro.serve.artifact` — freeze a model (or any training
  checkpoint) into one checksummed ``.npz`` inference artifact holding
  weights + architecture config + constants, and load it back in
  forced-eval mode.
- :mod:`repro.serve.engine` — :class:`RecommendationEngine`: an LRU cache
  of per-user encoder states, incremental refresh on new interactions,
  exact top-K over the full item vocabulary via partial sort, and
  seen-item suppression.  Scoring runs under
  :func:`repro.tensor.inference_mode`, so a request allocates **zero**
  graph nodes, and the candidate-scoring path is expression-identical to
  ``SequenceRecommender.score`` — the engine is bit-for-bit consistent
  with the offline :class:`~repro.eval.evaluator.RankingEvaluator`.
- :mod:`repro.serve.quantize` — int8 weight quantization for inference:
  per-channel symmetric codecs applied at ``export_artifact(...,
  quantize="int8")`` time, the :class:`QuantizedEngine` float32/float16
  scoring hot path (plus an honest :func:`int8_gemv` mode), and the
  :func:`engine_for_artifact` factory the cluster builds workers through.
- :mod:`repro.serve.batcher` — :class:`MicroBatcher`: coalesces
  concurrent ``recommend(user, k)`` calls into padded batches on a
  background thread.
- :mod:`repro.serve.cluster` — :class:`ServingCluster`: the resilient
  multi-process runtime (``docs/resilience.md``) — user-id-sharded
  supervised workers, per-request deadlines with jittered retries,
  bounded queues with load shedding (:class:`Overloaded`), a degraded
  popularity fallback, and canary-validated artifact hot-swap with
  automatic rollback (:class:`SwapFailed`).  Supporting pieces live in
  :mod:`repro.serve.router` and :mod:`repro.serve.supervisor`.
- :mod:`repro.serve.bench` — the single-engine load-generator benchmark
  behind ``make bench-serve`` (writes ``BENCH_serve.json``).
- :mod:`repro.serve.loadgen` — the cluster benchmark behind
  ``make bench-serve-cluster`` (writes ``BENCH_serve_cluster.json``):
  Zipfian load, mid-run worker kill, recovery-time measurement.

Everything is instrumented through :mod:`repro.obs` (request-latency
histograms with p50/p99, cache hit/miss counters, batch-fill gauges);
telemetry stays off by default as everywhere else.
"""

from repro.serve.artifact import (
    export_artifact,
    export_checkpoint,
    load_artifact,
    read_quantization,
    register_model,
    servable_models,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.cluster import ClusterConfig, ServingCluster
from repro.serve.engine import RecommendationEngine
from repro.serve.quantize import (
    QuantizedEngine,
    dequantize,
    engine_for_artifact,
    int8_gemv,
    quantize_per_channel,
)
from repro.serve.router import (
    DeadlineExceeded,
    Overloaded,
    ServeError,
    ServeResponse,
    ShardUnavailable,
    SwapFailed,
)

__all__ = [
    "export_artifact",
    "export_checkpoint",
    "load_artifact",
    "register_model",
    "servable_models",
    "RecommendationEngine",
    "QuantizedEngine",
    "engine_for_artifact",
    "quantize_per_channel",
    "dequantize",
    "int8_gemv",
    "read_quantization",
    "MicroBatcher",
    "ServingCluster",
    "ClusterConfig",
    "ServeResponse",
    "ServeError",
    "Overloaded",
    "DeadlineExceeded",
    "ShardUnavailable",
    "SwapFailed",
]
