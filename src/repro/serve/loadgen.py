"""Cluster load generator: Zipfian traffic, a mid-run kill, recovery time.

Measures the resilient serving runtime end to end and writes
``BENCH_serve_cluster.json`` at the repository root
(``make bench-serve-cluster``):

- ``load`` — ``clients`` threads drive a :class:`~repro.serve.ServingCluster`
  with Zipf-distributed users (a few hot users, a long cold tail — the
  shape real recommendation traffic has) and a mixed read/write stream;
  reports sustained QPS, client-observed p50/p99 latency, and the rates of
  every typed outcome (ok / degraded / shed / deadline-exceeded).
- ``recovery`` — mid-run, one shard worker is SIGKILLed while the clients
  keep hammering; a prober measures the time from the kill until the shard
  answers from the model again (not the degraded fallback).  Requests
  issued against the dead shard in the meantime must still resolve — the
  run asserts that nothing hangs and nothing is silently dropped.

Run it directly::

    make bench-serve-cluster             # or:
    PYTHONPATH=src python -m repro.serve.loadgen --out BENCH_serve_cluster.json
"""

from __future__ import annotations

import argparse
import os
import signal
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.serve.artifact import export_artifact
from repro.serve.bench import build_model
from repro.serve.cluster import ClusterConfig, ServingCluster
from repro.serve.router import DeadlineExceeded, Overloaded, ServeError
from repro.utils.bench import environment_info, write_bench

SCHEMA = "bench_serve_cluster/v1"

#: Default workload: enough traffic to saturate two shard workers.
DEFAULT_SHAPES = dict(vocab=1000, dim=32, max_len=20, num_concepts=24,
                      num_users=256, history_len=20, top_k=10,
                      world=2, clients=4, requests_per_client=200,
                      write_fraction=0.1, zipf_s=1.1, deadline_s=2.0,
                      queue_limit=64, kill=True)
#: Miniature preset for CI smoke runs.
SMOKE_SHAPES = dict(vocab=200, dim=16, max_len=12, num_concepts=8,
                    num_users=48, history_len=8, top_k=5,
                    world=2, clients=2, requests_per_client=25,
                    write_fraction=0.1, zipf_s=1.1, deadline_s=2.0,
                    queue_limit=32, kill=True)

PRESETS = {"default": DEFAULT_SHAPES, "smoke": SMOKE_SHAPES}


def zipf_probabilities(num_users: int, s: float) -> np.ndarray:
    """Bounded Zipf pmf over ``num_users`` ranks: ``p(r) ~ 1 / r^s``."""
    ranks = np.arange(1, num_users + 1, dtype=np.float64)
    weights = ranks ** -float(s)
    return weights / weights.sum()


class _Client(threading.Thread):
    """One load-generating client; records every request's typed outcome."""

    def __init__(self, index: int, cluster: ServingCluster, shapes: dict,
                 users: np.ndarray, barrier: threading.Barrier):
        super().__init__(name=f"loadgen-client-{index}", daemon=True)
        self._rng = np.random.default_rng(1000 + index)
        self._cluster = cluster
        self._shapes = shapes
        self._users = users  # user ids in Zipf-rank order (shared)
        self._barrier = barrier
        self._probabilities = zipf_probabilities(len(users), shapes["zipf_s"])
        self.outcomes: list[tuple[str, float]] = []
        self.fatal: BaseException | None = None

    def run(self) -> None:
        shapes, rng = self._shapes, self._rng
        try:
            self._barrier.wait()
            for _ in range(shapes["requests_per_client"]):
                user = int(rng.choice(self._users, p=self._probabilities))
                if rng.random() < shapes["write_fraction"]:
                    self._cluster.observe(
                        user, int(rng.integers(1, shapes["vocab"] + 1)))
                start = time.perf_counter()
                try:
                    response = self._cluster.recommend(
                        user, k=shapes["top_k"],
                        deadline_s=shapes["deadline_s"])
                    outcome = "degraded" if response.degraded else "ok"
                except Overloaded:
                    outcome = "shed"
                except DeadlineExceeded:
                    outcome = "deadline"
                except ServeError:
                    outcome = "error"
                self.outcomes.append((outcome, time.perf_counter() - start))
        except BaseException as exc:  # anything else is a harness bug
            self.fatal = exc


def _measure_recovery(cluster: ServingCluster, shard: int, user: int,
                      top_k: int, timeout_s: float = 30.0) -> dict:
    """SIGKILL ``shard``'s worker; time until it serves from the model again."""
    pid = cluster.worker_pids()[shard]
    killed_at = time.perf_counter()
    os.kill(pid, signal.SIGKILL)
    probes = 0
    while time.perf_counter() - killed_at < timeout_s:
        probes += 1
        try:
            response = cluster.recommend(user, k=top_k, deadline_s=1.0)
        except ServeError:
            continue
        if not response.degraded:
            return {"shard": shard, "killed_pid": pid, "probes": probes,
                    "recovery_s": time.perf_counter() - killed_at}
    return {"shard": shard, "killed_pid": pid, "probes": probes,
            "recovery_s": None}  # pragma: no cover - 30s is generous


def run_cluster_bench(preset: str = "default",
                      shapes: dict | None = None) -> dict:
    """Run the load + recovery sections and return the results document."""
    shapes = dict(shapes or PRESETS[preset])
    model = build_model(shapes)
    with tempfile.TemporaryDirectory() as tmp:
        artifact_path = export_artifact(model, Path(tmp) / "model.npz")
        config = ClusterConfig(world=shapes["world"],
                               cache_size=shapes["num_users"],
                               queue_limit=shapes["queue_limit"],
                               default_deadline_s=shapes["deadline_s"])
        cluster = ServingCluster(artifact_path, config)
        try:
            rng = np.random.default_rng(1)
            users = rng.permutation(shapes["num_users"])  # ranks -> user ids
            for user in range(shapes["num_users"]):
                length = int(rng.integers(2, shapes["history_len"] + 1))
                cluster.set_history(
                    user, rng.integers(1, shapes["vocab"] + 1, size=length))

            barrier = threading.Barrier(shapes["clients"])
            clients = [_Client(index, cluster, shapes, users, barrier)
                       for index in range(shapes["clients"])]
            total = shapes["clients"] * shapes["requests_per_client"]
            start = time.perf_counter()
            for client in clients:
                client.start()

            recovery = None
            if shapes["kill"]:
                # Let the run warm up, then take a shard down under load.
                while sum(len(c.outcomes) for c in clients) < total // 4:
                    time.sleep(0.01)
                victim_user = int(users[0]) - int(users[0]) % shapes["world"]
                recovery = _measure_recovery(cluster, shard=0,
                                             user=victim_user,
                                             top_k=shapes["top_k"])

            for client in clients:
                client.join()
            elapsed = time.perf_counter() - start
            for client in clients:
                if client.fatal is not None:
                    raise client.fatal
            cluster_stats = cluster.stats()
        finally:
            cluster.close()

    outcomes = [entry for client in clients for entry in client.outcomes]
    if len(outcomes) != total:
        raise AssertionError(  # the core resilience invariant
            f"{total - len(outcomes)} request(s) silently dropped")
    latencies = np.asarray([latency for _o, latency in outcomes])
    counts = {name: sum(1 for outcome, _l in outcomes if outcome == name)
              for name in ("ok", "degraded", "shed", "deadline", "error")}
    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "preset": preset,
        "shapes": shapes,
        "environment": environment_info(),
        "load": {
            "clients": shapes["clients"],
            "requests": total,
            "seconds": elapsed,
            "sustained_qps": total / elapsed if elapsed > 0 else None,
            "latency_p50_s": float(np.percentile(latencies, 50)),
            "latency_p99_s": float(np.percentile(latencies, 99)),
            "latency_mean_s": float(latencies.mean()),
            "outcomes": counts,
            "shed_rate": counts["shed"] / total,
            "degraded_rate": counts["degraded"] / total,
        },
        "recovery": recovery,
        "cluster": {"router": cluster_stats["router"],
                    "workers": cluster_stats["workers"]},
    }


def format_summary(results: dict) -> str:
    """Human-readable summary of a cluster-bench results document."""
    load = results["load"]
    as_ms = lambda value: "n/a" if value is None else f"{value * 1e3:.1f} ms"
    lines = [
        f"serve-cluster bench  preset={results['preset']}  "
        f"world={results['shapes']['world']}  clients={load['clients']}",
        f"  {load['requests']} requests  {load['sustained_qps']:.0f} qps"
        f"   p50 {as_ms(load['latency_p50_s'])}"
        f"  p99 {as_ms(load['latency_p99_s'])}",
        f"  outcomes: {load['outcomes']}"
        f"   shed rate {load['shed_rate']:.3f}"
        f"   degraded rate {load['degraded_rate']:.3f}",
    ]
    recovery = results.get("recovery")
    if recovery is not None:
        seconds = recovery["recovery_s"]
        shown = "not recovered" if seconds is None else f"{seconds:.2f}s"
        lines.append(f"  recovery after SIGKILL of shard "
                     f"{recovery['shard']}: {shown} "
                     f"({recovery['probes']} probes)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_serve_cluster.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--preset", default="default", choices=sorted(PRESETS),
                        help="shape preset (default: %(default)s)")
    args = parser.parse_args(argv)

    results = run_cluster_bench(preset=args.preset)
    write_bench(results, args.out)
    print(format_summary(results))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
