"""Request routing for the serving cluster: admission, shedding, fallback.

The router is the parent-process half of :class:`repro.serve.ServingCluster`
(``docs/resilience.md``).  It owns:

- **Typed outcomes.**  Every request resolves to a
  :class:`ServeResponse`, or raises one of the structured
  :class:`ServeError` subclasses — :class:`Overloaded` (shed at
  admission), :class:`DeadlineExceeded` (deadline budget exhausted),
  :class:`ShardUnavailable` (shard down past its retry budget with no
  fallback available), :class:`SwapFailed` (artifact roll rejected).
  Nothing in the cluster ever hangs a caller or drops a request silently.
- **Bounded per-shard queues** (:class:`ShardQueue`): a min-heap ordered
  by each entry's earliest-dispatch time (retries schedule themselves
  into the future with jittered backoff).  Admission beyond
  ``queue_limit`` sheds with :class:`Overloaded`; control traffic
  (heartbeats, history sync, swaps) bypasses the bound so supervision
  never competes with load.
- **The degraded-mode fallback**: a :class:`~repro.models.pop.PopRec`
  always resident in the router process.  The router keeps the
  authoritative per-user histories (workers hold replicas, re-seeded on
  restart) and feeds every observation into the popularity counts, so a
  brownout or a dead shard is answered instantly from popularity with
  ``degraded=True`` — correct-by-construction availability, reduced
  quality.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.models.pop import PopRec


# ----------------------------------------------------------------------
# Typed outcomes
# ----------------------------------------------------------------------
class ServeError(RuntimeError):
    """Base class of every structured serving-cluster error."""


class Overloaded(ServeError):
    """Request shed at admission: the shard queue is at its depth limit."""

    def __init__(self, shard: int, depth: int, limit: int):
        super().__init__(
            f"shard {shard} queue depth {depth} >= limit {limit}; "
            f"request shed")
        self.shard = shard
        self.depth = depth
        self.limit = limit


class DeadlineExceeded(ServeError):
    """The per-request deadline budget elapsed before a result arrived."""

    def __init__(self, user: int, deadline_s: float, attempts: int):
        super().__init__(
            f"recommend(user={user}) missed its {deadline_s:.3f}s deadline "
            f"after {attempts} attempt(s)")
        self.user = user
        self.deadline_s = deadline_s
        self.attempts = attempts


class ShardUnavailable(ServeError):
    """Shard down past the retry budget and no degraded fallback enabled."""

    def __init__(self, shard: int, reason: str):
        super().__init__(f"shard {shard} unavailable: {reason}")
        self.shard = shard
        self.reason = reason


class SwapFailed(ServeError):
    """Artifact hot-swap rejected (validation failed; rollback completed)."""

    def __init__(self, path, reason: str):
        super().__init__(f"swap to {path} failed: {reason}")
        self.path = path
        self.reason = reason


@dataclass(frozen=True)
class ServeResponse:
    """Outcome of one cluster ``recommend`` call.

    ``items`` are ``(item, score)`` pairs best-first; ``degraded`` marks a
    popularity-fallback answer (scores are popularity counts, not model
    logits); ``shard`` is the owning shard; ``attempts`` counts dispatch
    attempts (0 for answers that never reached a worker — brownout or a
    shard already known to be down).
    """

    items: tuple
    degraded: bool
    shard: int
    attempts: int = 1


# ----------------------------------------------------------------------
# Queue entries
# ----------------------------------------------------------------------
class ShardRequest:
    """One queued unit of shard work (a recommend, or control traffic).

    ``kind`` is ``"recommend"`` (caller-facing, bounded, retried),
    ``"ping"`` (supervisor heartbeat), ``"history"`` (idempotent full
    history sync), ``"seed"`` (chunked multi-user history sync, used for
    the post-swap authoritative re-seed), or ``"swap"`` (artifact roll
    step).  Caller-facing requests carry a monotonic ``deadline``; the
    dispatcher skips entries whose caller cancelled or whose deadline
    already passed.
    """

    __slots__ = ("kind", "user", "k", "filter_seen", "deadline", "payload",
                 "attempts", "not_before", "done", "result", "error",
                 "cancelled", "enqueued_at")

    def __init__(self, kind: str, user: int = -1, k: int = 0,
                 filter_seen: bool = True, deadline: float = float("inf"),
                 payload=None):
        self.kind = kind
        self.user = user
        self.k = k
        self.filter_seen = filter_seen
        self.deadline = deadline
        self.payload = payload
        self.attempts = 0
        self.not_before = 0.0
        self.done = threading.Event()
        self.result = None
        self.error: BaseException | None = None
        self.cancelled = False
        self.enqueued_at = time.monotonic()

    def remaining(self, now: float | None = None) -> float:
        """Seconds of deadline budget left (negative when blown)."""
        now = time.monotonic() if now is None else now
        return self.deadline - now

    def resolve(self, result) -> None:
        """Deliver ``result`` to the waiting caller."""
        self.result = result
        self.done.set()

    def fail(self, error: BaseException) -> None:
        """Deliver a structured error to the waiting caller."""
        self.error = error
        self.done.set()


class ShardQueue:
    """Bounded, time-ordered work queue for one shard.

    Entries pop in ``not_before`` order (FIFO among ready entries), so a
    retry scheduled with backoff does not block fresh traffic queued
    behind it.  ``put`` enforces the depth limit for ``"recommend"``
    entries only; control traffic and retries always fit.
    """

    def __init__(self, shard: int, limit: int):
        self.shard = shard
        self.limit = int(limit)
        self._heap: list[tuple[float, int, ShardRequest]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()

    def depth(self) -> int:
        """Current number of queued entries (all kinds)."""
        with self._cond:
            return len(self._heap)

    def put(self, request: ShardRequest, enforce_limit: bool = True) -> None:
        """Enqueue; sheds with :class:`Overloaded` when full (bounded kinds)."""
        with self._cond:
            if enforce_limit and request.kind == "recommend":
                depth = len(self._heap)
                if depth >= self.limit:
                    raise Overloaded(self.shard, depth, self.limit)
            heapq.heappush(self._heap,
                           (request.not_before, next(self._seq), request))
            self._cond.notify()

    def requeue(self, request: ShardRequest) -> None:
        """Re-enqueue a retry (never shed: it was already admitted)."""
        self.put(request, enforce_limit=False)

    def get(self, timeout: float) -> ShardRequest | None:
        """Next ready entry, or ``None`` after ``timeout`` seconds.

        Blocks until the head entry's ``not_before`` has passed (new
        arrivals with earlier dispatch times preempt the wait).
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                now = time.monotonic()
                if self._heap:
                    ready_at = self._heap[0][0]
                    if ready_at <= now:
                        return heapq.heappop(self._heap)[2]
                    wait = min(ready_at, deadline) - now
                else:
                    wait = deadline - now
                if wait <= 0:
                    return None
                self._cond.wait(wait)

    def drain(self, error: BaseException) -> int:
        """Fail every queued entry with ``error``; returns the count."""
        with self._cond:
            drained = 0
            while self._heap:
                request = heapq.heappop(self._heap)[2]
                if not request.done.is_set():
                    request.fail(error)
                    drained += 1
            self._cond.notify_all()
            return drained


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
@dataclass
class RouterStats:
    """Monotonic outcome counters kept by the router (thread-safe)."""

    admitted: int = 0
    shed: int = 0
    degraded: int = 0
    retries: int = 0
    deadline_exceeded: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def bump(self, name: str, amount: int = 1) -> None:
        with self.lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> dict:
        with self.lock:
            return {"admitted": self.admitted, "shed": self.shed,
                    "degraded": self.degraded, "retries": self.retries,
                    "deadline_exceeded": self.deadline_exceeded}


class Router:
    """Shard selection, admission control, and the degraded-mode answer.

    The router owns the authoritative per-user histories (the workers'
    engine replicas are re-seeded from here after a restart) and a
    :class:`~repro.models.pop.PopRec` fallback whose counts track every
    observation, so a degraded answer needs no worker at all.
    """

    def __init__(self, world: int, queue_limit: int, num_items: int,
                 fallback: PopRec | None = None, brownout: bool = False,
                 event_log=None):
        if world < 1:
            raise ValueError(f"world must be >= 1, got {world}")
        self.world = int(world)
        self.num_items = int(num_items)
        self.queues = [ShardQueue(shard, queue_limit)
                       for shard in range(self.world)]
        self.fallback = fallback if fallback is not None else \
            PopRec.from_counts(np.zeros(self.num_items + 1))
        self.brownout = bool(brownout)
        self.event_log = event_log
        self.stats = RouterStats()
        self._histories: dict[int, list[int]] = {}
        # Open re-seed windows: shard -> users mutated since the window
        # opened.  A worker restart snapshots this shard's histories and
        # replays them into the replacement; any mutation racing that
        # window lands here and is flushed after the worker installs, so
        # no observe is ever lost from a replica (docs/resilience.md).
        self._reseeding: dict[int, set[int]] = {}
        self._lock = threading.RLock()

    # -- sharding ------------------------------------------------------
    def shard_of(self, user: int) -> int:
        """The shard owning ``user`` (stable user-id hash sharding)."""
        return int(user) % self.world

    # -- history store (authoritative) ---------------------------------
    def _mark_dirty(self, user: int) -> None:
        """Record ``user`` into any open re-seed window (call under lock)."""
        shard = user % self.world
        dirty = self._reseeding.get(shard)
        if dirty is not None:
            dirty.add(user)

    def set_history(self, user: int, items) -> list[int]:
        """Replace ``user``'s history; feeds the popularity fallback.

        A replacement first retracts the previous history's popularity
        counts, so repeated syncs of the same user don't inflate the
        degraded-mode ranking.
        """
        user = int(user)
        history = [int(item) for item in np.asarray(items).ravel()]
        with self._lock:
            previous = self._histories.get(user)
            if previous:
                self.fallback.update(previous, amount=-1.0)
            self._histories[user] = history
            self.fallback.update(history)
            self._mark_dirty(user)
        return history

    def observe(self, user: int, item: int) -> list[int]:
        """Append one interaction; returns the full updated history.

        Appends to the :class:`~repro.online.EventLog` (when wired) under
        the same lock, so the event stream's order always matches the
        order interactions entered the authoritative store.
        """
        user, item = int(user), int(item)
        with self._lock:
            history = self._histories.setdefault(user, [])
            history.append(item)
            self.fallback.update([item])
            self._mark_dirty(user)
            if self.event_log is not None:
                self.event_log.append(user, item)
            return list(history)

    # -- re-seed windows (worker restart / artifact roll) --------------
    def begin_reseed(self, shard: int) -> None:
        """Open a dirty-user window for ``shard``'s restart re-seed."""
        with self._lock:
            self._reseeding[shard] = set()

    def end_reseed(self, shard: int) -> list[tuple[int, list[int]]]:
        """Close ``shard``'s window; returns current ``(user, history)``
        pairs for every user mutated while it was open."""
        with self._lock:
            dirty = self._reseeding.pop(shard, set())
            return [(user, list(self._histories.get(user, [])))
                    for user in sorted(dirty)]

    def history(self, user: int) -> list[int]:
        """The recorded history of ``user`` (copy)."""
        with self._lock:
            return list(self._histories.get(int(user), []))

    def users_of_shard(self, shard: int) -> list[tuple[int, list[int]]]:
        """All ``(user, history)`` pairs owned by ``shard`` (for re-seeding)."""
        with self._lock:
            return [(user, list(history))
                    for user, history in self._histories.items()
                    if user % self.world == shard]

    # -- admission -----------------------------------------------------
    def admit(self, request: ShardRequest) -> None:
        """Admit a caller-facing request, or shed it with ``Overloaded``."""
        shard = self.shard_of(request.user)
        queue = self.queues[shard]
        try:
            queue.put(request)
        except Overloaded:
            self.stats.bump("shed")
            if obs.telemetry_enabled():
                obs.counter("serve.cluster.shed").inc()
            raise
        self.stats.bump("admitted")
        if obs.telemetry_enabled():
            obs.counter("serve.cluster.requests").inc()
            obs.gauge(f"serve.cluster.queue_depth.{shard}").set(queue.depth())

    # -- degraded mode -------------------------------------------------
    def degraded_response(self, user: int, k: int, filter_seen: bool,
                          attempts: int = 0) -> ServeResponse:
        """Answer from the resident popularity model, flagged degraded."""
        exclude = self.history(user) if filter_seen else ()
        items = self.fallback.topk(k, exclude=exclude)
        self.stats.bump("degraded")
        if obs.telemetry_enabled():
            obs.counter("serve.cluster.degraded").inc()
        return ServeResponse(items=tuple(items), degraded=True,
                             shard=self.shard_of(user), attempts=attempts)
