"""Request micro-batching for the recommendation engine.

Concurrent callers of :meth:`MicroBatcher.recommend` are coalesced into
one :meth:`RecommendationEngine.recommend_batch` call by a background
worker thread: the first queued request opens a batching window of at
most ``max_wait_s``; the window closes early the moment ``max_batch_size``
requests are waiting.  Stale user states inside a batch share a single
padded forward pass, which is where batching pays — the per-request
marginal cost of the encoder forward amortises across the batch.

Telemetry (when :mod:`repro.obs` is enabled):

- ``serve.request_latency_s`` — end-to-end per-request latency histogram
  (queue wait + batch compute), with p50/p99 in its snapshot;
- ``serve.batch_fill`` — histogram of batch occupancy as a fraction of
  ``max_batch_size``;
- ``serve.batch_size`` — histogram of absolute batch sizes;
- ``serve.queue_depth`` — gauge of the queue length at drain time.

The batcher is a context manager; exiting drains nothing but stops the
worker, and late calls raise ``RuntimeError``.
"""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.serve.engine import RecommendationEngine


class _PendingRequest:
    """One queued ``recommend`` call and its eventual outcome."""

    __slots__ = ("user", "k", "filter_seen", "done", "result", "error",
                 "enqueued_at")

    def __init__(self, user: int, k: int, filter_seen: bool):
        self.user = user
        self.k = k
        self.filter_seen = filter_seen
        self.done = threading.Event()
        self.result: list | None = None
        self.error: BaseException | None = None
        self.enqueued_at = time.perf_counter()


class MicroBatcher:
    """Coalesce concurrent ``recommend`` calls into engine batches.

    Parameters
    ----------
    engine:
        The :class:`~repro.serve.engine.RecommendationEngine` to serve from.
    max_batch_size:
        Close the batching window as soon as this many requests wait.
    max_wait_s:
        Upper bound on how long the first request of a window waits for
        company before the batch runs anyway.
    """

    def __init__(self, engine: RecommendationEngine, max_batch_size: int = 32,
                 max_wait_s: float = 0.002):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.engine = engine
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self._queue: list[_PendingRequest] = []
        self._cond = threading.Condition()
        self._closed = False
        self._batches_served = 0
        self._requests_served = 0
        self._worker = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-batcher")
        self._worker.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def recommend(self, user: int, k: int = 10, filter_seen: bool = True,
                  timeout: float | None = 30.0) -> list[tuple[int, float]]:
        """Blocking ``recommend``; requests overlapping in time share a batch."""
        request = _PendingRequest(int(user), int(k), bool(filter_seen))
        with self._cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._queue.append(request)
            self._cond.notify_all()
        if not request.done.wait(timeout):
            raise TimeoutError(
                f"recommend(user={user}) timed out after {timeout}s")
        if request.error is not None:
            raise request.error
        if obs.telemetry_enabled():
            obs.histogram("serve.request_latency_s").observe(
                time.perf_counter() - request.enqueued_at)
        return request.result

    def stats(self) -> dict:
        """Lifetime counters (batches served, requests served, mean fill)."""
        with self._cond:
            batches, requests = self._batches_served, self._requests_served
        return {
            "batches": batches,
            "requests": requests,
            "mean_batch_size": (requests / batches) if batches else None,
        }

    def close(self) -> None:
        """Stop the worker; queued requests fail, late calls raise."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            for request in self._queue:
                request.error = RuntimeError("MicroBatcher closed")
                request.done.set()
            self._queue.clear()
            self._cond.notify_all()
        self._worker.join(timeout=5.0)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _collect_batch(self) -> list[_PendingRequest]:
        """Block until a batch is ready (or the batcher closes)."""
        with self._cond:
            while not self._queue and not self._closed:
                self._cond.wait()
            if self._closed:
                return []
            deadline = time.monotonic() + self.max_wait_s
            while len(self._queue) < self.max_batch_size and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            if self._closed:
                return []
            batch = self._queue[:self.max_batch_size]
            del self._queue[:len(batch)]
            if obs.telemetry_enabled():
                obs.gauge("serve.queue_depth").set(len(self._queue))
            return batch

    def _run(self) -> None:
        while True:
            batch = self._collect_batch()
            if not batch:
                with self._cond:
                    if self._closed:
                        return
                continue
            if obs.telemetry_enabled():
                obs.histogram("serve.batch_size").observe(len(batch))
                obs.histogram("serve.batch_fill").observe(
                    len(batch) / self.max_batch_size)
            try:
                results = self.engine.recommend_batch(
                    [(r.user, r.k, r.filter_seen) for r in batch])
            except BaseException as exc:  # propagate to every waiter
                for request in batch:
                    request.error = exc
                    request.done.set()
                continue
            with self._cond:
                self._batches_served += 1
                self._requests_served += len(batch)
            for request, result in zip(batch, results):
                request.result = result
                request.done.set()
