"""Request micro-batching for the recommendation engine.

Concurrent callers of :meth:`MicroBatcher.recommend` are coalesced into
one :meth:`RecommendationEngine.recommend_batch` call by a background
worker thread: the first queued request opens a batching window of at
most ``max_wait_s``; the window closes early the moment ``max_batch_size``
requests are waiting.  Stale user states inside a batch share a single
padded forward pass, which is where batching pays — the per-request
marginal cost of the encoder forward amortises across the batch.

Two robustness guarantees (both regression-tested):

- **Abandoned requests are not computed.**  A caller that times out marks
  its request *cancelled*; the worker skips cancelled requests at drain
  time instead of burning a forward on a result nobody will read.
- **The worker cannot die silently.**  Any exception escaping the worker
  loop (engine errors propagate per batch; this covers everything else,
  e.g. a failing telemetry sink) fails every queued request with the
  original exception attached, and later ``recommend`` calls raise
  immediately instead of blocking until their timeout.

Telemetry (when :mod:`repro.obs` is enabled):

- ``serve.request_latency_s`` — end-to-end per-request latency histogram
  (queue wait + batch compute), with p50/p99 in its snapshot;
- ``serve.batch_fill`` — histogram of batch occupancy as a fraction of
  ``max_batch_size``;
- ``serve.batch_size`` — histogram of absolute batch sizes;
- ``serve.queue_depth`` — gauge of the queue length at drain time;
- ``serve.batcher.cancelled_skips`` — cancelled requests skipped at drain.

The batcher is a context manager; exiting drains nothing but stops the
worker, and late calls raise ``RuntimeError``.
"""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.serve.engine import RecommendationEngine


class _PendingRequest:
    """One queued ``recommend`` call and its eventual outcome."""

    __slots__ = ("user", "k", "filter_seen", "done", "result", "error",
                 "enqueued_at", "cancelled")

    def __init__(self, user: int, k: int, filter_seen: bool):
        self.user = user
        self.k = k
        self.filter_seen = filter_seen
        self.done = threading.Event()
        self.result: list | None = None
        self.error: BaseException | None = None
        self.enqueued_at = time.perf_counter()
        self.cancelled = False


class MicroBatcher:
    """Coalesce concurrent ``recommend`` calls into engine batches.

    Parameters
    ----------
    engine:
        The :class:`~repro.serve.engine.RecommendationEngine` to serve from.
    max_batch_size:
        Close the batching window as soon as this many requests wait.
    max_wait_s:
        Upper bound on how long the first request of a window waits for
        company before the batch runs anyway.
    """

    def __init__(self, engine: RecommendationEngine, max_batch_size: int = 32,
                 max_wait_s: float = 0.002):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.engine = engine
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self._queue: list[_PendingRequest] = []
        self._cond = threading.Condition()
        self._closed = False
        self._worker_error: BaseException | None = None
        self._batches_served = 0
        self._requests_served = 0
        self._cancelled_skips = 0
        self._worker = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-batcher")
        self._worker.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def recommend(self, user: int, k: int = 10, filter_seen: bool = True,
                  timeout: float | None = 30.0) -> list[tuple[int, float]]:
        """Blocking ``recommend``; requests overlapping in time share a batch.

        Raises ``TimeoutError`` after ``timeout`` seconds (the abandoned
        request is cancelled, not computed) and ``RuntimeError`` immediately
        when the batcher is closed or its worker thread has died.
        """
        request = _PendingRequest(int(user), int(k), bool(filter_seen))
        with self._cond:
            self._check_alive()
            self._queue.append(request)
            self._cond.notify_all()
        if not request.done.wait(timeout):
            with self._cond:
                request.cancelled = True
            raise TimeoutError(
                f"recommend(user={user}) timed out after {timeout}s")
        if request.error is not None:
            raise request.error
        if obs.telemetry_enabled():
            obs.histogram("serve.request_latency_s").observe(
                time.perf_counter() - request.enqueued_at)
        return request.result

    def stats(self) -> dict:
        """Lifetime counters (batches/requests served, fill, cancel skips)."""
        with self._cond:
            batches, requests = self._batches_served, self._requests_served
            cancelled = self._cancelled_skips
        return {
            "batches": batches,
            "requests": requests,
            "mean_batch_size": (requests / batches) if batches else None,
            "cancelled_skips": cancelled,
        }

    def close(self) -> None:
        """Stop the worker; queued requests fail, late calls raise.

        Raises ``RuntimeError`` if the worker does not stop within 5s —
        a hung engine call must not be mistaken for a clean shutdown.
        """
        with self._cond:
            if self._closed:
                self._cond.notify_all()
            else:
                self._closed = True
                self._fail_queued_locked(RuntimeError("MicroBatcher closed"))
                self._cond.notify_all()
        self._worker.join(timeout=5.0)
        if self._worker.is_alive():
            raise RuntimeError(
                "MicroBatcher worker did not stop within 5s (engine call "
                "still running)")

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        """Raise (under ``_cond``) when the batcher cannot serve anymore."""
        if self._closed:
            if self._worker_error is not None:
                raise RuntimeError(
                    "MicroBatcher worker died: "
                    f"{self._worker_error!r}") from self._worker_error
            raise RuntimeError("MicroBatcher is closed")
        if not self._worker.is_alive():
            raise RuntimeError("MicroBatcher worker thread is not alive")

    def _fail_queued_locked(self, error: BaseException) -> None:
        """Fail every queued request with ``error`` (call under ``_cond``)."""
        for request in self._queue:
            request.error = error
            request.done.set()
        self._queue.clear()

    def _collect_batch(self) -> list[_PendingRequest]:
        """Block until a batch is ready (or the batcher closes).

        Cancelled (timed-out, abandoned) requests are dropped here, before
        they can occupy batch slots or burn engine work.
        """
        with self._cond:
            while True:
                self._queue = [r for r in self._queue if not self._drop(r)]
                if self._queue or self._closed:
                    break
                self._cond.wait()
            if self._closed:
                return []
            deadline = time.monotonic() + self.max_wait_s
            while len(self._queue) < self.max_batch_size and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            if self._closed:
                return []
            self._queue = [r for r in self._queue if not self._drop(r)]
            batch = self._queue[:self.max_batch_size]
            del self._queue[:len(batch)]
            if obs.telemetry_enabled():
                obs.gauge("serve.queue_depth").set(len(self._queue))
            return batch

    def _drop(self, request: _PendingRequest) -> bool:
        """Whether to skip ``request`` (cancelled by a timed-out caller)."""
        if not request.cancelled:
            return False
        self._cancelled_skips += 1
        if obs.telemetry_enabled():
            obs.counter("serve.batcher.cancelled_skips").inc()
        return True

    def _run(self) -> None:
        batch: list[_PendingRequest] = []
        try:
            while True:
                batch = self._collect_batch()
                if not batch:
                    with self._cond:
                        if self._closed:
                            return
                    continue
                if obs.telemetry_enabled():
                    obs.histogram("serve.batch_size").observe(len(batch))
                    obs.histogram("serve.batch_fill").observe(
                        len(batch) / self.max_batch_size)
                try:
                    results = self.engine.recommend_batch(
                        [(r.user, r.k, r.filter_seen) for r in batch])
                except BaseException as exc:  # propagate to every waiter
                    for request in batch:
                        request.error = exc
                        request.done.set()
                    continue
                with self._cond:
                    self._batches_served += 1
                    self._requests_served += len(batch)
                for request, result in zip(batch, results):
                    request.result = result
                    request.done.set()
        except BaseException as exc:
            # Anything escaping the loop itself (telemetry sinks, queue
            # bookkeeping) would previously kill the thread silently and
            # every later recommend() blocked until timeout.  Fail fast
            # instead: poison the batcher and release every waiter.
            with self._cond:
                self._worker_error = exc
                self._closed = True
                for request in batch:
                    if not request.done.is_set():
                        request.error = exc
                        request.done.set()
                self._fail_queued_locked(exc)
                self._cond.notify_all()
