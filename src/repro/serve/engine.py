"""Top-K recommendation engine over a frozen model.

The engine owns two pieces of per-user state:

- **histories** — the source of truth: every item the user has interacted
  with, updated through :meth:`RecommendationEngine.observe` /
  :meth:`~RecommendationEngine.set_history`;
- **encoder states** — a bounded LRU cache mapping a user to the final
  hidden state of the frozen encoder over their (left-padded, clipped to
  ``max_len``) history.  A new interaction invalidates the cached state;
  the next request recomputes it lazily, and
  :meth:`~RecommendationEngine.recommend_batch` recomputes every stale
  user of a batch in **one** padded forward pass.

All model evaluation runs under :func:`repro.tensor.inference_mode`, so a
request allocates zero autograd graph nodes (asserted by the parity
tests via :func:`repro.tensor.graph_nodes`).  Top-K extraction is an
exact partial sort: ``np.argpartition`` over the full-vocabulary logits
(the same ``state @ V^T`` product as Eq. 12) followed by an ordering sort
of just the ``k`` winners, with the padding column and — optionally —
already-seen items suppressed to ``-inf``, mirroring the
``suppress_index`` convention of the fused training kernel.

For offline validation the engine also implements the
``score(users, inputs, candidates)`` protocol of
:class:`~repro.models.base.Recommender` with the *expression-identical*
arithmetic of ``SequenceRecommender.score``, so
``RankingEvaluator.evaluate(engine)`` reproduces the training-side
evaluation bit for bit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro import obs
from repro.data.batching import pad_left
from repro.models.base import SequenceRecommender
from repro.tensor.tensor import inference_mode


class RecommendationEngine:
    """Serve exact top-K recommendations from a frozen model.

    Parameters
    ----------
    model:
        A :class:`~repro.models.base.SequenceRecommender`, typically from
        :func:`repro.serve.load_artifact`.  Forced into eval mode.
    cache_size:
        Maximum number of per-user encoder states kept in the LRU cache.
    event_log:
        Optional :class:`~repro.online.EventLog` that every ``observe``
        is appended to (under the engine lock, so event order matches
        history order) — the tap the online-learning loop consumes.
    """

    def __init__(self, model: SequenceRecommender, cache_size: int = 1024,
                 event_log=None):
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        model.eval()
        self.model = model
        self.cache_size = int(cache_size)
        self.event_log = event_log
        self.name = f"serve({model.name})"
        self.max_len = model.max_len
        self._histories: dict[int, list[int]] = {}
        self._states: OrderedDict[int, np.ndarray] = OrderedDict()
        # One reentrant lock serialises every history/state-cache mutation:
        # concurrent recommend()/observe() callers would otherwise race the
        # LRU (an eviction between _state_for and _topk drops the entry).
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # History management
    # ------------------------------------------------------------------
    def _invalidate_user(self, user: int) -> None:
        """Drop every cached derivative of ``user``'s history.

        Called under the engine lock by every history mutation, so a
        mutation and its cache invalidation are atomic with respect to
        concurrent requests.  Subclasses caching more per-user state
        (e.g. the quantized engine's seen-item index) extend this.
        """
        self._states.pop(user, None)

    def set_history(self, user: int, items) -> None:
        """Replace ``user``'s interaction history (invalidates the state)."""
        user = int(user)
        history = [int(item) for item in np.asarray(items).ravel()]
        with self._lock:
            self._histories[user] = history
            self._invalidate_user(user)

    def observe(self, user: int, item: int) -> None:
        """Append one new interaction (invalidates the cached state)."""
        user, item = int(user), int(item)
        with self._lock:
            self._histories.setdefault(user, []).append(item)
            self._invalidate_user(user)
            if self.event_log is not None:
                self.event_log.append(user, item)

    def history(self, user: int) -> list[int]:
        """The full recorded interaction history of ``user``."""
        with self._lock:
            return list(self._histories.get(int(user), []))

    def known_users(self) -> list[int]:
        """Every user with a recorded history (for state migration)."""
        with self._lock:
            return list(self._histories)

    # ------------------------------------------------------------------
    # State cache
    # ------------------------------------------------------------------
    def cache_info(self) -> dict:
        """Current cache occupancy (``size``/``capacity``/cached users)."""
        with self._lock:
            return {"size": len(self._states), "capacity": self.cache_size,
                    "users": list(self._states)}

    def _cache_put(self, user: int, state: np.ndarray) -> None:
        self._states[user] = state
        self._states.move_to_end(user)
        while len(self._states) > self.cache_size:
            self._states.popitem(last=False)
            if obs.telemetry_enabled():
                obs.counter("serve.cache.evictions").inc()
        if obs.telemetry_enabled():
            obs.gauge("serve.cache.size").set(len(self._states))

    def _refresh_states(self, users: list[int]) -> None:
        """Recompute encoder states for ``users`` in one padded forward."""
        histories = [np.asarray(self._histories.get(user, []), dtype=np.int64)
                     for user in users]
        inputs = pad_left(histories, self.max_len)
        with inference_mode():
            states = self.model.sequence_output(inputs)
        last = np.asarray(states.data)[:, -1, :]
        for row, user in enumerate(users):
            # Explicit copy: ``last[row]`` is a *view* into the forward
            # buffer, which arena-pooled backends recycle after the request.
            self._cache_put(user, last[row].copy())

    def _state_for(self, user: int) -> np.ndarray:
        state = self._states.get(user)
        if state is None:
            self._refresh_states([user])
            state = self._states[user]
        else:
            self._states.move_to_end(user)
        return state

    # ------------------------------------------------------------------
    # Recommendation
    # ------------------------------------------------------------------
    def _topk(self, user: int, k: int, filter_seen: bool) -> list[tuple[int, float]]:
        """Exact top-``k`` (item, score) pairs for an already-cached user."""
        state = self._states[user]
        weights = self.model.item_embedding.weight.data  # (V + 1, dim)
        scores = (weights @ state).astype(np.float64)
        scores[0] = -np.inf  # padding id is never recommended
        if filter_seen:
            seen = self._histories.get(user)
            if seen:
                suppress = np.unique(np.asarray(seen, dtype=np.int64))
                suppress = suppress[(suppress > 0) & (suppress < len(scores))]
                scores[suppress] = -np.inf
        k = min(int(k), self.model.num_items)
        winners = np.argpartition(scores, -k)[-k:]
        # Order the k winners by descending score, ties by ascending item id.
        winners = winners[np.lexsort((winners, -scores[winners]))]
        return [(int(item), float(scores[item]))
                for item in winners if np.isfinite(scores[item])]

    def recommend(self, user: int, k: int = 10,
                  filter_seen: bool = True) -> list[tuple[int, float]]:
        """Top-``k`` ``(item, score)`` pairs for ``user``, best first."""
        with obs.timer("serve.request_latency_s"), self._lock:
            user = int(user)
            if obs.telemetry_enabled():
                obs.counter("serve.requests").inc()
                name = ("serve.cache.hits" if user in self._states
                        else "serve.cache.misses")
                obs.counter(name).inc()
            self._state_for(user)
            return self._topk(user, k, filter_seen)

    def recommend_batch(self, requests: list[tuple]) -> list[list[tuple[int, float]]]:
        """Serve many requests at once; stale states refresh in one forward.

        ``requests`` holds ``(user, k)`` or ``(user, k, filter_seen)``
        tuples; returns one top-K list per request, in order.
        """
        normalized = []
        for request in requests:
            user, k = int(request[0]), int(request[1])
            filter_seen = bool(request[2]) if len(request) > 2 else True
            normalized.append((user, k, filter_seen))
        with self._lock:
            stale, fresh_hits = [], 0
            for user, _k, _f in normalized:
                if user in self._states:
                    fresh_hits += 1
                elif user not in stale:
                    stale.append(user)
            if obs.telemetry_enabled():
                obs.counter("serve.requests").inc(len(normalized))
                obs.counter("serve.cache.hits").inc(fresh_hits)
                obs.counter("serve.cache.misses").inc(len(normalized) - fresh_hits)
            if stale:
                self._refresh_states(stale)
            results = []
            for user, k, filter_seen in normalized:
                if user in self._states:
                    self._states.move_to_end(user)
                else:
                    # A fresh-at-admission user can be evicted while the
                    # batch refreshes its stale users (cache smaller than
                    # the batch's working set); recompute rather than crash.
                    self._refresh_states([user])
                results.append(self._topk(user, k, filter_seen))
            return results

    # ------------------------------------------------------------------
    # Recommender protocol (offline parity with the evaluator)
    # ------------------------------------------------------------------
    def score(self, users: np.ndarray, inputs: np.ndarray,
              candidates: np.ndarray) -> np.ndarray:
        """Candidate scores, bit-identical to ``SequenceRecommender.score``.

        Same arithmetic expression, same batch shapes, same dtype chain —
        only the autograd context differs (:func:`inference_mode` instead
        of ``no_grad``), which does not touch the forward numerics.  This
        is what lets ``RankingEvaluator.evaluate(engine)`` reproduce the
        training-side report exactly.
        """
        with inference_mode():
            states = self.model.sequence_output(inputs)
            last = states[:, -1, :]  # (batch, dim)
            embeddings = self.model.item_embedding(candidates)  # (batch, C, dim)
            scores = (embeddings @ last.reshape(last.shape[0], last.shape[1], 1))
        return scores.data[:, :, 0].astype(np.float64)
