"""Freeze trained models into checksummed inference artifacts.

An inference artifact is one atomic ``.npz`` archive
(:func:`repro.utils.serialization.write_npz_atomic`) holding everything a
server needs and nothing it doesn't:

- ``weights/<name>`` — the model ``state_dict`` arrays;
- ``const/<name>`` — non-trainable constructor arrays (concept matrix,
  concept-graph adjacency) from the model's ``export_config`` hook;
- the ``__meta__`` blob — ``kind="inference_artifact"``, the model class
  name, the JSON architecture config, the vocabulary size, and the usual
  per-array CRC-32 checksums.

Unlike a :class:`~repro.train.TrainState`, an artifact carries no
optimizer moments, RNG streams, or history — it is typically a fraction
of the training checkpoint's size and loads straight into forced-eval
mode: :func:`load_artifact` always calls ``model.eval()``, so a model
exported while still in train mode (mid-run best checkpoint, a forgotten
``eval()``) serves deterministically anyway.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.models.base import SequenceRecommender
from repro.train.checkpoint import load_model_state
from repro.utils.serialization import (
    CheckpointIntegrityError,
    normalize_checkpoint_path,
    read_npz_verified,
    write_npz_atomic,
)

ARTIFACT_KIND = "inference_artifact"

_WEIGHT_PREFIX = "weights/"
_CONST_PREFIX = "const/"

#: Model classes that can be rebuilt from an artifact, keyed by class name.
_BUILDERS: dict[str, type[SequenceRecommender]] = {}


def register_model(cls: type[SequenceRecommender]) -> type[SequenceRecommender]:
    """Make ``cls`` loadable from artifacts (usable as a decorator).

    The class must implement the ``export_config`` /
    ``from_export_config`` protocol of
    :class:`~repro.models.base.SequenceRecommender`.
    """
    _BUILDERS[cls.__name__] = cls
    return cls


def servable_models() -> tuple[str, ...]:
    """Class names currently registered for artifact loading."""
    return tuple(sorted(_BUILDERS))


def _register_builtins() -> None:
    """Register the project's stock models (idempotent)."""
    from repro.core.isrec import ISRec
    from repro.models.gru4rec import GRU4Rec, GRU4RecPlus
    from repro.models.sasrec import SASRec, SASRecConcept

    for cls in (ISRec, SASRec, SASRecConcept, GRU4Rec, GRU4RecPlus):
        register_model(cls)


_register_builtins()


def export_artifact(model: SequenceRecommender, path: str | Path,
                    extra_meta: dict | None = None) -> Path:
    """Freeze ``model`` into an inference artifact at ``path``.

    The model's current weights are captured as-is; its train/eval mode is
    irrelevant (and not mutated) because :func:`load_artifact` forces eval
    mode on the serving side.  Returns the resolved ``.npz`` path.
    """
    config, constants = model.export_config()
    class_name = type(model).__name__
    if class_name not in _BUILDERS:
        raise ValueError(
            f"{class_name} is not registered for serving; call "
            f"repro.serve.register_model({class_name}) first")
    state = model.state_dict()
    arrays: dict[str, np.ndarray] = {
        f"{_WEIGHT_PREFIX}{name}": np.asarray(value)
        for name, value in state.items()
    }
    for name, value in constants.items():
        arrays[f"{_CONST_PREFIX}{name}"] = np.asarray(value)
    meta = {
        "kind": ARTIFACT_KIND,
        "model_class": class_name,
        "model_name": model.name,
        "config": config,
        "num_items": int(model.num_items),
        "max_len": int(model.max_len),
        "num_parameters": int(sum(np.asarray(v).size for v in state.values())),
    }
    if extra_meta:
        meta.update(extra_meta)
    return write_npz_atomic(normalize_checkpoint_path(path), arrays, meta)


def export_checkpoint(checkpoint_path: str | Path, model: SequenceRecommender,
                      path: str | Path) -> Path:
    """Freeze the weights stored in ``checkpoint_path`` into an artifact.

    ``model`` supplies the architecture (an instance matching the
    checkpoint — freshly constructed is fine); ``checkpoint_path`` may be
    either kind of training archive — a full :class:`~repro.train.TrainState`
    rotation file or a plain best-model
    :func:`~repro.utils.serialization.save_checkpoint` — via
    :func:`repro.train.load_model_state`.  The weights are loaded into
    ``model`` (mutating it) and then exported.
    """
    model_state, meta = load_model_state(checkpoint_path)
    stored_class = meta.get("model_class", "")
    if stored_class and stored_class != type(model).__name__:
        raise TypeError(
            f"checkpoint {checkpoint_path} was saved from {stored_class!r} "
            f"but the architecture instance is {type(model).__name__!r}")
    model.load_state_dict(model_state)
    return export_artifact(model, path,
                           extra_meta={"source_checkpoint": str(checkpoint_path)})


def load_artifact(path: str | Path) -> SequenceRecommender:
    """Rebuild the model frozen at ``path``, in eval mode.

    Verifies checksums, reconstructs the architecture through the class's
    ``from_export_config``, loads the weights, and **forces eval mode** —
    dropout and Gumbel noise are off no matter what mode the exporting
    process left the model in.
    """
    path = Path(path)
    if not path.exists() and normalize_checkpoint_path(path).exists():
        path = normalize_checkpoint_path(path)
    arrays, meta = read_npz_verified(path)
    if meta.get("kind") != ARTIFACT_KIND:
        raise CheckpointIntegrityError(
            f"{path}: not an inference artifact (kind={meta.get('kind')!r})")
    class_name = meta.get("model_class", "")
    builder = _BUILDERS.get(class_name)
    if builder is None:
        raise CheckpointIntegrityError(
            f"{path}: model class {class_name!r} is not registered for "
            f"serving (known: {', '.join(servable_models())})")
    weights = {key[len(_WEIGHT_PREFIX):]: value
               for key, value in arrays.items()
               if key.startswith(_WEIGHT_PREFIX)}
    constants = {key[len(_CONST_PREFIX):]: value
                 for key, value in arrays.items()
                 if key.startswith(_CONST_PREFIX)}
    if not weights:
        raise CheckpointIntegrityError(f"{path}: artifact holds no weights")
    model = builder.from_export_config(meta["config"], constants)
    model.load_state_dict(weights)
    model.eval()
    return model
