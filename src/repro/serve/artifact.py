"""Freeze trained models into checksummed inference artifacts.

An inference artifact is one atomic ``.npz`` archive
(:func:`repro.utils.serialization.write_npz_atomic`) holding everything a
server needs and nothing it doesn't:

- ``weights/<name>`` — the model ``state_dict`` arrays;
- ``const/<name>`` — non-trainable constructor arrays (concept matrix,
  concept-graph adjacency) from the model's ``export_config`` hook;
- the ``__meta__`` blob — ``kind="inference_artifact"``, the model class
  name, the JSON architecture config, the vocabulary size, and the usual
  per-array CRC-32 checksums.

Unlike a :class:`~repro.train.TrainState`, an artifact carries no
optimizer moments, RNG streams, or history — it is typically a fraction
of the training checkpoint's size and loads straight into forced-eval
mode: :func:`load_artifact` always calls ``model.eval()``, so a model
exported while still in train mode (mid-run best checkpoint, a forgotten
``eval()``) serves deterministically anyway.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.models.base import SequenceRecommender
from repro.train.checkpoint import load_model_state
from repro.utils.serialization import (
    CheckpointIntegrityError,
    normalize_checkpoint_path,
    read_npz_verified,
    write_npz_atomic,
)

ARTIFACT_KIND = "inference_artifact"

_WEIGHT_PREFIX = "weights/"
_CONST_PREFIX = "const/"
_QUANT_PREFIX = "quant/"

#: Model classes that can be rebuilt from an artifact, keyed by class name.
_BUILDERS: dict[str, type[SequenceRecommender]] = {}


def register_model(cls: type[SequenceRecommender]) -> type[SequenceRecommender]:
    """Make ``cls`` loadable from artifacts (usable as a decorator).

    The class must implement the ``export_config`` /
    ``from_export_config`` protocol of
    :class:`~repro.models.base.SequenceRecommender`.
    """
    _BUILDERS[cls.__name__] = cls
    return cls


def servable_models() -> tuple[str, ...]:
    """Class names currently registered for artifact loading."""
    return tuple(sorted(_BUILDERS))


def _register_builtins() -> None:
    """Register the project's stock models (idempotent)."""
    from repro.core.isrec import ISRec
    from repro.models.fm import FM
    from repro.models.gru4rec import GRU4Rec, GRU4RecPlus
    from repro.models.ktup import KTUP
    from repro.models.sasrec import SASRec, SASRecConcept

    for cls in (ISRec, SASRec, SASRecConcept, GRU4Rec, GRU4RecPlus, KTUP, FM):
        register_model(cls)


_register_builtins()


def export_artifact(model: SequenceRecommender, path: str | Path,
                    extra_meta: dict | None = None,
                    quantize: str | None = None) -> Path:
    """Freeze ``model`` into an inference artifact at ``path``.

    The model's current weights are captured as-is; its train/eval mode is
    irrelevant (and not mutated) because :func:`load_artifact` forces eval
    mode on the serving side.  Returns the resolved ``.npz`` path.

    ``quantize="int8"`` stores every weight *matrix* (``ndim >= 2``) as a
    symmetric per-channel int8 array plus a ``quant/<name>`` scale vector
    (:func:`~repro.serve.quantize.quantize_per_channel`); vectors (biases,
    layer-norm gains) stay float.  :func:`load_artifact` decodes the
    weights transparently, and :func:`~repro.serve.quantize.engine_for_artifact`
    additionally serves the raw int8 item table through a
    :class:`~repro.serve.quantize.QuantizedEngine`.
    """
    from repro.serve.quantize import (
        QUANT_SCHEMES, _MIN_QUANT_NDIM, quantize_per_channel,
    )

    if quantize is not None and quantize not in QUANT_SCHEMES:
        raise ValueError(f"unknown quantization scheme {quantize!r}; "
                         f"available: {', '.join(QUANT_SCHEMES)}")
    config, constants = model.export_config()
    class_name = type(model).__name__
    if class_name not in _BUILDERS:
        raise ValueError(
            f"{class_name} is not registered for serving; call "
            f"repro.serve.register_model({class_name}) first")
    state = model.state_dict()
    arrays: dict[str, np.ndarray] = {}
    quantized_names: list[str] = []
    for name, value in state.items():
        value = np.asarray(value)
        if (quantize == "int8" and value.dtype.kind == "f"
                and value.ndim >= _MIN_QUANT_NDIM):
            q, scales = quantize_per_channel(value, axis=0)
            arrays[f"{_WEIGHT_PREFIX}{name}"] = q
            arrays[f"{_QUANT_PREFIX}{name}"] = scales
            quantized_names.append(name)
        else:
            arrays[f"{_WEIGHT_PREFIX}{name}"] = value
    for name, value in constants.items():
        arrays[f"{_CONST_PREFIX}{name}"] = np.asarray(value)
    meta = {
        "kind": ARTIFACT_KIND,
        "model_class": class_name,
        "model_name": model.name,
        "config": config,
        "num_items": int(model.num_items),
        "max_len": int(model.max_len),
        "num_parameters": int(sum(np.asarray(v).size for v in state.values())),
    }
    if quantize is not None:
        meta["quantize"] = quantize
        meta["quantized_weights"] = quantized_names
    if extra_meta:
        meta.update(extra_meta)
    return write_npz_atomic(normalize_checkpoint_path(path), arrays, meta)


def export_checkpoint(checkpoint_path: str | Path, model: SequenceRecommender,
                      path: str | Path, quantize: str | None = None) -> Path:
    """Freeze the weights stored in ``checkpoint_path`` into an artifact.

    ``model`` supplies the architecture (an instance matching the
    checkpoint — freshly constructed is fine); ``checkpoint_path`` may be
    either kind of training archive — a full :class:`~repro.train.TrainState`
    rotation file or a plain best-model
    :func:`~repro.utils.serialization.save_checkpoint` — via
    :func:`repro.train.load_model_state`.  The weights are loaded into
    ``model`` (mutating it) and then exported.
    """
    model_state, meta = load_model_state(checkpoint_path)
    stored_class = meta.get("model_class", "")
    if stored_class and stored_class != type(model).__name__:
        raise TypeError(
            f"checkpoint {checkpoint_path} was saved from {stored_class!r} "
            f"but the architecture instance is {type(model).__name__!r}")
    model.load_state_dict(model_state)
    return export_artifact(model, path,
                           extra_meta={"source_checkpoint": str(checkpoint_path)},
                           quantize=quantize)


def load_artifact(path: str | Path) -> SequenceRecommender:
    """Rebuild the model frozen at ``path``, in eval mode.

    Verifies checksums, reconstructs the architecture through the class's
    ``from_export_config``, loads the weights, and **forces eval mode** —
    dropout and Gumbel noise are off no matter what mode the exporting
    process left the model in.
    """
    path = Path(path)
    if not path.exists() and normalize_checkpoint_path(path).exists():
        path = normalize_checkpoint_path(path)
    arrays, meta = read_npz_verified(path)
    if meta.get("kind") != ARTIFACT_KIND:
        raise CheckpointIntegrityError(
            f"{path}: not an inference artifact (kind={meta.get('kind')!r})")
    class_name = meta.get("model_class", "")
    builder = _BUILDERS.get(class_name)
    if builder is None:
        raise CheckpointIntegrityError(
            f"{path}: model class {class_name!r} is not registered for "
            f"serving (known: {', '.join(servable_models())})")
    weights = {key[len(_WEIGHT_PREFIX):]: value
               for key, value in arrays.items()
               if key.startswith(_WEIGHT_PREFIX)}
    constants = {key[len(_CONST_PREFIX):]: value
                 for key, value in arrays.items()
                 if key.startswith(_CONST_PREFIX)}
    if not weights:
        raise CheckpointIntegrityError(f"{path}: artifact holds no weights")
    for name in meta.get("quantized_weights", ()):
        # Transparent decode of int8-quantized matrices to float32.
        from repro.serve.quantize import dequantize

        scales = arrays.get(f"{_QUANT_PREFIX}{name}")
        if scales is None or name not in weights:
            raise CheckpointIntegrityError(
                f"{path}: quantized weight {name!r} is missing its data "
                f"or quant/ scales")
        weights[name] = dequantize(weights[name], scales, axis=0)
    model = builder.from_export_config(meta["config"], constants)
    model.load_state_dict(weights)
    model.eval()
    return model


def read_quantization(path: str | Path) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Raw quantized payloads of an artifact: ``name -> (int8, scales)``.

    Returns an empty dict for unquantized artifacts.  This is how
    :func:`~repro.serve.quantize.engine_for_artifact` reaches the int8
    item table that :func:`load_artifact` transparently dequantizes.
    """
    path = Path(path)
    if not path.exists() and normalize_checkpoint_path(path).exists():
        path = normalize_checkpoint_path(path)
    arrays, meta = read_npz_verified(path)
    if meta.get("kind") != ARTIFACT_KIND:
        raise CheckpointIntegrityError(
            f"{path}: not an inference artifact (kind={meta.get('kind')!r})")
    quantized: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name in meta.get("quantized_weights", ()):
        q = arrays.get(f"{_WEIGHT_PREFIX}{name}")
        scales = arrays.get(f"{_QUANT_PREFIX}{name}")
        if q is None or scales is None:
            raise CheckpointIntegrityError(
                f"{path}: quantized weight {name!r} is missing its data "
                f"or quant/ scales")
        quantized[name] = (q, scales)
    return quantized
