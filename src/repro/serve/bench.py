"""Serving benchmark: single-request latency + a threaded load test.

Measures the serving stack end to end on an ISRec-sized workload and
writes ``BENCH_serve.json`` at the repository root (``make bench-serve``):

- ``single_request`` — one user's top-K request timed three ways:
  ``train_forward`` (the naive baseline: score through the training path
  with gradients enabled, building a full autograd tape),
  ``serve_cold`` (engine request whose cached encoder state was just
  invalidated — one :func:`~repro.tensor.inference_mode` forward), and
  ``serve_warm`` (cache hit: a GEMV over the item table plus an exact
  partial sort).  The headline ``speedup`` is warm-vs-training-path; the
  acceptance floor is 2x.
- ``load`` — ``clients`` threads hammer a :class:`~repro.serve.MicroBatcher`
  with a mixed read/write request stream while telemetry is on; reports
  p50/p99 request latency, throughput, cache hit rate, and batch fill.
- ``artifact`` — size of the frozen inference artifact on disk.

Run it directly::

    make bench-serve                 # or:
    PYTHONPATH=src python -m repro.serve.bench --out BENCH_serve.json
"""

from __future__ import annotations

import argparse
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.config import ISRecConfig
from repro.core.isrec import ISRec
from repro.data.batching import pad_left
from repro.serve.artifact import export_artifact, load_artifact
from repro.serve.batcher import MicroBatcher
from repro.serve.engine import RecommendationEngine
from repro.tensor.tensor import graph_nodes
from repro.utils.bench import environment_info, measure, write_bench
from repro.utils.seeding import temp_seed

SCHEMA = "bench_serve/v1"

#: ML-1M-scale serving workload (matches the kernel-bench default shapes).
DEFAULT_SHAPES = dict(vocab=3416, dim=64, max_len=50, num_concepts=48,
                      num_users=512, history_len=30, top_k=10,
                      clients=8, requests_per_client=100, write_fraction=0.1)
#: Miniature preset for CI smoke runs.
SMOKE_SHAPES = dict(vocab=200, dim=32, max_len=16, num_concepts=12,
                    num_users=32, history_len=10, top_k=10,
                    clients=4, requests_per_client=16, write_fraction=0.1)

PRESETS = {"default": DEFAULT_SHAPES, "smoke": SMOKE_SHAPES}


# ----------------------------------------------------------------------
# Workload construction
# ----------------------------------------------------------------------
def build_model(shapes: dict, seed: int = 0) -> ISRec:
    """ISRec sized for ``shapes`` with random concept structure."""
    rng = np.random.default_rng(seed)
    vocab, concepts = shapes["vocab"], shapes["num_concepts"]
    item_concepts = (rng.random((vocab + 1, concepts)) < 0.1).astype(np.float32)
    item_concepts[0] = 0.0
    item_concepts[item_concepts.sum(axis=1) == 0, rng.integers(0, concepts)] = 1.0
    adjacency = (rng.random((concepts, concepts)) < 0.2).astype(np.float32)
    np.fill_diagonal(adjacency, 1.0)
    config = ISRecConfig(dim=shapes["dim"])
    with temp_seed(seed):
        return ISRec(vocab, item_concepts, adjacency,
                     max_len=shapes["max_len"], config=config)


def seed_histories(engine: RecommendationEngine, shapes: dict,
                   seed: int = 1) -> np.random.Generator:
    """Give every user a plausible random history; returns the RNG used."""
    rng = np.random.default_rng(seed)
    for user in range(shapes["num_users"]):
        length = int(rng.integers(2, shapes["history_len"] + 1))
        engine.set_history(user, rng.integers(1, shapes["vocab"] + 1,
                                              size=length))
    return rng


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def bench_single_request(model: ISRec, engine: RecommendationEngine,
                         shapes: dict, repeats: int = 5,
                         warmup: int = 2) -> dict:
    """Time one top-K request: training path vs. cold vs. warm serving."""
    rng = np.random.default_rng(7)
    user, top_k, vocab = 0, shapes["top_k"], shapes["vocab"]
    history = np.asarray(engine.history(user), dtype=np.int64)
    inputs = pad_left([history], model.max_len)

    model.train()

    def train_forward() -> np.ndarray:
        # The naive baseline: push the request through the training stack —
        # gradients enabled, dropout active, a full tape built and dropped.
        states = model.sequence_output(inputs)
        logits = model.all_item_logits(states[:, -1, :])
        row = logits.data[0]
        return np.argpartition(row, -top_k)[-top_k:]

    train_result = measure(train_forward, repeats=repeats, warmup=warmup)
    model.eval()

    def serve_cold() -> list:
        engine.observe(user, int(rng.integers(1, vocab + 1)))
        return engine.recommend(user, k=top_k)

    cold_result = measure(serve_cold, repeats=repeats, warmup=warmup)

    engine.recommend(user, k=top_k)  # prime the cache

    def serve_warm() -> list:
        return engine.recommend(user, k=top_k)

    warm_result = measure(serve_warm, repeats=repeats, warmup=warmup)

    nodes_before = graph_nodes()
    serve_cold()
    serve_warm()
    nodes_delta = graph_nodes() - nodes_before

    warm_speedup = train_result["wall_time_s"] / max(warm_result["wall_time_s"], 1e-12)
    cold_speedup = train_result["wall_time_s"] / max(cold_result["wall_time_s"], 1e-12)
    return {
        "train_forward": train_result,
        "serve_cold": cold_result,
        "serve_warm": warm_result,
        "speedup_cold": cold_speedup,
        "speedup_warm": warm_speedup,
        "speedup": warm_speedup,
        "graph_nodes_per_request": int(nodes_delta),
    }


def bench_load(engine: RecommendationEngine, shapes: dict) -> dict:
    """Threaded load test through the micro-batcher, telemetry on."""
    registry = obs.MetricsRegistry()
    previous_registry = obs.set_registry(registry)
    previous_telemetry = obs.set_telemetry(True)
    clients = shapes["clients"]
    per_client = shapes["requests_per_client"]
    errors: list[BaseException] = []
    try:
        with MicroBatcher(engine, max_batch_size=max(clients, 2),
                          max_wait_s=0.002) as batcher:
            barrier = threading.Barrier(clients)

            def client(index: int) -> None:
                rng = np.random.default_rng(100 + index)
                try:
                    barrier.wait()
                    for _ in range(per_client):
                        user = int(rng.integers(0, shapes["num_users"]))
                        if rng.random() < shapes["write_fraction"]:
                            engine.observe(
                                user, int(rng.integers(1, shapes["vocab"] + 1)))
                        batcher.recommend(user, k=shapes["top_k"])
                except BaseException as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=client, args=(index,))
                       for index in range(clients)]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            batch_stats = batcher.stats()
    finally:
        obs.set_telemetry(previous_telemetry)
        obs.set_registry(previous_registry)
    if errors:
        raise errors[0]
    total = clients * per_client
    latency = registry.histogram("serve.request_latency_s")
    hits = registry.counter("serve.cache.hits").value
    misses = registry.counter("serve.cache.misses").value
    fill = registry.histogram("serve.batch_fill")
    return {
        "clients": clients,
        "requests": total,
        "seconds": elapsed,
        "throughput_rps": total / elapsed if elapsed > 0 else None,
        "latency_p50_s": latency.quantile(0.5),
        "latency_p99_s": latency.quantile(0.99),
        "latency_mean_s": latency.mean,
        "cache_hit_rate": hits / (hits + misses) if (hits + misses) else None,
        "batches": batch_stats["batches"],
        "mean_batch_size": batch_stats["mean_batch_size"],
        "mean_batch_fill": fill.mean,
    }


# ----------------------------------------------------------------------
# Top-level runner / CLI
# ----------------------------------------------------------------------
def run_serve_bench(preset: str = "default", repeats: int = 5,
                    warmup: int = 2, shapes: dict | None = None) -> dict:
    """Run every section and return the full results document."""
    shapes = dict(shapes or PRESETS[preset])
    model = build_model(shapes)
    with tempfile.TemporaryDirectory() as tmp:
        artifact_path = export_artifact(model, Path(tmp) / "model.npz")
        artifact_bytes = artifact_path.stat().st_size
        served = load_artifact(artifact_path)
    engine = RecommendationEngine(served, cache_size=shapes["num_users"])
    seed_histories(engine, shapes)
    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "preset": preset,
        "shapes": shapes,
        "repeats": repeats,
        "environment": environment_info(),
        "model": {"class": "ISRec", "num_parameters": sum(
            int(np.asarray(value).size)
            for value in served.state_dict().values())},
        "artifact": {"bytes": int(artifact_bytes)},
        "single_request": bench_single_request(model, engine, shapes,
                                               repeats, warmup),
        "load": bench_load(engine, shapes),
    }


def format_summary(results: dict) -> str:
    """Human-readable summary of a serve-bench results document."""
    single, load = results["single_request"], results["load"]
    as_ms = lambda value: "n/a" if value is None else f"{value * 1e3:.3f} ms"
    return "\n".join([
        f"serve bench  preset={results['preset']}  "
        f"artifact={results['artifact']['bytes'] / 1024:.0f} KiB",
        f"  train-path forward {as_ms(single['train_forward']['wall_time_s'])}"
        f"   serve cold {as_ms(single['serve_cold']['wall_time_s'])}"
        f" ({single['speedup_cold']:.1f}x)"
        f"   serve warm {as_ms(single['serve_warm']['wall_time_s'])}"
        f" ({single['speedup_warm']:.1f}x)",
        f"  graph nodes / request: {single['graph_nodes_per_request']}",
        f"  load: {load['requests']} requests / {load['clients']} clients"
        f"  {load['throughput_rps']:.0f} rps"
        f"   p50 {as_ms(load['latency_p50_s'])}  p99 {as_ms(load['latency_p99_s'])}"
        f"   cache hit rate {load['cache_hit_rate']:.2f}"
        f"   mean batch {load['mean_batch_size']:.1f}",
    ])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--preset", default="default", choices=sorted(PRESETS),
                        help="shape preset (default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per measurement (best-of)")
    args = parser.parse_args(argv)

    results = run_serve_bench(preset=args.preset, repeats=args.repeats)
    write_bench(results, args.out)
    print(format_summary(results))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
