"""Supervised, sharded, multi-process serving runtime.

:class:`ServingCluster` wraps the single-process
:class:`~repro.serve.engine.RecommendationEngine` in the robustness
skeleton a production serving tier needs (``docs/resilience.md``):

- **Sharding.**  ``world`` forked worker processes, each owning the users
  with ``user % world == shard`` and running its own engine over the same
  checksummed ``inference_artifact``.  The parent keeps the authoritative
  histories (in the :class:`~repro.serve.router.Router`), so a worker is
  disposable state: kill it and its replacement is re-seeded.
- **Supervision.**  A :class:`~repro.serve.supervisor.Supervisor` thread
  health-checks every worker (process liveness, dispatcher-observed pipe
  failures and liveness budgets, heartbeat pings over the request pipe)
  and restarts crashed or hung workers with rate-limited backoff.
- **Deadlines and retries.**  Every request carries a deadline budget; a
  request in flight on a dying worker is retried on the restarted worker
  under jittered exponential backoff, bounded by ``max_retries`` and the
  remaining budget, after which it resolves to a typed error or a
  degraded fallback — never a hang, never a silent drop.
- **Admission control and degradation.**  Bounded per-shard queues shed
  excess load with :class:`~repro.serve.router.Overloaded`; a shard that
  is down past its budget — or the whole cluster in brownout — answers
  from the router-resident popularity model with ``degraded=True``.
- **Hot-swap with rollback.**  :meth:`ServingCluster.swap` validates a
  new artifact on one canary worker (checksum verification + golden
  -request probe) before rolling it across the remaining workers one at a
  time; any failure rolls already-swapped workers back to the previous
  artifact and raises :class:`~repro.serve.router.SwapFailed`.  Requests
  keep flowing during the roll (each worker is briefly busy loading; its
  queue absorbs the blip).

Fault injection for the chaos suite enters through
``fault_plans={shard: ServeFaultPlan(...)}``
(:class:`repro.utils.faults.ServeFaultPlan`); the worker wraps its engine
in a :class:`repro.utils.faults.FaultyServeEngine`.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.models.pop import PopRec
from repro.online.events import EventLog
from repro.serve.artifact import ARTIFACT_KIND
from repro.serve.quantize import engine_for_artifact
from repro.serve.router import (
    DeadlineExceeded,
    Router,
    ServeError,
    ServeResponse,
    ShardRequest,
    ShardUnavailable,
    SwapFailed,
)
from repro.serve.supervisor import Supervisor, WorkerHandle
from repro.utils.serialization import (
    CheckpointIntegrityError,
    normalize_checkpoint_path,
    read_npz_verified,
)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _build_engine(artifact_path: str, cache_size: int, fault_plan):
    """Build the (optionally faulty) worker engine for an artifact.

    Routed through :func:`~repro.serve.quantize.engine_for_artifact`, so a
    worker handed an int8-quantized artifact — at boot or mid-roll via
    :meth:`ServingCluster.swap` — transparently serves it through a
    :class:`~repro.serve.quantize.QuantizedEngine`.
    """
    engine = engine_for_artifact(artifact_path, cache_size=cache_size)
    if fault_plan is not None:
        from repro.utils.faults import FaultyServeEngine

        engine = FaultyServeEngine(engine, fault_plan)
    return engine


def _probe_engine(engine, golden_users, k: int) -> None:
    """Golden-request probe: every probe user must get a full finite top-K."""
    expected = min(int(k), int(engine.model.num_items))
    for user in golden_users:
        items = engine.recommend(int(user), k=k, filter_seen=False)
        if len(items) != expected:
            raise ValueError(
                f"golden probe for user {user} returned {len(items)} items, "
                f"expected {expected}")
        if not all(np.isfinite(score) for _item, score in items):
            raise ValueError(f"golden probe for user {user} returned "
                             f"non-finite scores")


def _swap_engine(old_engine, artifact_path: str, cache_size: int, fault_plan,
                 golden_users, k: int, probe: bool):
    """Build, state-migrate, and validate a replacement engine."""
    new_engine = _build_engine(artifact_path, cache_size, fault_plan)
    if int(new_engine.model.num_items) != int(old_engine.model.num_items):
        raise ValueError(
            f"artifact vocabulary mismatch: serving {old_engine.model.num_items} "
            f"items, artifact has {new_engine.model.num_items}")
    for user in old_engine.known_users():
        new_engine.set_history(user, old_engine.history(user))
    if probe:
        _probe_engine(new_engine, golden_users, k)
    return new_engine


def _worker_main(shard: int, conn, artifact_path: str, cache_size: int,
                 fault_plan) -> None:
    """Entry point of one forked shard worker.

    Replies only to messages that expect one (``req``, ``ping``, ``swap``);
    history syncs are fire-and-forget because the parent's store is
    authoritative and restarts re-seed from it.
    """
    # Forked children must not share the parent's telemetry sinks.
    obs.set_registry(obs.MetricsRegistry())
    obs.set_telemetry(False)
    try:
        engine = _build_engine(artifact_path, cache_size, fault_plan)
    except BaseException as exc:
        try:
            conn.send(("init_failed", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("up", shard))
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "stop":
                break
            if command == "req":
                _, req_id, user, k, filter_seen = message
                try:
                    items = engine.recommend(user, k=k, filter_seen=filter_seen)
                    conn.send(("ok", req_id, items))
                except Exception as exc:
                    conn.send(("err", req_id, type(exc).__name__, str(exc)))
            elif command == "history":
                _, user, items = message
                engine.set_history(user, items)
            elif command == "seed":
                for user, items in message[1]:
                    engine.set_history(user, items)
            elif command == "ping":
                conn.send(("pong", message[1]))
            elif command == "swap":
                _, req_id, path, golden_users, k, probe = message
                try:
                    engine = _swap_engine(engine, path, cache_size, fault_plan,
                                          golden_users, k, probe)
                except Exception as exc:
                    conn.send(("swap_failed", req_id,
                               f"{type(exc).__name__}: {exc}"))
                else:
                    conn.send(("swapped", req_id))
            else:
                raise RuntimeError(f"unknown worker command {command!r}")
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent died or pipe closed; exit quietly
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass
class ClusterConfig:
    """Tuning knobs of :class:`ServingCluster` (all durations in seconds).

    ``down_gate_s`` bounds how long a dispatched request waits for a
    not-ready worker before degrading — a restart faster than the gate is
    invisible to callers; a slower one costs them a degraded answer
    instead of a blown deadline.  ``degraded_fallback=False`` turns the
    degradation ladder off: exhausted requests raise
    :class:`~repro.serve.router.ShardUnavailable` instead.
    """

    world: int = 2
    cache_size: int = 1024
    queue_limit: int = 64
    default_deadline_s: float = 2.0
    max_retries: int = 2
    backoff_base_s: float = 0.02
    backoff_cap_s: float = 0.25
    liveness_timeout_s: float = 5.0
    down_gate_s: float = 0.5
    heartbeat_interval_s: float = 0.25
    check_interval_s: float = 0.05
    restart_backoff_s: float = 0.25
    startup_timeout_s: float = 60.0
    swap_timeout_s: float = 120.0
    golden_probe_k: int = 10
    seed_chunk: int = 512
    degraded_fallback: bool = True
    event_capacity: int = 65536
    seed: int = 0

    def __post_init__(self):
        if self.world < 1:
            raise ValueError(f"world must be >= 1, got {self.world}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.event_capacity < 1:
            raise ValueError(
                f"event_capacity must be >= 1, got {self.event_capacity}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        for name in ("default_deadline_s", "backoff_base_s", "backoff_cap_s",
                     "liveness_timeout_s", "down_gate_s",
                     "heartbeat_interval_s", "check_interval_s",
                     "restart_backoff_s", "startup_timeout_s",
                     "swap_timeout_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")


# ----------------------------------------------------------------------
# Cluster
# ----------------------------------------------------------------------
class ServingCluster:
    """Supervised multi-process serving over one inference artifact.

    Parameters
    ----------
    artifact_path:
        A checksummed ``inference_artifact`` (checksum-verified up front,
        and again independently by every worker's ``load_artifact``).
    config:
        A :class:`ClusterConfig`; defaults are production-shaped.
    fallback:
        A :class:`~repro.models.pop.PopRec` to answer degraded requests
        (e.g. ``PopRec.load(path)`` of a trained export).  Defaults to an
        empty popularity model that learns from the observation stream.
    fault_plans:
        Optional ``{shard: ServeFaultPlan}`` chaos-test hook; production
        callers leave it ``None``.
    """

    def __init__(self, artifact_path, config: ClusterConfig | None = None,
                 fallback: PopRec | None = None,
                 fault_plans: dict | None = None):
        self.config = config or ClusterConfig()
        path = Path(artifact_path)
        if not path.exists() and normalize_checkpoint_path(path).exists():
            path = normalize_checkpoint_path(path)
        _arrays, meta = read_npz_verified(path)  # fail fast on corruption
        if meta.get("kind") != ARTIFACT_KIND:
            raise CheckpointIntegrityError(
                f"{path}: not an inference artifact "
                f"(kind={meta.get('kind')!r})")
        self.num_items = int(meta["num_items"])
        self.model_name = str(meta.get("model_name", meta.get("model_class")))
        self._artifact_path = path
        self._fault_plans = dict(fault_plans or {})
        if fallback is not None and fallback.num_items != self.num_items:
            raise ValueError(
                f"fallback covers {fallback.num_items} items but the "
                f"artifact serves {self.num_items}")
        self.events = EventLog(self.config.event_capacity)
        self.router = Router(self.config.world, self.config.queue_limit,
                             self.num_items, fallback=fallback,
                             event_log=self.events)
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "the serving cluster requires the 'fork' start method "
                "(POSIX only)") from error
        self._handles = [WorkerHandle(shard)
                         for shard in range(self.config.world)]
        self._req_ids = itertools.count(1)
        self._closed = False
        self._close_lock = threading.Lock()
        self._swap_lock = threading.Lock()
        self.swaps = 0
        for shard in range(self.config.world):
            if not self._respawn(shard):
                self._teardown()
                raise ServeError(
                    f"worker for shard {shard} failed to start")
        self._dispatchers = []
        for shard in range(self.config.world):
            thread = threading.Thread(
                target=self._dispatch_loop, args=(shard,), daemon=True,
                name=f"repro-serve-dispatch-{shard}")
            thread.start()
            self._dispatchers.append(thread)
        self._supervisor = Supervisor(
            self._handles, restart=self._respawn, ping=self._enqueue_ping,
            check_interval_s=self.config.check_interval_s,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
            liveness_timeout_s=self.config.liveness_timeout_s,
            restart_backoff_s=self.config.restart_backoff_s)
        self._supervisor.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def recommend(self, user: int, k: int = 10, filter_seen: bool = True,
                  deadline_s: float | None = None) -> ServeResponse:
        """Top-``k`` for ``user`` within ``deadline_s``.

        Returns a :class:`~repro.serve.router.ServeResponse` (model answer
        or ``degraded=True`` popularity fallback) or raises a typed
        :class:`~repro.serve.router.ServeError` — the call returns by the
        deadline, always.
        """
        self._ensure_open()
        deadline_s = (self.config.default_deadline_s
                      if deadline_s is None else float(deadline_s))
        if deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        with obs.timer("serve.cluster.request_latency_s"):
            if self.router.brownout:
                return self.router.degraded_response(user, k, filter_seen)
            request = ShardRequest(
                "recommend", user=int(user), k=int(k),
                filter_seen=bool(filter_seen),
                deadline=time.monotonic() + deadline_s)
            self.router.admit(request)  # may shed with Overloaded
            if not request.done.wait(max(request.remaining(), 0.0)):
                request.cancelled = True
                self.router.stats.bump("deadline_exceeded")
                if obs.telemetry_enabled():
                    obs.counter("serve.cluster.deadline_exceeded").inc()
                raise DeadlineExceeded(int(user), deadline_s, request.attempts)
            if request.error is not None:
                raise request.error
            return request.result

    def observe(self, user: int, item: int) -> None:
        """Record one interaction (authoritative store + shard replica).

        Also appends the interaction to :attr:`events`, the ring-buffered
        :class:`~repro.online.EventLog` the online-learning loop drains.
        """
        self._ensure_open()
        history = self.router.observe(user, item)
        self._sync_history(int(user), history)

    def set_history(self, user: int, items) -> None:
        """Replace a user's history (authoritative store + shard replica)."""
        self._ensure_open()
        history = self.router.set_history(user, items)
        self._sync_history(int(user), history)

    def set_brownout(self, enabled: bool) -> None:
        """Toggle brownout: every request answers degraded, instantly."""
        self.router.brownout = bool(enabled)
        if obs.telemetry_enabled():
            obs.emit("serve.cluster.brownout", enabled=bool(enabled))

    def swap(self, artifact_path) -> dict:
        """Roll a new artifact across the cluster, canary-first.

        Shard 0 validates the artifact (the worker's ``load_artifact``
        verifies checksums; a golden-request probe must return full,
        finite top-Ks for sampled users).  Only then do the remaining
        workers swap, one at a time.  Any failure rolls every
        already-swapped worker back to the previous artifact and raises
        :class:`~repro.serve.router.SwapFailed`; requests keep being
        served throughout.  Returns a summary dict on success.
        """
        self._ensure_open()
        path = Path(artifact_path)
        if not path.exists() and normalize_checkpoint_path(path).exists():
            path = normalize_checkpoint_path(path)
        with self._swap_lock:
            previous = self._artifact_path
            started = time.perf_counter()
            if obs.telemetry_enabled():
                obs.emit("serve.cluster.swap", phase="start", path=str(path))
            swapped: list[int] = []
            for shard in range(self.config.world):
                failure = self._swap_one(shard, path, probe=(shard == 0))
                if failure is None:
                    swapped.append(shard)
                    # Re-seed from the *authoritative* store: the in-worker
                    # swap migrates histories from the old engine replica,
                    # which can lag behind observes whose syncs were dropped
                    # (e.g. while the worker was briefly down).  The
                    # idempotent seed makes the new engine exact.
                    self._reseed_shard(shard)
                    continue
                for done_shard in swapped:  # roll back, newest first
                    self._swap_one(done_shard, previous, probe=False)
                    self._reseed_shard(done_shard)
                if obs.telemetry_enabled():
                    obs.emit("serve.cluster.swap", phase="rolled_back",
                             path=str(path), failed_shard=shard,
                             reason=failure)
                raise SwapFailed(path, f"shard {shard}: {failure}")
            self._artifact_path = path
            self.swaps += 1
            duration = time.perf_counter() - started
            if obs.telemetry_enabled():
                obs.emit("serve.cluster.swap", phase="done", path=str(path),
                         duration_s=round(duration, 6))
                obs.counter("serve.cluster.swaps").inc()
            return {"path": str(path), "previous": str(previous),
                    "workers": self.config.world,
                    "duration_s": duration}

    @property
    def artifact_path(self) -> Path:
        """The artifact currently committed across the cluster."""
        return self._artifact_path

    def worker_pids(self) -> dict[int, int | None]:
        """Current PID per shard (chaos tests SIGKILL through this)."""
        return {handle.shard: handle.snapshot()["pid"]
                for handle in self._handles}

    def stats(self) -> dict:
        """One JSON-friendly snapshot of cluster health and counters."""
        return {
            "artifact": str(self._artifact_path),
            "model": self.model_name,
            "world": self.config.world,
            "brownout": self.router.brownout,
            "swaps": self.swaps,
            "router": self.router.stats.snapshot(),
            "events": self.events.stats(),
            "queue_depths": [queue.depth() for queue in self.router.queues],
            "workers": [handle.snapshot() for handle in self._handles],
        }

    def close(self) -> None:
        """Stop supervision, dispatchers, and workers (idempotent)."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._supervisor.stop()
        for thread in self._dispatchers:
            thread.join(timeout=self.config.liveness_timeout_s + 1.0)
        closed_error = ServeError("ServingCluster closed")
        for queue in self.router.queues:
            queue.drain(closed_error)
        self._teardown()

    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _respawn(self, shard: int) -> bool:
        """(Re)start the worker for ``shard``; re-seed its history replica.

        Called at construction and from the supervisor thread.  Returns
        whether the worker came up; failures leave the handle not-ready
        for the supervisor to retry with backoff.
        """
        handle = self._handles[shard]
        handle.kill()
        if self._closed:
            return False
        process = None
        # Open the dirty-user window *before* snapshotting the shard's
        # histories: an observe() racing the re-seed (mutating the
        # authoritative store after the snapshot but before the new worker
        # is installed) would otherwise be dropped by the dispatcher — the
        # handle isn't ready yet — and silently missing from the replica.
        # Such users are recorded and re-synced after install instead.
        self.router.begin_reseed(shard)
        try:
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(
                target=_worker_main,
                args=(shard, child_conn, str(self._artifact_path),
                      self.config.cache_size, self._fault_plans.get(shard)),
                daemon=True, name=f"repro-serve-worker-{shard}")
            process.start()
            child_conn.close()
            if not parent_conn.poll(self.config.startup_timeout_s):
                raise ServeError(f"shard {shard} worker did not report up "
                                 f"within {self.config.startup_timeout_s}s")
            reply = parent_conn.recv()
            if reply[0] != "up":
                raise ServeError(f"shard {shard} worker failed to start: "
                                 f"{reply[1] if len(reply) > 1 else reply!r}")
            users = self.router.users_of_shard(shard)
            chunk = self.config.seed_chunk
            for start in range(0, len(users), chunk):
                parent_conn.send(("seed", users[start:start + chunk]))
        except (ServeError, OSError, EOFError):
            self.router.end_reseed(shard)  # discard the window
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            return False
        handle.install(process, parent_conn)
        # Flush users mutated during the re-seed window through the normal
        # dispatcher path (full-history syncs are idempotent; the queue is
        # FIFO, so the replica converges to the newest state).
        for user, history in self.router.end_reseed(shard):
            self._sync_history(user, history)
        if obs.telemetry_enabled():
            obs.gauge("serve.cluster.workers_ready").set(
                sum(h.ready.is_set() for h in self._handles))
        return True

    def _teardown(self) -> None:
        """Stop every worker process and close pipes."""
        for handle in self._handles:
            with handle.lock:
                conn = handle.conn
            if conn is not None:
                try:
                    conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
            handle.kill()

    # ------------------------------------------------------------------
    # Dispatch (one thread per shard; sole owner of the shard's pipe)
    # ------------------------------------------------------------------
    def _dispatch_loop(self, shard: int) -> None:
        queue = self.router.queues[shard]
        handle = self._handles[shard]
        rng = np.random.default_rng(
            np.random.SeedSequence((self.config.seed, shard)).generate_state(1))
        while not self._closed:
            request = queue.get(timeout=0.05)
            if request is None:
                continue
            if request.kind == "recommend":
                if request.cancelled or request.done.is_set():
                    continue
                if request.remaining() <= 0:
                    request.fail(DeadlineExceeded(
                        request.user, request.deadline - request.enqueued_at,
                        request.attempts))
                    continue
            self._dispatch(shard, queue, handle, request, rng)

    def _wait_ready(self, handle: WorkerHandle, budget: float) -> bool:
        """Wait (closable) for a live worker, at most ``budget`` seconds."""
        deadline = time.monotonic() + budget
        while not self._closed:
            step = min(0.05, deadline - time.monotonic())
            if step <= 0:
                return False
            if handle.ready.wait(step):
                return True
        return False

    def _await_reply(self, conn, timeout: float):
        """Next message on ``conn`` within ``timeout``, else ``None``."""
        deadline = time.monotonic() + timeout
        while not self._closed:
            step = min(0.05, deadline - time.monotonic())
            if step <= 0:
                return None
            try:
                if conn.poll(step):
                    return conn.recv()
            except (EOFError, OSError):
                return None
        return None

    def _dispatch(self, shard: int, queue, handle: WorkerHandle,
                  request: ShardRequest, rng) -> None:
        config = self.config
        if request.kind == "recommend":
            gate = min(request.remaining(), config.down_gate_s)
        elif request.kind == "swap":
            gate = config.down_gate_s + config.restart_backoff_s
        else:
            gate = 0.0
        if not (handle.ready.is_set() or
                (gate > 0 and self._wait_ready(handle, gate))):
            if request.kind == "recommend":
                self._give_up(request, shard, "shard down")
            elif request.kind == "swap":
                request.fail(SwapFailed(request.payload[0],
                                        f"shard {shard} down"))
            return  # ping/history/seed against a down worker: drop (restart re-seeds)
        with handle.lock:
            conn, generation = handle.conn, handle.generation
        try:
            if request.kind == "recommend":
                request.attempts += 1
                req_id = next(self._req_ids)
                conn.send(("req", req_id, request.user, request.k,
                           request.filter_seen))
                reply = self._await_reply(conn, config.liveness_timeout_s)
                self._finish_recommend(shard, queue, handle, generation,
                                       request, req_id, reply, rng)
            elif request.kind == "history":
                conn.send(("history", request.user, request.payload))
            elif request.kind == "seed":
                conn.send(("seed", request.payload))
            elif request.kind == "ping":
                conn.send(("ping", request.payload))
                reply = self._await_reply(conn, config.liveness_timeout_s)
                if reply is None or reply[0] != "pong":
                    self._suspect_if_current(handle, generation,
                                             "heartbeat unanswered")
                else:
                    handle.note_reply()
            elif request.kind == "swap":
                path, golden_users, k, probe = request.payload
                req_id = next(self._req_ids)
                conn.send(("swap", req_id, path, golden_users, k, probe))
                reply = self._await_reply(conn, config.swap_timeout_s)
                if reply is None:
                    self._suspect_if_current(handle, generation,
                                             "no reply to swap")
                    request.fail(SwapFailed(path, f"shard {shard} died "
                                            f"during swap"))
                elif reply[0] == "swapped" and reply[1] == req_id:
                    handle.note_reply()
                    request.resolve(True)
                elif reply[0] == "swap_failed" and reply[1] == req_id:
                    handle.note_reply()
                    request.fail(SwapFailed(path, reply[2]))
                else:
                    self._suspect_if_current(
                        handle, generation,
                        f"protocol desync on swap: {reply[0]!r}")
                    request.fail(SwapFailed(path, "protocol desync"))
        except (OSError, BrokenPipeError, EOFError):
            self._suspect_if_current(handle, generation, "pipe broken mid-send")
            if request.kind == "recommend":
                self._retry_or_give_up(shard, queue, request, rng,
                                       "pipe broken")
            elif request.kind == "swap":
                request.fail(SwapFailed(request.payload[0],
                                        f"shard {shard} pipe broke"))

    @staticmethod
    def _suspect_if_current(handle: WorkerHandle, generation: int,
                            reason: str) -> None:
        """Mark suspect only if the worker wasn't already replaced.

        A dispatcher can observe a broken pipe *after* the supervisor has
        already installed a fresh generation; blaming the new worker for
        the old one's death would churn restarts forever.
        """
        with handle.lock:
            if handle.generation == generation:
                handle.mark_suspect(reason)

    def _finish_recommend(self, shard: int, queue, handle: WorkerHandle,
                          generation: int, request: ShardRequest,
                          req_id: int, reply, rng) -> None:
        if reply is None:
            # Dead (no reply before the pipe broke) or hung past the
            # liveness budget: either way this generation is done.
            self._suspect_if_current(handle, generation,
                                     "no reply within liveness budget")
            self._retry_or_give_up(shard, queue, request, rng,
                                   "worker unresponsive")
            return
        kind = reply[0]
        if kind == "ok" and reply[1] == req_id:
            handle.note_reply()
            if not (request.cancelled or request.done.is_set()):
                request.resolve(ServeResponse(
                    items=tuple(reply[2]), degraded=False, shard=shard,
                    attempts=request.attempts))
            return
        if kind == "err" and reply[1] == req_id:
            handle.note_reply()
            if obs.telemetry_enabled():
                obs.counter("serve.cluster.forward_errors").inc()
            self._retry_or_give_up(shard, queue, request, rng,
                                   f"forward failed: {reply[2]}: {reply[3]}")
            return
        # Anything else is a protocol desync (stale generation replies are
        # impossible — the pipe dies with its process — so treat as fatal).
        self._suspect_if_current(handle, generation,
                                 f"protocol desync: {kind!r}")
        self._retry_or_give_up(shard, queue, request, rng, "protocol desync")

    def _retry_or_give_up(self, shard: int, queue, request: ShardRequest,
                          rng, reason: str) -> None:
        if request.cancelled or request.done.is_set():
            return
        now = time.monotonic()
        if request.attempts <= self.config.max_retries:
            exponent = min(max(request.attempts - 1, 0), 16)
            backoff = min(self.config.backoff_base_s * (2 ** exponent),
                          self.config.backoff_cap_s)
            backoff *= 0.5 + 0.5 * float(rng.random())  # full jitter, >= 50%
            if now + backoff < request.deadline:
                request.not_before = now + backoff
                self.router.stats.bump("retries")
                if obs.telemetry_enabled():
                    obs.counter("serve.cluster.retries").inc()
                queue.requeue(request)
                return
        self._give_up(request, shard, reason)

    def _give_up(self, request: ShardRequest, shard: int, reason: str) -> None:
        """Resolve a request the model path cannot serve anymore."""
        if request.cancelled or request.done.is_set():
            return
        if self._closed:
            request.fail(ServeError("ServingCluster closed"))
        elif self.config.degraded_fallback:
            request.resolve(self.router.degraded_response(
                request.user, request.k, request.filter_seen,
                attempts=request.attempts))
        else:
            request.fail(ShardUnavailable(shard, reason))

    # ------------------------------------------------------------------
    # Control-plane helpers
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise ServeError("ServingCluster is closed")

    def _sync_history(self, user: int, history: list[int]) -> None:
        """Queue an idempotent full-history sync to the owning shard."""
        shard = self.router.shard_of(user)
        request = ShardRequest("history", user=user, payload=history)
        self.router.queues[shard].put(request, enforce_limit=False)

    def _reseed_shard(self, shard: int) -> None:
        """Queue a full authoritative-history re-seed of ``shard``.

        Dispatched in ``seed_chunk`` batches through the shard's normal
        FIFO queue (so it serialises correctly against queued observes and
        requests) and applied via the worker's idempotent ``seed``
        handler.  Used after an artifact swap, where the in-worker state
        migration copies from the old engine *replica* rather than the
        parent's authoritative store.
        """
        users = self.router.users_of_shard(shard)
        chunk = self.config.seed_chunk
        for start in range(0, len(users), chunk):
            request = ShardRequest("seed", payload=users[start:start + chunk])
            self.router.queues[shard].put(request, enforce_limit=False)

    def _enqueue_ping(self, shard: int) -> None:
        request = ShardRequest("ping", payload=next(self._req_ids))
        self.router.queues[shard].put(request, enforce_limit=False)

    def _golden_users(self, shard: int) -> list[int]:
        """Probe users for the canary: sampled real users + one cold id."""
        users = [user for user, _history in
                 self.router.users_of_shard(shard)[:3]]
        users.append(shard)  # a cold (possibly empty-history) user
        return sorted(set(users))

    def _swap_one(self, shard: int, path: Path, probe: bool) -> str | None:
        """Swap one worker; returns ``None`` on success, else the reason."""
        request = ShardRequest(
            "swap", payload=(str(path), self._golden_users(shard),
                             self.config.golden_probe_k, probe))
        self.router.queues[shard].put(request, enforce_limit=False)
        budget = (self.config.swap_timeout_s + self.config.down_gate_s
                  + self.config.restart_backoff_s + 1.0)
        if not request.done.wait(budget):
            request.cancelled = True
            return "swap timed out"
        if request.error is not None:
            return str(request.error)
        return None
