"""Diagnostics for intent quality and ranking behaviour."""

from repro.analysis.ground_truth import RecoveryReport, true_intent_recovery
from repro.analysis.intents import (
    concept_activation_distribution,
    concept_activation_entropy,
    intent_next_item_hit_rate,
    transition_smoothness,
)
from repro.analysis.ranking import rank_distribution, rank_percentiles

__all__ = [
    "concept_activation_distribution",
    "concept_activation_entropy",
    "intent_next_item_hit_rate",
    "transition_smoothness",
    "rank_distribution",
    "rank_percentiles",
    "RecoveryReport",
    "true_intent_recovery",
]
