"""Ground-truth intent recovery — a diagnostic unique to the simulator.

Because the synthetic datasets come from a *known* latent intent process,
we can ask the question no real-data evaluation can: **does ISRec's
extracted intention vector actually recover the user's true intents?**
:func:`true_intent_recovery` aligns the model's ``m_t`` with the
simulator's recorded intent trace (handling the 5-core user filtering and
the concept-frequency filtering re-indexings) and scores the overlap
against the chance level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.isrec import ISRec
from repro.data.batching import pad_left
from repro.data.dataset import InteractionDataset
from repro.data.synthetic import IntentDrivenSimulator
from repro.tensor.tensor import no_grad


@dataclass
class RecoveryReport:
    """Outcome of a true-intent recovery evaluation."""

    mean_overlap: float
    chance_overlap: float
    steps_scored: int

    @property
    def lift(self) -> float:
        """How many times above chance the recovery is."""
        if self.chance_overlap <= 0:
            return float("inf") if self.mean_overlap > 0 else 1.0
        return self.mean_overlap / self.chance_overlap


def true_intent_recovery(model: ISRec, dataset: InteractionDataset,
                         simulator: IntentDrivenSimulator,
                         max_users: int | None = None) -> RecoveryReport:
    """Fraction of true intents present in the model's ``m_t``, vs chance.

    For each surviving user and each scored position ``t``, the true intent
    set (mapped through the concept filtering; dropped concepts are skipped)
    is compared with the model's activated intention vector.  The overlap is
    ``|true ∩ predicted| / |true|`` averaged over steps; the chance level is
    ``lambda / K`` (a random ``m_t`` with λ active concepts).

    Notes
    -----
    The recorded ground-truth trace aligns with the *raw* sequence; 5-core
    filtering removes items (and their positions) from the kept sequence,
    so positions are re-aligned by matching consumed item ids.
    """
    truth = simulator.ground_truth
    if truth is None:
        raise RuntimeError("run simulator.generate() before scoring recovery")
    if model.extractor is None:
        raise ValueError("true-intent recovery requires the intent modules")
    index_map = truth.concept_index_map

    overlaps: list[float] = []
    users = truth.kept_users if max_users is None else truth.kept_users[:max_users]
    model.eval()
    for kept_position, raw_user in enumerate(users):
        raw_trace = truth.user_intents[int(raw_user)]
        sequence = dataset.sequences[kept_position]
        window = sequence[-model.max_len:]
        inputs = pad_left([window], model.max_len)
        with no_grad():
            detail = model.forward_detailed(inputs)
        predicted = detail["intention"].data[0]  # (T, K)
        offset = model.max_len - len(window)

        # Re-align: the raw trace is indexed by the raw step; map each kept
        # item back to its raw step via the raw consumption order.
        raw_sequence_items = _raw_items_for_user(simulator, int(raw_user))
        raw_step_of_item = {item: step for step, item in enumerate(raw_sequence_items)}
        item_map_back = _original_item_ids(simulator, dataset)
        for position, item in enumerate(window):
            original_item = item_map_back[int(item)]
            raw_step = raw_step_of_item.get(original_item)
            if raw_step is None:
                continue
            true_concepts = [index_map[c] for c in raw_trace[raw_step]
                             if index_map[c] >= 0]
            if not true_concepts:
                continue
            active = predicted[offset + position] > 0.5
            hits = sum(1 for concept in true_concepts if active[concept])
            overlaps.append(hits / len(true_concepts))

    if not overlaps:
        raise RuntimeError("no step could be aligned with the ground truth")
    lam = min(model.config.num_intents, dataset.num_concepts)
    chance = lam / dataset.num_concepts
    return RecoveryReport(mean_overlap=float(np.mean(overlaps)),
                          chance_overlap=chance,
                          steps_scored=len(overlaps))


def _raw_items_for_user(simulator: IntentDrivenSimulator, raw_user: int) -> list[int]:
    """Reconstruct the raw (pre-filter) item sequence length bookkeeping.

    The simulator does not retain raw sequences, but the intent trace length
    equals the raw sequence length and item order is recoverable only from
    the raw run; to avoid re-simulation we store raw item ids on the trace
    via the simulator's replay cache.
    """
    cache = getattr(simulator, "_raw_sequences", None)
    if cache is None:
        raise RuntimeError(
            "simulator does not retain raw sequences; regenerate with a "
            "version that records them"
        )
    return [int(i) for i in cache[raw_user]]


def _original_item_ids(simulator: IntentDrivenSimulator,
                       dataset: InteractionDataset) -> np.ndarray:
    """Map dataset item ids back to raw simulator item ids."""
    item_map = getattr(simulator, "_item_map", None)
    if item_map is None:
        raise RuntimeError(
            "simulator does not retain the item map; regenerate with a "
            "version that records it"
        )
    back = np.zeros(int(item_map.max()) + 1, dtype=np.int64)
    for original, new in enumerate(item_map):
        if new > 0:
            back[new] = original
    return back
