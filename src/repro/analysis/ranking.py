"""Rank-distribution diagnostics for evaluated models."""

from __future__ import annotations

import numpy as np

from repro.data.batching import evaluation_inputs
from repro.eval.evaluator import RankingEvaluator
from repro.eval.metrics import ranks_from_scores


def rank_distribution(model, evaluator: RankingEvaluator,
                      stage: str = "test", batch_size: int = 128) -> np.ndarray:
    """Per-user rank of the ground-truth item among its candidates."""
    inputs, _targets = evaluation_inputs(evaluator.split, stage, model.max_len)
    candidates = evaluator.candidates(stage)
    users = np.arange(evaluator.split.num_users)
    scores = np.empty_like(candidates, dtype=np.float64)
    for start in range(0, len(users), batch_size):
        stop = start + batch_size
        scores[start:stop] = model.score(users[start:stop], inputs[start:stop],
                                         candidates[start:stop])
    return ranks_from_scores(scores)


def rank_percentiles(ranks: np.ndarray,
                     percentiles=(10, 25, 50, 75, 90)) -> dict[int, float]:
    """Selected percentiles of the rank distribution (lower is better)."""
    ranks = np.asarray(ranks, dtype=np.float64)
    return {p: float(np.percentile(ranks, p)) for p in percentiles}
