"""Intent-quality diagnostics.

These quantify the claims the paper makes qualitatively:

- :func:`concept_activation_entropy` — the mode-collapse diagnostic of
  §3.4.  With inner-product similarity only large-norm concepts are ever
  activated (low entropy over the activation distribution); cosine
  similarity keeps the distribution spread out.
- :func:`transition_smoothness` — §4.4: intents transit *gradually* along
  the concept graph, so consecutive intention sets overlap.
- :func:`intent_next_item_hit_rate` — explainability probe: how often the
  predicted next intents ``m_{t+1}`` include a concept of the item the user
  actually consumed next.
"""

from __future__ import annotations

import numpy as np

from repro.core.isrec import ISRec
from repro.data.batching import pad_left
from repro.data.dataset import InteractionDataset
from repro.tensor.tensor import no_grad


def _intentions_for_users(model: ISRec, dataset: InteractionDataset,
                          users: list[int]) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Per user: (sequence, m_t matrix, m_{t+1} matrix) over real positions."""
    if model.extractor is None:
        raise ValueError("intent diagnostics require a model with intent modules")
    model.eval()
    results = []
    for user in users:
        sequence = np.asarray(dataset.sequences[user])[-model.max_len:]
        inputs = pad_left([sequence], model.max_len)
        with no_grad():
            detail = model.forward_detailed(inputs)
        offset = model.max_len - len(sequence)
        current = detail["intention"].data[0, offset:]
        upcoming = detail["next_intention"].data[0, offset:]
        results.append((sequence, current, upcoming))
    return results


def concept_activation_distribution(model: ISRec, dataset: InteractionDataset,
                                    users: list[int] | None = None) -> np.ndarray:
    """Fraction of (user, step) pairs in which each concept is activated.

    Returns a ``(K,)`` probability vector (sums to 1 over concepts).
    """
    users = users if users is not None else list(range(dataset.num_users))
    counts = np.zeros(dataset.num_concepts, dtype=np.float64)
    for _seq, current, _upcoming in _intentions_for_users(model, dataset, users):
        counts += current.sum(axis=0)
    total = counts.sum()
    if total == 0:
        raise RuntimeError("no intents were activated")
    return counts / total


def concept_activation_entropy(model: ISRec, dataset: InteractionDataset,
                               users: list[int] | None = None,
                               normalized: bool = True) -> float:
    """Entropy of the concept-activation distribution (§3.4 diagnostic).

    ``normalized=True`` divides by ``log(K)`` so 1.0 means uniform usage of
    concepts and values near 0 mean mode collapse onto a few concepts.
    """
    distribution = concept_activation_distribution(model, dataset, users)
    nonzero = distribution[distribution > 0]
    entropy = float(-(nonzero * np.log(nonzero)).sum())
    if normalized:
        entropy /= np.log(dataset.num_concepts)
    return entropy


def transition_smoothness(model: ISRec, dataset: InteractionDataset,
                          users: list[int] | None = None) -> float:
    """Mean Jaccard overlap between consecutive activated-intention sets.

    High values mean intents drift gradually (the paper's Fig. 2 story);
    values near the chance level ``lambda / K`` mean the transitions are
    unstructured.
    """
    users = users if users is not None else list(range(dataset.num_users))
    overlaps: list[float] = []
    for _seq, current, _upcoming in _intentions_for_users(model, dataset, users):
        for before, after in zip(current[:-1], current[1:]):
            a = set(np.flatnonzero(before > 0.5).tolist())
            b = set(np.flatnonzero(after > 0.5).tolist())
            union = a | b
            if union:
                overlaps.append(len(a & b) / len(union))
    return float(np.mean(overlaps)) if overlaps else 0.0


def intent_next_item_hit_rate(model: ISRec, dataset: InteractionDataset,
                              users: list[int] | None = None) -> float:
    """Fraction of steps where ``m_{t+1}`` hits a concept of the next item."""
    users = users if users is not None else list(range(dataset.num_users))
    hits = 0
    total = 0
    for sequence, _current, upcoming in _intentions_for_users(model, dataset, users):
        for step in range(len(sequence) - 1):
            next_item = int(sequence[step + 1])
            item_concepts = dataset.item_concepts[next_item] > 0
            predicted = upcoming[step] > 0.5
            if (item_concepts & predicted).any():
                hits += 1
            total += 1
    return hits / max(total, 1)
