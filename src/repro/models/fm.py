"""Factorization Machine ranker (Rendle, ICDM 2010), context-aware variant.

An FM scores a feature vector ``x`` with a global bias, per-feature linear
weights, and factorized second-order interactions
``sum_{i<j} <v_i, v_j> x_i x_j``.  For next-item *ranking* the features of
one prediction are the candidate item, the user's consumed items, and the
concept annotations of those items (the context).  Terms that do not
involve the candidate are constant across candidates, so the
ranking-relevant score reduces to

``score(c | history) = w_c + <v_c,  mean_i v_i  +  V_ctx^T cbar>``

where ``cbar`` is the mean concept profile of the history and ``V_ctx``
the concept factor matrix.  That is exactly a dot product between the
candidate's ``(dim + 1)``-wide embedding ``[v_c ; w_c]`` and a history
state ``[mean_i v_i + V_ctx^T cbar ; 1]`` — so the model slots into the
shared :class:`~repro.models.base.SequenceRecommender` protocol (full-
vocabulary cross-entropy training on the fused or composed kernel path,
dot-product serving) with no special cases.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.models.base import SequenceRecommender
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.tensor.tensor import Tensor, concatenate


def _running_mean_weights(inputs: np.ndarray) -> np.ndarray:
    """Left-padding-aware running-mean matrix (see :mod:`repro.models.ktup`)."""
    real = (inputs > 0).astype(np.float32)
    counts = np.cumsum(real, axis=1)
    width = inputs.shape[1]
    causal = np.tril(np.ones((width, width), dtype=np.float32))
    weights = causal[None] * real[:, None, :]
    return weights / np.maximum(counts, 1.0)[:, :, None]


class FM(SequenceRecommender):
    """Factorized item/concept interactions behind the shared protocol.

    ``item_embedding`` is ``(num_items + 1, dim + 1)``: columns ``:dim``
    are the interaction factors ``v_c``, the last column is the linear
    weight ``w_c``.  :meth:`sequence_output` appends a constant 1 to the
    history state so the inherited dot-product scoring yields
    ``<v_c, state> + w_c`` — the FM ranking score.
    """

    name = "FM"

    def __init__(self, num_items: int, item_concepts: np.ndarray,
                 dim: int = 32, max_len: int = 20):
        super().__init__(num_items, dim, max_len)
        self.item_embedding = Embedding(num_items + 1, dim + 1, padding_idx=0)
        self.item_concepts = np.asarray(item_concepts, dtype=np.float32)
        if self.item_concepts.shape[0] != num_items + 1:
            raise ValueError(
                f"item_concepts must have num_items+1={num_items + 1} rows, "
                f"got {self.item_concepts.shape[0]}")
        self.concept_projection = Linear(self.item_concepts.shape[1], dim,
                                         bias=False)

    @classmethod
    def from_dataset(cls, dataset: InteractionDataset, dim: int = 32,
                     max_len: int = 20) -> "FM":
        """Build with the dataset's item-concept context features."""
        return cls(dataset.num_items, dataset.item_concepts, dim=dim,
                   max_len=max_len)

    def sequence_output(self, inputs: np.ndarray) -> Tensor:
        """``[mean item factors + projected concept context ; 1]`` per step."""
        inputs = np.asarray(inputs)
        averager = _running_mean_weights(inputs)  # (B, T, T) constant
        factors = self.item_embedding(inputs)[:, :, :self.dim]  # (B, T, dim)
        base = Tensor(averager) @ factors
        # Mean concept profile of the history — a constant w.r.t. the graph,
        # so it is averaged in numpy and enters through one projection.
        profile = averager @ self.item_concepts[inputs]  # (B, T, K)
        context = self.concept_projection(Tensor(profile))
        ones = Tensor(np.ones(inputs.shape + (1,), dtype=np.float32))
        return concatenate([base + context, ones], axis=-1)

    # ------------------------------------------------------------------
    # Serving export protocol
    # ------------------------------------------------------------------
    def export_config(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Constructor settings + the concept matrix for :mod:`repro.serve`."""
        config = {
            "num_items": self.num_items,
            "dim": self.dim,
            "max_len": self.max_len,
        }
        return config, {"item_concepts": self.item_concepts}

    @classmethod
    def from_export_config(cls, config: dict,
                           constants: dict[str, np.ndarray]) -> "FM":
        """Rebuild an untrained instance from :meth:`export_config` output."""
        return cls(item_concepts=constants["item_concepts"], **config)
