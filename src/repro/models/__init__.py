"""Baseline recommenders reproduced from their original papers (Table 2),
plus the structure-aware baselines of the graph-workloads comparison
(KTUP, FM — see docs/graph-workloads.md)."""

from repro.models.base import Recommender, SequenceRecommender
from repro.models.bert4rec import BERT4Rec, BERT4RecConcept
from repro.models.bpr_mf import BPRMF
from repro.models.caser import Caser
from repro.models.dgcf import DGCF
from repro.models.fm import FM
from repro.models.fpmc import FPMC
from repro.models.gru4rec import GRU4Rec, GRU4RecPlus
from repro.models.ktup import KTUP
from repro.models.ncf import NCF
from repro.models.pop import PopRec
from repro.models.sasrec import SASRec, SASRecConcept

__all__ = [
    "Recommender",
    "SequenceRecommender",
    "PopRec",
    "BPRMF",
    "NCF",
    "FPMC",
    "GRU4Rec",
    "GRU4RecPlus",
    "DGCF",
    "Caser",
    "SASRec",
    "SASRecConcept",
    "KTUP",
    "FM",
    "BERT4Rec",
    "BERT4RecConcept",
]
