"""BERT4Rec: bidirectional transformer with a Cloze objective (Sun et al. 2019).

Training masks random positions of the behaviour sequence (plus always
learning to reconstruct the final position) and predicts the original items
from both left and right context.  At inference a ``[MASK]`` token is
appended after the user's history and its hidden state scores candidates.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import SequenceRecommender
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding, MultiHotEmbedding
from repro.nn.module import Parameter
from repro.nn import init
from repro.nn.transformer import TransformerEncoder
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad


class BERT4Rec(SequenceRecommender):
    """Bidirectional encoder; vocabulary row ``num_items + 1`` is ``[MASK]``."""

    name = "BERT4Rec"

    def __init__(self, num_items: int, dim: int = 32, max_len: int = 20,
                 num_layers: int = 2, num_heads: int = 2, dropout: float = 0.1,
                 mask_prob: float = 0.5,
                 item_concepts: np.ndarray | None = None):
        super().__init__(num_items, dim, max_len)
        if not 0.0 < mask_prob < 1.0:
            raise ValueError(f"mask_prob must be in (0, 1), got {mask_prob}")
        self.mask_prob = mask_prob
        self.mask_token = num_items + 1
        self.item_embedding = Embedding(num_items + 2, dim, padding_idx=0)
        self.position_embedding = Parameter(init.normal((max_len, dim), std=0.02))
        if item_concepts is not None:
            # Concepts for real items; the [MASK] token row has no concepts.
            padded = np.vstack([item_concepts, np.zeros((1, item_concepts.shape[1]),
                                                        dtype=item_concepts.dtype)])
            self.concept_embedding = MultiHotEmbedding(padded, dim)
        else:
            self.concept_embedding = None
        self.encoder = TransformerEncoder(dim, num_layers=num_layers,
                                          num_heads=num_heads, dropout=dropout,
                                          causal=False)
        self.dropout = Dropout(dropout)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def sequence_output(self, inputs: np.ndarray) -> Tensor:
        """Bidirectional transformer states at every position."""
        inputs = np.asarray(inputs)
        length = inputs.shape[1]
        if length > self.max_len:
            raise ValueError(f"input length {length} exceeds max_len {self.max_len}")
        hidden = self.item_embedding(inputs) + self.position_embedding[-length:]
        if self.concept_embedding is not None:
            hidden = hidden + self.concept_embedding(inputs)
        hidden = self.dropout(hidden)
        padding = inputs == 0
        return self.encoder(hidden, key_padding_mask=padding)

    # ------------------------------------------------------------------
    # Cloze training
    # ------------------------------------------------------------------
    def training_batches(self, rng: np.random.Generator):
        """Full padded sequences; masking happens inside the loss."""
        if self._train_sequences is None:
            raise RuntimeError("call fit() first (training sequences not set)")
        from repro.data.batching import pad_left

        usable = [seq for seq in self._train_sequences if len(seq) >= 2]
        order = rng.permutation(len(usable))
        for start in range(0, len(order), self._train_batch_size):
            index = order[start:start + self._train_batch_size]
            padded = pad_left([usable[i] for i in index], self.max_len)
            yield padded, rng

    def training_loss(self, batch) -> Tensor:
        """Cloze loss: reconstruct the masked items (Sun et al. 2019)."""
        sequences, rng = batch
        real = sequences > 0
        cloze = (rng.random(sequences.shape) < self.mask_prob) & real
        # Always include the last real position so the model learns the
        # inference-time pattern (predict the item after the history).
        rows = np.arange(len(sequences))
        cloze[rows, -1] |= real[rows, -1]
        # Guarantee at least one masked position per row with real items.
        for row in np.flatnonzero(real.any(axis=1) & ~cloze.any(axis=1)):
            positions = np.flatnonzero(real[row])
            cloze[row, rng.choice(positions)] = True

        masked_inputs = np.where(cloze, self.mask_token, sequences)
        states = self.sequence_output(masked_inputs)
        logits = self.all_item_logits(states)
        # Suppress the [MASK] token column as a prediction target.
        suppress = np.zeros((1, 1, self.num_items + 2), dtype=logits.data.dtype)
        suppress[..., self.mask_token] = -1e9
        logits = logits + Tensor(suppress)
        return F.cross_entropy(logits, sequences, cloze.astype(np.float32))

    # ------------------------------------------------------------------
    # Inference: append [MASK] after the history
    # ------------------------------------------------------------------
    def _append_mask(self, inputs: np.ndarray) -> np.ndarray:
        shifted = np.roll(np.asarray(inputs), -1, axis=1)
        shifted[:, -1] = self.mask_token
        return shifted

    def score(self, users: np.ndarray, inputs: np.ndarray,
              candidates: np.ndarray) -> np.ndarray:
        """Score via the [MASK] appended after the history."""
        with no_grad():
            states = self.sequence_output(self._append_mask(inputs))
            last = states[:, -1, :]
            embeddings = self.item_embedding(candidates)
            scores = embeddings @ last.reshape(last.shape[0], last.shape[1], 1)
        return scores.data[:, :, 0].astype(np.float64)


class BERT4RecConcept(BERT4Rec):
    """BERT4Rec + concept-sum input embeddings (the Table 5 variant)."""

    name = "BERT4Rec+concept"

    def __init__(self, num_items: int, item_concepts: np.ndarray, dim: int = 32,
                 max_len: int = 20, **kwargs):
        super().__init__(num_items, dim=dim, max_len=max_len,
                         item_concepts=item_concepts, **kwargs)
