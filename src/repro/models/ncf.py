"""NCF: Neural Collaborative Filtering (He et al. 2017).

An MLP over concatenated user/item embeddings plus a GMF (elementwise
product) path, trained as binary classification with sampled negatives.
Non-sequential baseline.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import pairwise_batches
from repro.data.dataset import InteractionDataset
from repro.data.preprocessing import LeaveOneOutSplit
from repro.models.base import validation_evaluator
from repro.models.base import Recommender
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.nn.mlp import MLP
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, concatenate, no_grad
from repro.train.trainer import TrainConfig, Trainer, TrainingHistory


class NCF(Module, Recommender):
    """NeuMF variant: GMF path + MLP path fused by a linear head."""

    name = "NCF"

    def __init__(self, num_users: int, num_items: int, dim: int = 32,
                 hidden: tuple[int, ...] = (64, 32), max_len: int = 20,
                 num_negatives: int = 4):
        super().__init__()
        self.num_users = num_users
        self.num_items = num_items
        self.dim = dim
        self.max_len = max_len
        self.num_negatives = num_negatives
        self.user_embedding_gmf = Embedding(num_users, dim)
        self.item_embedding_gmf = Embedding(num_items + 1, dim, padding_idx=0)
        self.user_embedding_mlp = Embedding(num_users, dim)
        self.item_embedding_mlp = Embedding(num_items + 1, dim, padding_idx=0)
        self.mlp = MLP([2 * dim, *hidden])
        self.head = Linear(dim + hidden[-1], 1)
        self._train_sequences: list[np.ndarray] | None = None
        self._batch_size = 256

    def _pair_logits(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        gmf = self.user_embedding_gmf(users) * self.item_embedding_gmf(items)
        mlp_in = concatenate(
            [self.user_embedding_mlp(users), self.item_embedding_mlp(items)], axis=-1
        )
        mlp_out = self.mlp(mlp_in).relu()
        fused = concatenate([gmf, mlp_out], axis=-1)
        return self.head(fused)[..., 0]

    def training_batches(self, rng: np.random.Generator):
        """Yield training batches for one epoch (Trainer protocol)."""
        return pairwise_batches(self._train_sequences, self.num_items,
                                self._batch_size, rng,
                                num_negatives=self.num_negatives)

    def training_loss(self, batch) -> Tensor:
        """Loss of one batch (Trainer protocol)."""
        users, positives, negatives = batch
        all_users = np.concatenate([users] + [users] * self.num_negatives)
        all_items = np.concatenate([positives] + [negatives[:, j] for j in range(self.num_negatives)])
        labels = np.concatenate([
            np.ones(len(users), dtype=np.float32),
            np.zeros(len(users) * self.num_negatives, dtype=np.float32),
        ])
        logits = self._pair_logits(all_users, all_items)
        return F.binary_cross_entropy_with_logits(logits, labels)

    def fit(self, dataset: InteractionDataset, split: LeaveOneOutSplit,
            train_config: TrainConfig | None = None) -> TrainingHistory:
        """Train with validation-HR@10 early stopping."""
        config = train_config or TrainConfig()
        self._train_sequences = split.train_sequences()
        self._batch_size = max(config.batch_size, 128)
        evaluator = validation_evaluator(dataset, split, config.seed)
        validate = lambda: evaluator.evaluate(self, stage="valid").hr10
        return Trainer(self, config, validate=validate).fit()

    def score(self, users: np.ndarray, inputs: np.ndarray,
              candidates: np.ndarray) -> np.ndarray:
        """Score candidate items (Recommender protocol)."""
        batch, num_candidates = candidates.shape
        tiled_users = np.repeat(users, num_candidates)
        flat_items = candidates.reshape(-1)
        with no_grad():
            logits = self._pair_logits(tiled_users, flat_items)
        return logits.data.reshape(batch, num_candidates).astype(np.float64)
