"""SASRec: self-attentive sequential recommendation (Kang & McAuley 2018).

A causal transformer over the item sequence; the hidden state at each
position scores the next item through the (shared) item embedding.  The
``+concept`` variant used in Table 5 additionally sums concept embeddings
into the input representation, mirroring Eq. (1) of ISRec but without any
intent modules.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import SequenceRecommender
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding, MultiHotEmbedding
from repro.nn.module import Parameter
from repro.nn import init
from repro.nn.transformer import TransformerEncoder
from repro.tensor.tensor import Tensor


class SASRec(SequenceRecommender):
    """Causal two-layer transformer encoder with learned positions."""

    name = "SASRec"

    def __init__(self, num_items: int, dim: int = 32, max_len: int = 20,
                 num_layers: int = 2, num_heads: int = 2, dropout: float = 0.1,
                 item_concepts: np.ndarray | None = None):
        super().__init__(num_items, dim, max_len)
        self.num_layers = num_layers
        self.num_heads = num_heads
        self.dropout_p = dropout
        self.item_embedding = Embedding(num_items + 1, dim, padding_idx=0)
        self.position_embedding = Parameter(init.normal((max_len, dim), std=0.02))
        self.concept_embedding = (
            MultiHotEmbedding(item_concepts, dim) if item_concepts is not None else None
        )
        self.encoder = TransformerEncoder(dim, num_layers=num_layers,
                                          num_heads=num_heads, dropout=dropout,
                                          causal=True)
        self.dropout = Dropout(dropout)

    def sequence_output(self, inputs: np.ndarray) -> Tensor:
        """Causal transformer states at every position."""
        inputs = np.asarray(inputs)
        length = inputs.shape[1]
        if length > self.max_len:
            raise ValueError(f"input length {length} exceeds max_len {self.max_len}")
        hidden = self.item_embedding(inputs) + self.position_embedding[-length:]
        if self.concept_embedding is not None:
            hidden = hidden + self.concept_embedding(inputs)
        hidden = self.dropout(hidden)
        padding = inputs == 0
        return self.encoder(hidden, key_padding_mask=padding)

    def export_config(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Constructor settings + concept matrix for :mod:`repro.serve`."""
        config = {
            "num_items": self.num_items,
            "dim": self.dim,
            "max_len": self.max_len,
            "num_layers": self.num_layers,
            "num_heads": self.num_heads,
            "dropout": self.dropout_p,
        }
        constants: dict[str, np.ndarray] = {}
        if self.concept_embedding is not None:
            constants["item_concepts"] = self.concept_embedding.multi_hot
        return config, constants

    @classmethod
    def from_export_config(cls, config: dict,
                           constants: dict[str, np.ndarray]) -> "SASRec":
        """Rebuild an untrained instance from :meth:`export_config` output."""
        kwargs = dict(config)
        item_concepts = constants.get("item_concepts")
        if item_concepts is not None:
            kwargs["item_concepts"] = item_concepts
        return cls(**kwargs)


class SASRecConcept(SASRec):
    """SASRec + concept-sum input embeddings (the Table 5 variant)."""

    name = "SASRec+concept"

    def __init__(self, num_items: int, item_concepts: np.ndarray, dim: int = 32,
                 max_len: int = 20, **kwargs):
        super().__init__(num_items, dim=dim, max_len=max_len,
                         item_concepts=item_concepts, **kwargs)
