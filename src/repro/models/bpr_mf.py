"""BPR-MF: matrix factorisation trained with Bayesian personalised ranking.

Rendle et al. (2012).  Non-sequential: scores depend only on the user and
candidate item embeddings.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import pairwise_batches
from repro.data.dataset import InteractionDataset
from repro.data.preprocessing import LeaveOneOutSplit
from repro.models.base import validation_evaluator
from repro.models.base import Recommender
from repro.nn.embedding import Embedding
from repro.nn.module import Module, Parameter
from repro.nn import init
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad
from repro.train.trainer import TrainConfig, Trainer, TrainingHistory


class BPRMF(Module, Recommender):
    """``score(u, i) = <p_u, q_i> + b_i`` optimised with the BPR loss."""

    name = "BPR-MF"

    def __init__(self, num_users: int, num_items: int, dim: int = 32, max_len: int = 20):
        super().__init__()
        self.num_users = num_users
        self.num_items = num_items
        self.dim = dim
        self.max_len = max_len
        self.user_embedding = Embedding(num_users, dim)
        self.item_embedding = Embedding(num_items + 1, dim, padding_idx=0)
        self.item_bias = Parameter(init.zeros((num_items + 1,)))
        self._train_sequences: list[np.ndarray] | None = None
        self._batch_size = 256

    def _pair_scores(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        user_vec = self.user_embedding(users)
        item_vec = self.item_embedding(items)
        return (user_vec * item_vec).sum(axis=-1) + self.item_bias[items]

    def training_batches(self, rng: np.random.Generator):
        """Yield training batches for one epoch (Trainer protocol)."""
        return pairwise_batches(self._train_sequences, self.num_items,
                                self._batch_size, rng)

    def training_loss(self, batch) -> Tensor:
        """Loss of one batch (Trainer protocol)."""
        users, positives, negatives = batch
        positive_scores = self._pair_scores(users, positives)
        negative_scores = self._pair_scores(users, negatives[:, 0])
        return F.bpr_loss(positive_scores, negative_scores)

    def fit(self, dataset: InteractionDataset, split: LeaveOneOutSplit,
            train_config: TrainConfig | None = None) -> TrainingHistory:
        """Train with validation-HR@10 early stopping."""
        config = train_config or TrainConfig()
        self._train_sequences = split.train_sequences()
        self._batch_size = max(config.batch_size, 128)
        evaluator = validation_evaluator(dataset, split, config.seed)
        validate = lambda: evaluator.evaluate(self, stage="valid").hr10
        return Trainer(self, config, validate=validate).fit()

    def score(self, users: np.ndarray, inputs: np.ndarray,
              candidates: np.ndarray) -> np.ndarray:
        """Score candidate items (Recommender protocol)."""
        with no_grad():
            user_vec = self.user_embedding(users)  # (B, d)
            item_vec = self.item_embedding(candidates)  # (B, C, d)
            dots = item_vec @ user_vec.reshape(len(users), self.dim, 1)
            scores = dots[:, :, 0] + self.item_bias[candidates]
        return scores.data.astype(np.float64)
