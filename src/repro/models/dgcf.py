"""DGCF: Disentangled Graph Collaborative Filtering (Wang et al. 2020).

The intention-aware baseline of Table 2.  User/item embeddings are split
into ``K`` intent factors; graph propagation over the user-item interaction
graph is routed per factor with attention weights (neighbour routing), so
each factor specialises to one latent intention.  Trained with BPR.

This is a faithful small-scale re-implementation: dense interaction matrix,
one propagation layer, configurable routing iterations.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import pairwise_batches
from repro.data.dataset import InteractionDataset
from repro.data.preprocessing import LeaveOneOutSplit
from repro.models.base import validation_evaluator
from repro.models.base import Recommender
from repro.nn.embedding import Embedding
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad, stack
from repro.train.trainer import TrainConfig, Trainer, TrainingHistory


class DGCF(Module, Recommender):
    """K-factor disentangled propagation over the interaction graph."""

    name = "DGCF"

    def __init__(self, num_users: int, num_items: int, dim: int = 32,
                 num_factors: int = 4, routing_iterations: int = 2,
                 max_len: int = 20):
        super().__init__()
        if dim % num_factors != 0:
            raise ValueError(f"dim {dim} must be divisible by num_factors {num_factors}")
        self.num_users = num_users
        self.num_items = num_items
        self.dim = dim
        self.num_factors = num_factors
        self.factor_dim = dim // num_factors
        self.routing_iterations = routing_iterations
        self.max_len = max_len
        self.user_embedding = Embedding(num_users, dim)
        self.item_embedding = Embedding(num_items + 1, dim, padding_idx=0)
        self._interactions: np.ndarray | None = None  # (U, I+1) binary
        self._train_sequences: list[np.ndarray] | None = None
        self._batch_size = 256
        self._cached_final: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Disentangled propagation
    # ------------------------------------------------------------------
    def _factorize(self, table: Tensor, rows: int) -> Tensor:
        return table.reshape(rows, self.num_factors, self.factor_dim)

    def propagate(self) -> tuple[Tensor, Tensor]:
        """One routing-weighted propagation pass; returns final embeddings.

        Final representations are the ego embedding plus the neighbourhood
        message, factor by factor, matching DGCF's layer combination.
        """
        if self._interactions is None:
            raise RuntimeError("call fit() first (interaction graph not built)")
        users = self._factorize(self.user_embedding.weight, self.num_users)
        items = self._factorize(self.item_embedding.weight, self.num_items + 1)
        graph = self._interactions  # constant (U, I+1)

        # Neighbour routing: per-factor edge logits, softmax over factors.
        routing_logits = Tensor(np.zeros(
            (self.num_factors, self.num_users, self.num_items + 1), dtype=np.float32))
        for _ in range(self.routing_iterations):
            weights = F.softmax(routing_logits, axis=0)  # (K, U, I+1)
            user_messages = []
            item_messages = []
            for k in range(self.num_factors):
                adjacency = weights[k] * Tensor(graph)  # (U, I+1)
                degree_u = Tensor((graph.sum(axis=1, keepdims=True) + 1.0).astype(np.float32))
                degree_i = Tensor((graph.sum(axis=0, keepdims=True).T + 1.0).astype(np.float32))
                user_messages.append((adjacency @ items[:, k, :]) / degree_u)
                item_messages.append((adjacency.transpose(1, 0) @ users[:, k, :]) / degree_i)
            new_logit_slices = []
            for k in range(self.num_factors):
                affinity = (users[:, k, :] + user_messages[k]).tanh() @ \
                    (items[:, k, :] + item_messages[k]).tanh().transpose(1, 0)
                new_logit_slices.append(routing_logits[k] + affinity)
            routing_logits = stack(new_logit_slices, axis=0)

        weights = F.softmax(routing_logits, axis=0)
        final_user_factors = []
        final_item_factors = []
        for k in range(self.num_factors):
            adjacency = weights[k] * Tensor(graph)
            degree_u = Tensor((graph.sum(axis=1, keepdims=True) + 1.0).astype(np.float32))
            degree_i = Tensor((graph.sum(axis=0, keepdims=True).T + 1.0).astype(np.float32))
            final_user_factors.append(users[:, k, :] + (adjacency @ items[:, k, :]) / degree_u)
            final_item_factors.append(items[:, k, :] + (adjacency.transpose(1, 0) @ users[:, k, :]) / degree_i)
        final_users = stack(final_user_factors, axis=1).reshape(self.num_users, self.dim)
        final_items = stack(final_item_factors, axis=1).reshape(self.num_items + 1, self.dim)
        return final_users, final_items

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def training_batches(self, rng: np.random.Generator):
        """Yield training batches for one epoch (Trainer protocol)."""
        return pairwise_batches(self._train_sequences, self.num_items,
                                self._batch_size, rng)

    def training_loss(self, batch) -> Tensor:
        """Loss of one batch (Trainer protocol)."""
        users, positives, negatives = batch
        final_users, final_items = self.propagate()
        user_vec = final_users[users]
        positive_scores = (user_vec * final_items[positives]).sum(axis=-1)
        negative_scores = (user_vec * final_items[negatives[:, 0]]).sum(axis=-1)
        self._cached_final = None
        return F.bpr_loss(positive_scores, negative_scores)

    def load_state_dict(self, state) -> None:
        """Restore weights and invalidate the propagation cache.

        The trainer restores the best validation weights after training; a
        cache built from the last-epoch weights must not survive that.
        """
        super().load_state_dict(state)
        self._cached_final = None

    def fit(self, dataset: InteractionDataset, split: LeaveOneOutSplit,
            train_config: TrainConfig | None = None) -> TrainingHistory:
        """Train with validation-HR@10 early stopping."""
        config = train_config or TrainConfig()
        self._train_sequences = split.train_sequences()
        self._batch_size = max(config.batch_size, 256)
        graph = np.zeros((self.num_users, self.num_items + 1), dtype=np.float32)
        for user, seq in enumerate(self._train_sequences):
            graph[user, seq] = 1.0
        graph[:, 0] = 0.0
        self._interactions = graph
        evaluator = validation_evaluator(dataset, split, config.seed)
        validate = lambda: evaluator.evaluate(self, stage="valid").hr10
        return Trainer(self, config, validate=validate).fit()

    def score(self, users: np.ndarray, inputs: np.ndarray,
              candidates: np.ndarray) -> np.ndarray:
        """Score candidate items (Recommender protocol)."""
        with no_grad():
            if self._cached_final is None:
                final_users, final_items = self.propagate()
                self._cached_final = (final_users.data, final_items.data)
            user_table, item_table = self._cached_final
            user_vec = user_table[users]  # (B, d)
            item_vec = item_table[candidates]  # (B, C, d)
            scores = np.einsum("bd,bcd->bc", user_vec, item_vec)
        return scores.astype(np.float64)
