"""FPMC: Factorised Personalised Markov Chains (Rendle et al. 2010).

``score(u, prev, next) = <V_u^{U,I}, V_next^{I,U}> + <V_prev^{L,I}, V_next^{I,L}>``
— matrix factorisation for long-term taste plus a factorised first-order
Markov transition, trained with BPR.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import markov_batches
from repro.data.dataset import InteractionDataset
from repro.data.preprocessing import LeaveOneOutSplit
from repro.models.base import validation_evaluator
from repro.models.base import Recommender
from repro.nn.embedding import Embedding
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad
from repro.train.trainer import TrainConfig, Trainer, TrainingHistory


class FPMC(Module, Recommender):
    """Factorised first-order Markov chain with user factors."""

    name = "FPMC"

    def __init__(self, num_users: int, num_items: int, dim: int = 32, max_len: int = 20):
        super().__init__()
        self.num_users = num_users
        self.num_items = num_items
        self.dim = dim
        self.max_len = max_len
        self.user_factors = Embedding(num_users, dim)          # V^{U,I}
        self.item_user_factors = Embedding(num_items + 1, dim, padding_idx=0)  # V^{I,U}
        self.prev_factors = Embedding(num_items + 1, dim, padding_idx=0)       # V^{L,I}
        self.item_prev_factors = Embedding(num_items + 1, dim, padding_idx=0)  # V^{I,L}
        self._train_sequences: list[np.ndarray] | None = None
        self._batch_size = 256

    def _triple_scores(self, users: np.ndarray, prev_items: np.ndarray,
                       next_items: np.ndarray) -> Tensor:
        taste = (self.user_factors(users) * self.item_user_factors(next_items)).sum(axis=-1)
        transition = (self.prev_factors(prev_items) * self.item_prev_factors(next_items)).sum(axis=-1)
        return taste + transition

    def training_batches(self, rng: np.random.Generator):
        """Yield training batches for one epoch (Trainer protocol)."""
        return markov_batches(self._train_sequences, self.num_items,
                              self._batch_size, rng)

    def training_loss(self, batch) -> Tensor:
        """Loss of one batch (Trainer protocol)."""
        users, prev_items, positives, negatives = batch
        positive_scores = self._triple_scores(users, prev_items, positives)
        negative_scores = self._triple_scores(users, prev_items, negatives)
        return F.bpr_loss(positive_scores, negative_scores)

    def fit(self, dataset: InteractionDataset, split: LeaveOneOutSplit,
            train_config: TrainConfig | None = None) -> TrainingHistory:
        """Train with validation-HR@10 early stopping."""
        config = train_config or TrainConfig()
        self._train_sequences = split.train_sequences()
        self._batch_size = max(config.batch_size, 128)
        evaluator = validation_evaluator(dataset, split, config.seed)
        validate = lambda: evaluator.evaluate(self, stage="valid").hr10
        return Trainer(self, config, validate=validate).fit()

    def score(self, users: np.ndarray, inputs: np.ndarray,
              candidates: np.ndarray) -> np.ndarray:
        """Score candidate items (Recommender protocol)."""
        batch, num_candidates = candidates.shape
        last_items = inputs[:, -1]  # most recent interaction (left padding)
        tiled_users = np.repeat(users, num_candidates)
        tiled_prev = np.repeat(last_items, num_candidates)
        flat_next = candidates.reshape(-1)
        with no_grad():
            scores = self._triple_scores(tiled_users, tiled_prev, flat_next)
        return scores.data.reshape(batch, num_candidates).astype(np.float64)
