"""PopRec: rank items by global popularity (the paper's weakest baseline).

Beyond its baseline duty, PopRec is the always-available degraded-mode
fallback of the serving cluster (``docs/resilience.md``): it can be built
straight from a per-item count vector (:meth:`PopRec.from_counts`), updated
incrementally as interactions stream in (:meth:`PopRec.update`), queried
for an exact popularity top-K (:meth:`PopRec.topk`), and frozen into /
restored from a checksummed ``.npz`` export (:meth:`PopRec.save` /
:meth:`PopRec.load`) so a router process can keep a trained popularity
model resident without any dataset machinery.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.preprocessing import LeaveOneOutSplit
from repro.models.base import Recommender
from repro.train.trainer import TrainConfig
from repro.utils.serialization import (
    CheckpointIntegrityError,
    normalize_checkpoint_path,
    read_npz_verified,
    write_npz_atomic,
)

POP_EXPORT_KIND = "popularity_export"


class PopRec(Recommender):
    """Score every candidate by its training interaction count."""

    name = "PopRec"

    def __init__(self, max_len: int = 20):
        self.max_len = max_len
        self._popularity: np.ndarray | None = None

    def fit(self, dataset: InteractionDataset, split: LeaveOneOutSplit,
            train_config: TrainConfig | None = None) -> None:
        """Count training interactions per item."""
        counts = np.zeros(dataset.num_items + 1, dtype=np.float64)
        for seq in split.train_sequences():
            np.add.at(counts, seq, 1)
        counts[0] = -np.inf  # never recommend padding
        self._popularity = counts
        return None

    def score(self, users: np.ndarray, inputs: np.ndarray,
              candidates: np.ndarray) -> np.ndarray:
        """Score candidate items (Recommender protocol)."""
        if self._popularity is None:
            raise RuntimeError("fit() must be called before score()")
        return self._popularity[candidates]

    # ------------------------------------------------------------------
    # Serving-fallback support: counts in, top-K out, checksummed export
    # ------------------------------------------------------------------
    @property
    def num_items(self) -> int:
        """Size of the item vocabulary (excluding the padding id)."""
        if self._popularity is None:
            raise RuntimeError("popularity counts are not initialised")
        return len(self._popularity) - 1

    @classmethod
    def from_counts(cls, counts, max_len: int = 20) -> "PopRec":
        """Build a ready-to-score PopRec from a ``(V + 1,)`` count vector.

        ``counts[0]`` (the padding id) is forced to ``-inf`` so padding is
        never recommended; the remaining entries are copied as float64.
        An all-zero vector is valid — every item ties at zero, and
        :meth:`topk` falls back to item-id order.
        """
        counts = np.asarray(counts, dtype=np.float64).ravel().copy()
        if counts.size < 2:
            raise ValueError(
                f"counts must cover padding plus >= 1 item, got {counts.size}")
        counts[0] = -np.inf
        model = cls(max_len=max_len)
        model._popularity = counts
        return model

    def update(self, items, amount: float = 1.0) -> None:
        """Add ``amount`` to the count of every id in ``items`` (in place).

        Out-of-range and padding ids are ignored, so a raw interaction
        stream can be fed through unchecked.
        """
        if self._popularity is None:
            raise RuntimeError("popularity counts are not initialised")
        items = np.asarray(items, dtype=np.int64).ravel()
        items = items[(items > 0) & (items < len(self._popularity))]
        np.add.at(self._popularity, items, amount)

    def topk(self, k: int, exclude=()) -> list[tuple[int, float]]:
        """Exact popularity top-``k`` ``(item, count)`` pairs, best first.

        ``exclude`` suppresses already-seen item ids; ties break by
        ascending item id, mirroring the engine's ordering convention.
        """
        if self._popularity is None:
            raise RuntimeError("popularity counts are not initialised")
        scores = self._popularity.copy()
        if len(exclude):
            suppress = np.unique(np.asarray(list(exclude), dtype=np.int64))
            suppress = suppress[(suppress > 0) & (suppress < len(scores))]
            scores[suppress] = -np.inf
        k = max(0, min(int(k), len(scores) - 1))
        if k == 0:
            return []
        winners = np.argpartition(scores, -k)[-k:]
        winners = winners[np.lexsort((winners, -scores[winners]))]
        return [(int(item), float(scores[item]))
                for item in winners if np.isfinite(scores[item])]

    def save(self, path: str | Path) -> Path:
        """Freeze the popularity counts into a checksummed ``.npz`` export."""
        if self._popularity is None:
            raise RuntimeError("popularity counts are not initialised")
        counts = self._popularity.copy()
        counts[0] = 0.0  # -inf is not JSON/CRC friendly; restored on load
        meta = {"kind": POP_EXPORT_KIND, "max_len": int(self.max_len),
                "num_items": int(self.num_items)}
        return write_npz_atomic(normalize_checkpoint_path(path),
                                {"popularity": counts}, meta)

    @classmethod
    def load(cls, path: str | Path) -> "PopRec":
        """Restore a :meth:`save` export (checksums verified)."""
        path = Path(path)
        if not path.exists() and normalize_checkpoint_path(path).exists():
            path = normalize_checkpoint_path(path)
        arrays, meta = read_npz_verified(path)
        if meta.get("kind") != POP_EXPORT_KIND:
            raise CheckpointIntegrityError(
                f"{path}: not a popularity export (kind={meta.get('kind')!r})")
        return cls.from_counts(arrays["popularity"],
                               max_len=int(meta.get("max_len", 20)))
