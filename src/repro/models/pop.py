"""PopRec: rank items by global popularity (the paper's weakest baseline)."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.preprocessing import LeaveOneOutSplit
from repro.models.base import Recommender
from repro.train.trainer import TrainConfig


class PopRec(Recommender):
    """Score every candidate by its training interaction count."""

    name = "PopRec"

    def __init__(self, max_len: int = 20):
        self.max_len = max_len
        self._popularity: np.ndarray | None = None

    def fit(self, dataset: InteractionDataset, split: LeaveOneOutSplit,
            train_config: TrainConfig | None = None) -> None:
        """Count training interactions per item."""
        counts = np.zeros(dataset.num_items + 1, dtype=np.float64)
        for seq in split.train_sequences():
            np.add.at(counts, seq, 1)
        counts[0] = -np.inf  # never recommend padding
        self._popularity = counts
        return None

    def score(self, users: np.ndarray, inputs: np.ndarray,
              candidates: np.ndarray) -> np.ndarray:
        """Score candidate items (Recommender protocol)."""
        if self._popularity is None:
            raise RuntimeError("fit() must be called before score()")
        return self._popularity[candidates]
