"""GRU4Rec and GRU4Rec+ (Hidasi et al. 2015; Hidasi & Karatzoglou 2018).

GRU4Rec encodes the behaviour sequence with a GRU and trains with next-item
cross-entropy.  GRU4Rec+ keeps the architecture but switches to the BPR-max
loss with additional sampled negatives, which is the improvement the 2018
paper attributes most of its gains to.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import next_item_batches
from repro.models.base import SequenceRecommender
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.recurrent import GRU
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class GRU4Rec(SequenceRecommender):
    """GRU over the item sequence; hidden state scores the next item."""

    name = "GRU4Rec"

    def __init__(self, num_items: int, dim: int = 32, max_len: int = 20,
                 dropout: float = 0.1):
        super().__init__(num_items, dim, max_len)
        self.item_embedding = Embedding(num_items + 1, dim, padding_idx=0)
        self.gru = GRU(dim, dim)
        self.dropout = Dropout(dropout)

    def sequence_output(self, inputs: np.ndarray) -> Tensor:
        """GRU hidden state at every position."""
        embedded = self.dropout(self.item_embedding(inputs))
        padding = np.asarray(inputs) == 0
        return self.gru(embedded, padding_mask=padding)

    def export_config(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Constructor settings for :mod:`repro.serve` (no constants)."""
        return {
            "num_items": self.num_items,
            "dim": self.dim,
            "max_len": self.max_len,
            "dropout": self.dropout.p,
        }, {}

    @classmethod
    def from_export_config(cls, config: dict,
                           constants: dict[str, np.ndarray]) -> "GRU4Rec":
        """Rebuild an untrained instance from :meth:`export_config` output."""
        return cls(**config)


class GRU4RecPlus(GRU4Rec):
    """GRU4Rec trained with the BPR-max loss over sampled negatives."""

    name = "GRU4Rec+"

    def __init__(self, num_items: int, dim: int = 32, max_len: int = 20,
                 dropout: float = 0.2, num_negatives: int = 32,
                 bpr_reg: float = 0.5):
        super().__init__(num_items, dim, max_len, dropout=dropout)
        self.num_negatives = num_negatives
        self.bpr_reg = bpr_reg

    def training_batches(self, rng: np.random.Generator):
        """Next-item batches augmented with per-batch sampled negatives."""
        if self._train_sequences is None:
            raise RuntimeError("call fit() first (training sequences not set)")
        for users, inputs, targets, mask in next_item_batches(
                self._train_sequences, self.max_len, self._train_batch_size, rng):
            negatives = rng.integers(
                1, self.num_items + 1,
                size=(len(users), self.num_negatives),
            )
            yield users, inputs, targets, mask, negatives

    def training_loss(self, batch) -> Tensor:
        """BPR-max over sampled negatives at every real position."""
        _users, inputs, targets, mask, negatives = batch
        states = self.sequence_output(inputs)  # (B, T, d)
        flat_states = states.reshape(-1, self.dim)
        flat_targets = targets.reshape(-1)
        flat_mask = mask.reshape(-1) > 0
        kept = np.flatnonzero(flat_mask)
        kept_states = flat_states[kept]
        positive_emb = self.item_embedding(flat_targets[kept])
        positive_scores = (kept_states * positive_emb).sum(axis=-1)
        rows = (kept // targets.shape[1]).astype(np.int64)
        negative_emb = self.item_embedding(negatives[rows])  # (P, N, d)
        negative_scores = (negative_emb @ kept_states.reshape(len(kept), self.dim, 1))[:, :, 0]
        return F.bpr_max_loss(positive_scores, negative_scores,
                              regularization=self.bpr_reg)
