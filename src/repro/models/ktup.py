"""KTUP-style knowledge-aware recommender (Cao et al., WWW 2019).

KTUP jointly learns item recommendation and knowledge-graph completion:
a TransH-style translation model over the item knowledge graph shares its
relation space with user *preferences*, so structural regularities of the
KG (shared attributes, linked concepts) transfer into the ranking model.

This reproduction keeps the three KTUP ingredients at our substrate's
scale, adapted to the history-based serving protocol (the engine scores
``item_embedding @ sequence_output(history)`` and never sees user ids):

- **user representation** — the running mean of the history's item
  embeddings (a per-position user profile, so the model trains on every
  prefix like the other sequence models);
- **preference-relation coupling** — a preference vector per KG relation,
  tied as ``p_r = preference_r + relation_r``; the user state is
  translated by an attention-weighted mixture of the coupled preferences
  (the soft version of KTUP's induced-preference translation);
- **TransH completion loss** — margin ranking over corrupted triples with
  relation-specific hyperplane projections, added to the BPR ranking loss
  with weight ``kg_weight``.

Scoring stays a pure dot product against ``item_embedding``, so the
shared evaluator, the serving engine, and the artifact export/load path
all work unchanged (served-vs-evaluator parity is pinned by tests).
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import next_item_batches
from repro.data.dataset import InteractionDataset
from repro.models.base import SequenceRecommender
from repro.nn.embedding import Embedding
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


def _running_mean_weights(inputs: np.ndarray) -> np.ndarray:
    """Averaging matrix ``W`` with ``(W @ emb)[b, t]`` = mean of the real
    (non-padding) item embeddings at positions ``<= t`` of row ``b``.

    Handles left padding: padded positions contribute nothing and rows
    consisting only of padding average to zero.
    """
    real = (inputs > 0).astype(np.float32)  # (B, T)
    counts = np.cumsum(real, axis=1)  # (B, T)
    width = inputs.shape[1]
    causal = np.tril(np.ones((width, width), dtype=np.float32))
    weights = causal[None] * real[:, None, :]
    return weights / np.maximum(counts, 1.0)[:, :, None]


class KTUP(SequenceRecommender):
    """Joint item ranking + TransH KG completion with coupled preferences."""

    name = "KTUP"

    def __init__(self, num_items: int, kg_triples: np.ndarray,
                 num_entities: int, num_relations: int,
                 dim: int = 32, max_len: int = 20, num_negatives: int = 32,
                 kg_weight: float = 0.5, margin: float = 1.0,
                 kg_batch: int = 256):
        super().__init__(num_items, dim, max_len)
        if num_entities < num_items:
            raise ValueError(
                f"num_entities ({num_entities}) must cover all items "
                f"({num_items})")
        if num_relations < 1:
            raise ValueError("num_relations must be at least 1")
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)
        self.num_negatives = num_negatives
        self.kg_weight = kg_weight
        self.margin = margin
        self.kg_batch = kg_batch
        self.kg_triples = np.asarray(kg_triples, dtype=np.int64).reshape(-1, 3)
        # Items live in item_embedding (row 0 = padding, engine-compatible);
        # attribute entities (ids num_items+1..num_entities) in their own
        # table so the served top-K never ranks a non-item entity.
        self.item_embedding = Embedding(num_items + 1, dim, padding_idx=0)
        self.entity_embedding = Embedding(
            self.num_entities - num_items + 1, dim, padding_idx=0)
        self.relation_embedding = Embedding(self.num_relations, dim)
        self.relation_norm = Embedding(self.num_relations, dim)
        self.preference_embedding = Embedding(self.num_relations, dim)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset: InteractionDataset, dim: int = 32,
                     max_len: int = 20, **kwargs) -> "KTUP":
        """Build from a graph-bearing dataset (``<profile>-kg`` variants)."""
        graph = dataset.knowledge_graph
        if graph is None:
            raise ValueError(
                f"dataset {dataset.name!r} carries no knowledge graph; load "
                f"a graph-bearing profile (see repro.data.graph_profiles)")
        return cls(dataset.num_items, graph.triples, graph.num_entities,
                   graph.num_relations, dim=dim, max_len=max_len, **kwargs)

    # ------------------------------------------------------------------
    # Model
    # ------------------------------------------------------------------
    def _coupled_preferences(self) -> Tensor:
        """Preference vectors tied to their relations: ``p_r + r`` (R, d)."""
        return self.preference_embedding.weight + self.relation_embedding.weight

    def sequence_output(self, inputs: np.ndarray) -> Tensor:
        """Preference-translated running-mean user state at every position."""
        inputs = np.asarray(inputs)
        embedded = self.item_embedding(inputs)  # (B, T, d)
        base = Tensor(_running_mean_weights(inputs)) @ embedded  # (B, T, d)
        preferences = self._coupled_preferences()  # (R, d)
        logits = (base @ preferences.T) * (1.0 / np.sqrt(self.dim))
        attention = F.softmax(logits, axis=-1)  # (B, T, R)
        return base + attention @ preferences

    def _entity(self, ids: np.ndarray) -> Tensor:
        """Embed 1-indexed entity ids from the split item/attribute tables.

        Gathers both tables at masked indices and blends with a constant
        0/1 mask, which keeps the lookup differentiable w.r.t. both tables
        (the padding rows absorb the off-branch indices and their gradient
        is killed by the mask).
        """
        ids = np.asarray(ids, dtype=np.int64)
        is_item = ids <= self.num_items
        item_ids = np.where(is_item, ids, 0)
        attribute_ids = np.where(is_item, 0, ids - self.num_items)
        mask = Tensor(is_item.astype(np.float32)[..., None])
        return (self.item_embedding(item_ids) * mask
                + self.entity_embedding(attribute_ids) * (1.0 - mask))

    def kg_loss(self, positives: np.ndarray, corrupt_tails: np.ndarray) -> Tensor:
        """TransH margin loss over positive vs tail-corrupted triples.

        Heads and tails are projected onto each relation's hyperplane
        (normal ``w_r``) before the translation energy
        ``||h_perp + r - t_perp||^2`` is compared with margin ``margin``.
        """
        heads = self._entity(positives[:, 0])
        tails = self._entity(positives[:, 2])
        corrupted = self._entity(corrupt_tails)
        relations = self.relation_embedding(positives[:, 1])
        normals = F.l2_normalize(self.relation_norm(positives[:, 1]), axis=-1)

        def project(x: Tensor) -> Tensor:
            return x - (x * normals).sum(axis=-1, keepdims=True) * normals

        translated = project(heads) + relations
        positive_diff = translated - project(tails)
        negative_diff = translated - project(corrupted)
        positive_energy = (positive_diff * positive_diff).sum(axis=-1)
        negative_energy = (negative_diff * negative_diff).sum(axis=-1)
        return (positive_energy - negative_energy + self.margin).relu().mean()

    # ------------------------------------------------------------------
    # Training protocol
    # ------------------------------------------------------------------
    def training_batches(self, rng: np.random.Generator):
        """Next-item batches + sampled ranking negatives + KG triple slices."""
        if self._train_sequences is None:
            raise RuntimeError("call fit() first (training sequences not set)")
        for users, inputs, targets, mask in next_item_batches(
                self._train_sequences, self.max_len, self._train_batch_size, rng):
            negatives = rng.integers(
                1, self.num_items + 1, size=(len(users), self.num_negatives))
            kg = None
            if len(self.kg_triples) and self.kg_weight > 0.0:
                picked = rng.integers(0, len(self.kg_triples),
                                      size=self.kg_batch)
                corrupt = rng.integers(1, self.num_entities + 1,
                                       size=self.kg_batch)
                kg = (self.kg_triples[picked], corrupt)
            yield users, inputs, targets, mask, negatives, kg

    def training_loss(self, batch) -> Tensor:
        """BPR over every real position plus the weighted TransH loss."""
        _users, inputs, targets, mask, negatives, kg = batch
        states = self.sequence_output(inputs)
        flat_states = states.reshape(-1, self.dim)
        kept = np.flatnonzero(mask.reshape(-1) > 0)
        kept_states = flat_states[kept]
        positive_emb = self.item_embedding(targets.reshape(-1)[kept])
        positive_scores = (kept_states * positive_emb).sum(axis=-1)
        rows = (kept // targets.shape[1]).astype(np.int64)
        negative_emb = self.item_embedding(negatives[rows])  # (P, N, d)
        negative_scores = (negative_emb
                           @ kept_states.reshape(len(kept), self.dim, 1))[:, :, 0]
        loss = F.bpr_loss(positive_scores.reshape(-1, 1), negative_scores)
        if kg is not None:
            loss = loss + self.kg_loss(*kg) * self.kg_weight
        return loss

    # ------------------------------------------------------------------
    # Serving export protocol
    # ------------------------------------------------------------------
    def export_config(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Constructor settings + the KG triples for :mod:`repro.serve`."""
        config = {
            "num_items": self.num_items,
            "num_entities": self.num_entities,
            "num_relations": self.num_relations,
            "dim": self.dim,
            "max_len": self.max_len,
            "num_negatives": self.num_negatives,
            "kg_weight": self.kg_weight,
            "margin": self.margin,
            "kg_batch": self.kg_batch,
        }
        return config, {"kg_triples": self.kg_triples}

    @classmethod
    def from_export_config(cls, config: dict,
                           constants: dict[str, np.ndarray]) -> "KTUP":
        """Rebuild an untrained instance from :meth:`export_config` output."""
        triples = constants.get("kg_triples",
                                np.empty((0, 3), dtype=np.int64))
        return cls(kg_triples=triples, **config)
