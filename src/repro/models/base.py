"""Recommender interfaces shared by ISRec and every baseline.

Two layers of abstraction:

- :class:`Recommender` — the minimal protocol the evaluator needs:
  ``fit(dataset, split)`` and ``score(users, inputs, candidates)``.
- :class:`SequenceRecommender` — shared machinery for neural next-item
  models (SASRec, GRU4Rec, Caser, ISRec, ...): next-item cross-entropy
  training over every position (Eq. 13), candidate scoring through the item
  embedding (Eq. 12), and a `fit` that wires the generic
  :class:`~repro.train.Trainer` with validation-HR@10 early stopping.
"""

from __future__ import annotations

import abc
import copy
import functools

import numpy as np

from repro import obs
from repro.data.batching import next_item_batches
from repro.data.dataset import InteractionDataset
from repro.data.preprocessing import LeaveOneOutSplit
from repro.eval.evaluator import RankingEvaluator
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor import fused
from repro.tensor.tensor import Tensor, no_grad
from repro.train.trainer import TrainConfig, Trainer, TrainingHistory


def validation_evaluator(dataset: InteractionDataset, split: LeaveOneOutSplit,
                         seed: int, num_negatives: int = 100) -> RankingEvaluator:
    """Evaluator for fit-time early stopping.

    Mirrors the paper's protocol (100 popularity-sampled negatives) but
    clamps the negative count to what the item universe can supply, so tiny
    datasets (tests, demos) remain trainable.
    """
    max_seen = max(len(set(seq.tolist())) for seq in split.full_sequences)
    available = max(dataset.num_items - max_seen, 1)
    return RankingEvaluator(split, dataset.num_items,
                            num_negatives=min(num_negatives, available),
                            seed=seed, popularity=dataset.item_popularity())


@functools.lru_cache(maxsize=16)
def _padding_suppression(ndim: int, vocabulary: int, dtype_name: str) -> Tensor:
    """Constant ``(1, ..., V)`` tensor adding ``-1e9`` to the padding column.

    Cached so every training step reuses one buffer instead of rebuilding a
    vocabulary-sized constant per batch.
    """
    suppress = np.zeros((1,) * (ndim - 1) + (vocabulary,),
                        dtype=np.dtype(dtype_name))
    suppress[..., 0] = -1e9
    suppress.setflags(write=False)
    return Tensor(suppress)


class Recommender(abc.ABC):
    """Protocol for anything the :class:`RankingEvaluator` can evaluate."""

    name: str = "recommender"
    max_len: int = 20

    @abc.abstractmethod
    def fit(self, dataset: InteractionDataset, split: LeaveOneOutSplit,
            train_config: TrainConfig | None = None) -> TrainingHistory | None:
        """Train on ``split.train_sequences()`` of ``dataset``."""

    @abc.abstractmethod
    def score(self, users: np.ndarray, inputs: np.ndarray,
              candidates: np.ndarray) -> np.ndarray:
        """Score ``(batch, C)`` candidate items given left-padded histories."""


class SequenceRecommender(Module, Recommender):
    """Base class for neural next-item models trained with Eq. (13).

    Sub-classes implement :meth:`sequence_output` mapping padded item-id
    inputs ``(batch, T)`` to hidden states ``(batch, T, dim)``; everything
    else — training loss, batching, fitting, candidate scoring — is shared.

    The item embedding table used for scoring must be exposed as
    ``self.item_embedding`` (an :class:`~repro.nn.Embedding` with
    ``num_items + 1`` rows; row 0 is padding and is never recommended).
    """

    #: Seed offset decorrelating the auxiliary-loss RNG stream from the
    #: trainer's batch-order RNG (both derive from ``TrainConfig.seed``).
    CONTRASTIVE_SEED_OFFSET = 0x1C5EC

    def __init__(self, num_items: int, dim: int, max_len: int):
        super().__init__()
        if num_items <= 0 or dim <= 0 or max_len <= 0:
            raise ValueError("num_items, dim, and max_len must be positive")
        self.num_items = num_items
        self.dim = dim
        self.max_len = max_len
        self._train_sequences: list[np.ndarray] | None = None
        self._train_batch_size = 64
        self._contrastive_weight = 0.0
        self._contrastive_temperature = 0.2
        self._contrastive_rng: np.random.Generator | None = None

    # ------------------------------------------------------------------
    # To implement in sub-classes
    # ------------------------------------------------------------------
    def sequence_output(self, inputs: np.ndarray) -> Tensor:
        """Hidden state at every position, ``(batch, T, dim)``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Serving export protocol (repro.serve)
    # ------------------------------------------------------------------
    def export_config(self) -> tuple[dict, dict[str, np.ndarray]]:
        """``(config, constants)`` sufficient to rebuild this architecture.

        ``config`` must be JSON-serializable constructor settings;
        ``constants`` holds non-trainable arrays the constructor needs
        (e.g. the item-concept matrix).  Together with the ``state_dict``
        this is everything :mod:`repro.serve` freezes into an inference
        artifact.  Sub-classes that want to be servable override this and
        :meth:`from_export_config`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the serving export "
            f"protocol (export_config/from_export_config)")

    @classmethod
    def from_export_config(cls, config: dict,
                           constants: dict[str, np.ndarray]) -> "SequenceRecommender":
        """Rebuild an untrained instance from :meth:`export_config` output."""
        raise NotImplementedError(
            f"{cls.__name__} does not implement the serving export protocol "
            f"(export_config/from_export_config)")

    # ------------------------------------------------------------------
    # Training protocol consumed by the Trainer
    # ------------------------------------------------------------------
    def training_batches(self, rng: np.random.Generator):
        """Yield training batches for one epoch (Trainer protocol)."""
        if self._train_sequences is None:
            raise RuntimeError("call fit() first (training sequences not set)")
        return next_item_batches(self._train_sequences, self.max_len,
                                 self._train_batch_size, rng)

    def all_item_logits(self, states: Tensor) -> Tensor:
        """Scores over the full vocabulary, padding column suppressed."""
        logits = states @ self.item_embedding.weight.T
        vocabulary = self.item_embedding.weight.shape[0]
        suppress = _padding_suppression(logits.ndim, vocabulary,
                                        logits.data.dtype.name)
        return logits + suppress

    def training_loss(self, batch) -> Tensor:
        """Next-item cross-entropy over every position (Eq. 13).

        On the fused path the padding-column ban of ``all_item_logits`` is
        folded into the cross-entropy kernel (``suppress_index=0``), so the
        whole ``(B, T, V)`` loss is one logsumexp forward and one
        ``softmax - one_hot`` backward over the raw logits — no constant-add
        temporary, no log-prob graph.  The composed reference path keeps the
        explicit ``all_item_logits`` + ``F.cross_entropy`` pipeline.
        """
        _users, inputs, targets, mask = batch
        states = self.sequence_output(inputs)
        if fused.fused_enabled():
            obs.record_kernel_dispatch("training_loss", True)
            logits = states @ self.item_embedding.weight.T
            loss = fused.cross_entropy(logits, targets, mask, suppress_index=0)
        else:
            obs.record_kernel_dispatch("training_loss", False)
            logits = self.all_item_logits(states)
            loss = F.cross_entropy(logits, targets, mask)
        if self._contrastive_weight > 0.0:
            loss = loss + self.contrastive_loss(inputs) * self._contrastive_weight
        return loss

    # ------------------------------------------------------------------
    # Intent-contrastive auxiliary objective (docs/training-objectives.md)
    # ------------------------------------------------------------------
    def configure_contrastive(self, config: TrainConfig) -> None:
        """Arm (or disarm) the contrastive auxiliary loss for a fit.

        Called by :meth:`fit`; exposed so tests and custom training loops
        can enable the objective without the full fit plumbing.  The
        auxiliary RNG is seeded from ``config.seed`` plus a fixed offset so
        its stream never aliases the trainer's batch-order stream.
        """
        self._contrastive_weight = float(config.contrastive_weight)
        self._contrastive_temperature = float(config.contrastive_temperature)
        self._contrastive_rng = (
            np.random.default_rng(self.CONTRASTIVE_SEED_OFFSET + config.seed)
            if self._contrastive_weight > 0.0 else None)

    def aux_rng_state(self):
        """Auxiliary-loss RNG state for checkpoints (``None`` when disarmed)."""
        if self._contrastive_rng is None:
            return None
        return copy.deepcopy(self._contrastive_rng.bit_generator.state)

    def set_aux_rng_state(self, state) -> None:
        """Restore the auxiliary-loss RNG stream from a checkpoint."""
        if state is None:
            return
        if self._contrastive_rng is None:
            self._contrastive_rng = np.random.default_rng(0)
        self._contrastive_rng.bit_generator.state = copy.deepcopy(state)

    def contrastive_loss(self, inputs: np.ndarray) -> Tensor:
        """Intent-contrastive InfoNCE over two prefix crops of each history.

        Two independent crops of the same user's history share the latent
        intent that generated it (the ICSRec cross-subsequence argument), so
        their final-position intent representations form a positive pair and
        every other sequence in the batch supplies in-batch negatives.
        """
        if self._contrastive_rng is None:
            raise RuntimeError(
                "contrastive loss is disarmed; call fit() (or "
                "configure_contrastive) with contrastive_weight > 0 first")
        anchors = self.sequence_output(self._crop_view(inputs))[:, -1, :]
        positives = self.sequence_output(self._crop_view(inputs))[:, -1, :]
        return F.info_nce(anchors, positives,
                          temperature=self._contrastive_temperature)

    def _crop_view(self, inputs: np.ndarray,
                   min_keep_fraction: float = 0.6) -> np.ndarray:
        """One prefix-crop view of a left-padded batch, re-padded left.

        Keeps the first ``c`` real items of each row with ``c`` drawn
        uniformly from ``[ceil(f * n), n]`` — prefixes, so the crop never
        leaks the items the next-item loss is predicting at the tail.
        """
        rng = self._contrastive_rng
        inputs = np.asarray(inputs)
        width = inputs.shape[1]
        lengths = np.maximum((inputs > 0).sum(axis=1), 1)
        low = np.maximum(
            np.ceil(lengths * min_keep_fraction).astype(np.int64), 1)
        keep = rng.integers(low, lengths + 1)
        view = np.zeros_like(inputs)
        for row in range(inputs.shape[0]):
            start = width - int(lengths[row])
            kept = int(keep[row])
            view[row, width - kept:] = inputs[row, start:start + kept]
        return view

    # ------------------------------------------------------------------
    # Recommender protocol
    # ------------------------------------------------------------------
    def fit(self, dataset: InteractionDataset, split: LeaveOneOutSplit,
            train_config: TrainConfig | None = None) -> TrainingHistory:
        """Train with validation-HR@10 early stopping."""
        config = train_config or TrainConfig()
        self._train_sequences = split.train_sequences()
        self._train_batch_size = config.batch_size
        self.configure_contrastive(config)
        evaluator = validation_evaluator(dataset, split, config.seed)
        validate = lambda: evaluator.evaluate(self, stage="valid").hr10
        # With a checkpoint directory configured, fitting is crash-safe by
        # default: an interrupted run picks up from its newest valid epoch
        # checkpoint (an empty/missing directory just starts fresh).
        resume = config.checkpoint_dir if config.checkpoint_dir else None
        if config.num_workers > 1:
            # Deferred import: repro.parallel depends on repro.train.
            from repro.parallel.trainer import DataParallelTrainer
            trainer = DataParallelTrainer(self, config, validate=validate)
        else:
            trainer = Trainer(self, config, validate=validate)
        obs.emit("fit_start", model=self.name, epochs=config.epochs,
                 batch_size=config.batch_size, workers=config.num_workers,
                 num_sequences=len(self._train_sequences))
        with obs.profile("fit"), obs.timer("fit_seconds") as fit_timer:
            history = trainer.fit(resume_from=resume)
        obs.emit("fit_end", model=self.name, epochs_run=history.epochs_run,
                 best_epoch=history.best_epoch,
                 stopped_early=history.stopped_early,
                 seconds=round(fit_timer.elapsed, 6))
        return history

    def score(self, users: np.ndarray, inputs: np.ndarray,
              candidates: np.ndarray) -> np.ndarray:
        """Score candidates as dot products with the final state (Eq. 12)."""
        with no_grad():
            states = self.sequence_output(inputs)
            last = states[:, -1, :]  # (batch, dim)
            embeddings = self.item_embedding(candidates)  # (batch, C, dim)
            scores = (embeddings @ last.reshape(last.shape[0], last.shape[1], 1))
        return scores.data[:, :, 0].astype(np.float64)
