"""Caser: convolutional sequence embedding (Tang & Wang 2018).

Treats the last ``L`` items as an ``L x d`` image, applies horizontal and
vertical convolutions, fuses with a user embedding, and scores items with a
separate output embedding.  Trained on sliding windows with sampled-negative
binary cross-entropy, as in the original paper.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.preprocessing import LeaveOneOutSplit
from repro.models.base import validation_evaluator
from repro.models.base import Recommender
from repro.nn.conv import HorizontalConv, VerticalConv
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, concatenate, no_grad
from repro.train.trainer import TrainConfig, Trainer, TrainingHistory


class Caser(Module, Recommender):
    """Horizontal + vertical convolutions over the last ``window`` items."""

    name = "Caser"

    def __init__(self, num_users: int, num_items: int, dim: int = 32,
                 window: int = 5, max_len: int = 20,
                 heights=(1, 2, 3), num_h_filters: int = 4, num_v_filters: int = 2,
                 dropout: float = 0.1, num_negatives: int = 10):
        super().__init__()
        self.num_users = num_users
        self.num_items = num_items
        self.dim = dim
        self.window = window
        self.max_len = max_len
        self.num_negatives = num_negatives
        self.item_embedding = Embedding(num_items + 1, dim, padding_idx=0)
        self.user_embedding = Embedding(num_users, dim)
        self.horizontal = HorizontalConv(window, dim, heights=heights,
                                         num_filters=num_h_filters)
        self.vertical = VerticalConv(window, dim, num_filters=num_v_filters)
        conv_dim = self.horizontal.output_dim + self.vertical.output_dim
        self.fc = Linear(conv_dim, dim)
        self.dropout = Dropout(dropout)
        # Output embedding reads [sequence part ; user part] (2d wide).
        self.output_embedding = Embedding(num_items + 1, 2 * dim, padding_idx=0)
        self._windows: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._seen: list[set[int]] | None = None
        self._batch_size = 128

    # ------------------------------------------------------------------
    # Representation
    # ------------------------------------------------------------------
    def _convolve(self, windows: np.ndarray) -> Tensor:
        """Map ``(batch, window)`` item ids to the fused ``(batch, 2d)`` state."""
        embedded = self.dropout(self.item_embedding(windows))
        conv = concatenate([self.horizontal(embedded), self.vertical(embedded)], axis=-1)
        return self.fc(conv).relu()

    def _joint_state(self, users: np.ndarray, windows: np.ndarray) -> Tensor:
        sequence_part = self._convolve(windows)
        user_part = self.user_embedding(users)
        return concatenate([sequence_part, user_part], axis=-1)

    def _candidate_scores(self, state: Tensor, items: np.ndarray) -> Tensor:
        """``state`` is ``(batch, 2d)``; ``items`` is ``(batch,)`` or ``(batch, C)``."""
        embeddings = self.output_embedding(items)
        if embeddings.ndim == 2:
            return (state * embeddings).sum(axis=-1)
        return (embeddings @ state.reshape(state.shape[0], state.shape[1], 1))[:, :, 0]

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _build_windows(self, train_sequences: list[np.ndarray]) -> None:
        users, windows, targets = [], [], []
        for user, seq in enumerate(train_sequences):
            if len(seq) < 2:
                continue
            padded = np.concatenate([np.zeros(self.window, dtype=np.int64), seq])
            for position in range(1, len(seq)):
                end = self.window + position
                users.append(user)
                windows.append(padded[end - self.window:end])
                targets.append(seq[position])
        self._windows = (
            np.asarray(users, dtype=np.int64),
            np.asarray(windows, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
        )

    def training_batches(self, rng: np.random.Generator):
        """Yield training batches for one epoch (Trainer protocol)."""
        if self._windows is None:
            raise RuntimeError("call fit() first (training windows not built)")
        users, windows, targets = self._windows
        order = rng.permutation(len(users))
        for start in range(0, len(order), self._batch_size):
            index = order[start:start + self._batch_size]
            negatives = rng.integers(1, self.num_items + 1,
                                     size=(len(index), self.num_negatives))
            for row, user in enumerate(users[index]):
                for col in range(self.num_negatives):
                    while int(negatives[row, col]) in self._seen[user]:
                        negatives[row, col] = rng.integers(1, self.num_items + 1)
            yield users[index], windows[index], targets[index], negatives

    def training_loss(self, batch) -> Tensor:
        """Loss of one batch (Trainer protocol)."""
        users, windows, targets, negatives = batch
        state = self._joint_state(users, windows)
        positive_scores = self._candidate_scores(state, targets)
        negative_scores = self._candidate_scores(state, negatives)
        logits = concatenate([positive_scores.reshape(-1, 1), negative_scores], axis=1)
        labels = np.zeros(logits.shape, dtype=np.float32)
        labels[:, 0] = 1.0
        return F.binary_cross_entropy_with_logits(logits, labels)

    def fit(self, dataset: InteractionDataset, split: LeaveOneOutSplit,
            train_config: TrainConfig | None = None) -> TrainingHistory:
        """Train with validation-HR@10 early stopping."""
        config = train_config or TrainConfig()
        train_sequences = split.train_sequences()
        self._build_windows(train_sequences)
        self._seen = [set(int(i) for i in seq) for seq in train_sequences]
        self._batch_size = max(config.batch_size, 128)
        evaluator = validation_evaluator(dataset, split, config.seed)
        validate = lambda: evaluator.evaluate(self, stage="valid").hr10
        return Trainer(self, config, validate=validate).fit()

    def score(self, users: np.ndarray, inputs: np.ndarray,
              candidates: np.ndarray) -> np.ndarray:
        """Score candidate items (Recommender protocol)."""
        windows = np.asarray(inputs)[:, -self.window:]
        with no_grad():
            state = self._joint_state(users, windows)
            scores = self._candidate_scores(state, candidates)
        return scores.data.astype(np.float64)
