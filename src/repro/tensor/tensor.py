"""Core :class:`Tensor` type with reverse-mode automatic differentiation.

The design follows the classic tape-based approach: every differentiable
operation returns a new ``Tensor`` that stores references to its parents and
a closure computing the local vector-Jacobian product.  Calling
:meth:`Tensor.backward` performs a topological sort of the recorded graph and
accumulates gradients into every leaf with ``requires_grad=True``.

All operations are vectorised with numpy and support broadcasting; the
gradient of a broadcast operand is summed back to the operand's shape by
:func:`_unbroadcast`.

Dense forward computation — matmuls, elementwise ufuncs, reductions, and
the dtype policy of :class:`Tensor` construction — routes through the
active compute backend (:mod:`repro.tensor.backend`), selected with
``use_backend``.  The default backend reproduces the pre-seam numpy
behaviour bit for bit; gradients always run in plain numpy because tape
closures may outlive any backend scope.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Sequence

import numpy as np

from repro.tensor.backend import active_backend

#: Historical float dtype of the substrate; the *active* default now comes
#: from ``active_backend().dtype`` (float32 for the default backend).
DEFAULT_DTYPE = np.float32

_GRAD_ENABLED = True
_INFERENCE_MODE = False

# Monotone count of Tensor objects constructed since import.  The benchmark
# harness (repro.utils.bench) reads deltas of this counter to report how many
# tensor temporaries a code path materialises — the fused kernels exist
# precisely to drive this number down on the training hot path.
_TENSOR_ALLOCS = 0

# Monotone count of *tape nodes* recorded since import: tensors that joined
# the autograd graph with parents and (eventually) a backward closure.  The
# serving stack asserts a delta of zero per request — an inference forward
# must never build a tape — and the serve benchmark reports it alongside
# wall time.
_GRAPH_NODES = 0


def tensor_allocs() -> int:
    """Return the number of :class:`Tensor` objects constructed so far."""
    return _TENSOR_ALLOCS


def graph_nodes() -> int:
    """Return the number of autograd tape nodes recorded so far.

    A tape node is a tensor recorded with parents (an interior node of the
    backward graph).  Leaf tensors — parameters, inputs, no-grad results —
    are never counted, so a delta of zero across a code region proves the
    region allocated no graph at all.
    """
    return _GRAPH_NODES


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


@contextlib.contextmanager
def inference_mode():
    """No-tape context for serving forwards (like ``torch.inference_mode``).

    Strictly stronger than :func:`no_grad`: gradients are disabled *and*
    :func:`is_inference_mode` reports ``True`` so stochastic train-time
    behaviour keyed on it (dropout masks, Gumbel noise) can hard-disable
    itself even if a module was accidentally left in training mode.  The
    serve engine (:mod:`repro.serve`) wraps every forward in this context;
    ``tests/serve`` asserts a :func:`graph_nodes` delta of zero inside it.
    """
    global _GRAD_ENABLED, _INFERENCE_MODE
    previous_grad, previous_inference = _GRAD_ENABLED, _INFERENCE_MODE
    _GRAD_ENABLED = False
    _INFERENCE_MODE = True
    try:
        yield
    finally:
        _GRAD_ENABLED = previous_grad
        _INFERENCE_MODE = previous_inference


def is_inference_mode() -> bool:
    """Return whether an :func:`inference_mode` scope is active."""
    return _INFERENCE_MODE


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded onto the tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (gradient of a broadcast result) back to ``shape``.

    Broadcasting may (a) prepend dimensions and (b) stretch size-1 axes; the
    adjoint of both is summation over the corresponding axes.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


def _matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` through the active backend (folded GEMM, optional pooling)."""
    return active_backend().matmul(a, b)


class Tensor:
    """An n-dimensional array that supports reverse-mode differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array.  Floating point data defaults
        to ``float32``; integer data keeps its integer dtype (useful for
        index tensors).
    requires_grad:
        When ``True`` and gradients are enabled, operations involving this
        tensor are recorded so :meth:`backward` can populate :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    __array_priority__ = 100  # make numpy defer to Tensor's reflected ops

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        global _TENSOR_ALLOCS
        _TENSOR_ALLOCS += 1
        arr = np.asarray(data)
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        else:
            # The backend's dtype policy.  Every backend preserves explicit
            # float32 and float64 arrays (float64 so gradcheck can run in
            # full precision; float32 so a non-default backend never
            # silently promotes the training data) — except the strict
            # ``float32`` backend, which demotes float64 on entry.
            arr = active_backend().coerce(arr)
        self.data: np.ndarray = arr
        self.requires_grad = bool(requires_grad) and arr.dtype.kind == "f"
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._op = ""

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """Numpy dtype of the underlying array."""
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Transpose with reversed axes (differentiable)."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        """The single element of a scalar tensor as a Python float."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Differentiable dtype cast (gradient cast back on the way down)."""
        out = self._make(self.data.astype(dtype), (self,), "astype")
        if out.requires_grad:
            original_dtype = self.data.dtype

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad.astype(original_dtype))

            out._backward = backward
        return out

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...], op: str) -> "Tensor":
        global _GRAPH_NODES
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        # Explicit dtype: op results keep the dtype the computation produced.
        # The backend's coerce() policy applies at data *entry* (``__init__``
        # with dtype=None), not to intermediate results — otherwise a strict
        # reduced-precision backend would demote explicit float64 work.
        out = Tensor(data, requires_grad=False, dtype=data.dtype)
        out.requires_grad = requires and out.data.dtype.kind == "f"
        if out.requires_grad:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._op = op
            _GRAPH_NODES += 1
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=self.data.dtype)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad is self.data else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of some scalar loss w.r.t. this tensor.  Defaults to
            ``1`` which requires this tensor to be a scalar.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                if node._parents:
                    # Interior nodes do not need to keep their gradient.
                    node.grad = None
                node._backward = None
                node._parents = ()

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)
        out = self._make(active_backend().binary(np.add, self.data, other.data),
                         (self, other), "add")
        if out.requires_grad:
            a, b = self, other

            def backward(grad: np.ndarray) -> None:
                if a.requires_grad:
                    a._accumulate(_unbroadcast(grad, a.shape))
                if b.requires_grad:
                    b._accumulate(_unbroadcast(grad, b.shape))

            out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make(active_backend().unary(np.negative, self.data), (self,), "neg")
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                self._accumulate(-grad)

            out._backward = backward
        return out

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)
        out = self._make(active_backend().binary(np.subtract, self.data, other.data),
                         (self, other), "sub")
        if out.requires_grad:
            a, b = self, other

            def backward(grad: np.ndarray) -> None:
                if a.requires_grad:
                    a._accumulate(_unbroadcast(grad, a.shape))
                if b.requires_grad:
                    b._accumulate(_unbroadcast(-grad, b.shape))

            out._backward = backward
        return out

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other, dtype=self.data.dtype) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)
        out = self._make(active_backend().binary(np.multiply, self.data, other.data),
                         (self, other), "mul")
        if out.requires_grad:
            a, b = self, other

            def backward(grad: np.ndarray) -> None:
                if a.requires_grad:
                    a._accumulate(_unbroadcast(grad * b.data, a.shape))
                if b.requires_grad:
                    b._accumulate(_unbroadcast(grad * a.data, b.shape))

            out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)
        out = self._make(active_backend().binary(np.divide, self.data, other.data),
                         (self, other), "div")
        if out.requires_grad:
            a, b = self, other

            def backward(grad: np.ndarray) -> None:
                if a.requires_grad:
                    a._accumulate(_unbroadcast(grad / b.data, a.shape))
                if b.requires_grad:
                    b._accumulate(_unbroadcast(-grad * a.data / (b.data * b.data), b.shape))

            out._backward = backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other, dtype=self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log composition")
        out = self._make(self.data ** exponent, (self,), "pow")
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

            out._backward = backward
        return out

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)
        out = self._make(_matmul(self.data, other.data), (self, other), "matmul")
        if out.requires_grad:
            a, b = self, other

            def backward(grad: np.ndarray) -> None:
                if a.requires_grad:
                    if b.data.ndim == 1:
                        ga = np.multiply.outer(grad, b.data) if grad.ndim else grad * b.data
                    else:
                        ga = _matmul(grad, np.swapaxes(b.data, -1, -2))
                    if a.data.ndim == 1 and ga.ndim > 1:
                        ga = ga.sum(axis=tuple(range(ga.ndim - 1)))
                    a._accumulate(_unbroadcast(ga, a.shape))
                if b.requires_grad:
                    if a.data.ndim == 1:
                        gb = np.multiply.outer(a.data, grad) if grad.ndim else a.data * grad
                    elif b.data.ndim == 2 and a.data.ndim > 2:
                        # Batched (..., n, k) @ (k, m): fold the batch axes
                        # into one GEMM instead of materialising a stacked
                        # (..., k, m) gradient and reducing it afterwards.
                        flat_a = a.data.reshape(-1, a.data.shape[-1])
                        flat_g = grad.reshape(-1, grad.shape[-1])
                        b._accumulate(flat_a.T @ flat_g)
                        gb = None
                    else:
                        gb = np.swapaxes(a.data, -1, -2) @ grad
                    if gb is not None:
                        if b.data.ndim == 1 and gb.ndim > 1:
                            gb = gb.sum(axis=tuple(range(gb.ndim - 1)))
                        b._accumulate(_unbroadcast(gb, b.shape))

            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """Differentiable reshape (accepts ints or a single tuple)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out = self._make(self.data.reshape(shape), (self,), "reshape")
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad.reshape(original))

            out._backward = backward
        return out

    def transpose(self, *axes) -> "Tensor":
        """Differentiable axis permutation (defaults to full reversal)."""
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out = self._make(self.data.transpose(axes), (self,), "transpose")
        if out.requires_grad:
            inverse = np.argsort(axes)

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad.transpose(inverse))

            out._backward = backward
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Differentiable swap of two axes."""
        out = self._make(np.swapaxes(self.data, axis1, axis2), (self,), "swapaxes")
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                self._accumulate(np.swapaxes(grad, axis1, axis2))

            out._backward = backward
        return out

    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data
        elif isinstance(index, tuple):
            index = tuple(i.data if isinstance(i, Tensor) else i for i in index)
        out = self._make(self.data[index], (self,), "getitem")
        if out.requires_grad:
            shape, dtype = self.shape, self.data.dtype

            def backward(grad: np.ndarray) -> None:
                full = np.zeros(shape, dtype=dtype)
                np.add.at(full, index, grad)
                self._accumulate(full)

            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable summation over ``axis`` (or all elements)."""
        out = self._make(active_backend().sum(self.data, axis=axis, keepdims=keepdims),
                         (self,), "sum")
        if out.requires_grad:
            shape = self.shape

            def backward(grad: np.ndarray) -> None:
                g = grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    g = np.expand_dims(g, tuple(a % len(shape) for a in axes))
                self._accumulate(np.broadcast_to(g, shape))

            out._backward = backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable mean over ``axis`` (or all elements)."""
        count = self.data.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable maximum; tied maxima share the gradient."""
        out_data = active_backend().max(self.data, axis=axis, keepdims=keepdims)
        out = self._make(out_data, (self,), "max")
        if out.requires_grad:
            shape = self.shape

            def backward(grad: np.ndarray) -> None:
                g = grad
                o = out_data
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(a % len(shape) for a in axes)
                    g = np.expand_dims(g, axes)
                    o = np.expand_dims(o, axes)
                mask = (self.data == o).astype(self.data.dtype)
                # Split the gradient evenly among ties to keep it well defined.
                counts = mask.sum(
                    axis=axis if axis is not None else None, keepdims=True
                )
                self._accumulate(mask * g / counts)

            out._backward = backward
        return out

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable minimum (via ``-max(-x)``)."""
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = active_backend().unary(np.exp, self.data)
        out = self._make(out_data, (self,), "exp")
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * out_data)

            out._backward = backward
        return out

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out = self._make(active_backend().unary(np.log, self.data), (self,), "log")
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad / self.data)

            out._backward = backward
        return out

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        out_data = active_backend().unary(np.sqrt, self.data)
        out = self._make(out_data, (self,), "sqrt")
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * 0.5 / out_data)

            out._backward = backward
        return out

    def relu(self) -> "Tensor":
        """Elementwise ``max(x, 0)``."""
        out = self._make(active_backend().binary(np.maximum, self.data, 0), (self,), "relu")
        if out.requires_grad:
            mask = (self.data > 0).astype(self.data.dtype)

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * mask)

            out._backward = backward
        return out

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        backend = active_backend()
        out_data = backend.unary(np.exp, backend.unary(np.negative, self.data))
        np.add(out_data, 1.0, out=out_data)
        np.reciprocal(out_data, out=out_data)
        out = self._make(out_data, (self,), "sigmoid")
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * out_data * (1.0 - out_data))

            out._backward = backward
        return out

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = active_backend().unary(np.tanh, self.data)
        out = self._make(out_data, (self,), "tanh")
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * (1.0 - out_data * out_data))

            out._backward = backward
        return out

    def abs(self) -> "Tensor":
        """Elementwise absolute value (sign subgradient)."""
        out = self._make(active_backend().unary(np.abs, self.data), (self,), "abs")
        if out.requires_grad:
            sign = np.sign(self.data)

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * sign)

            out._backward = backward
        return out

    def clip(self, low: float | None = None, high: float | None = None) -> "Tensor":
        """Clamp to ``[low, high]``; gradient passes only inside the range."""
        out = self._make(np.clip(self.data, low, high), (self,), "clip")
        if out.requires_grad:
            mask = np.ones_like(self.data)
            if low is not None:
                mask = mask * (self.data >= low)
            if high is not None:
                mask = mask * (self.data <= high)

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * mask)

            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable; return plain numpy bool arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        return self.data > _as_array(other)

    def __lt__(self, other):
        return self.data < _as_array(other)

    def __ge__(self, other):
        return self.data >= _as_array(other)

    def __le__(self, other):
        return self.data <= _as_array(other)


# ----------------------------------------------------------------------
# Free functions mirroring the numpy namespace
# ----------------------------------------------------------------------
def tensor(data, requires_grad: bool = False, dtype=None) -> Tensor:
    """Create a :class:`Tensor` (convenience mirror of the constructor)."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(shape, requires_grad: bool = False, dtype=None) -> Tensor:
    """Tensor of zeros (in the active backend's float dtype by default)."""
    dtype = active_backend().dtype if dtype is None else dtype
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False, dtype=None) -> Tensor:
    """Tensor of ones (in the active backend's float dtype by default)."""
    dtype = active_backend().dtype if dtype is None else dtype
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)


def arange(*args, dtype=np.int64) -> Tensor:
    """Integer range tensor (non-differentiable by construction)."""
    return Tensor(np.arange(*args, dtype=dtype))


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data)
    out.requires_grad = requires and data.dtype.kind == "f"
    if out.requires_grad:
        global _GRAPH_NODES
        _GRAPH_NODES += 1
        out._parents = tuple(t for t in tensors if t.requires_grad)
        out._op = "concatenate"
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    t._accumulate(grad[tuple(slicer)])

        out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data)
    out.requires_grad = requires and data.dtype.kind == "f"
    if out.requires_grad:
        global _GRAPH_NODES
        _GRAPH_NODES += 1
        out._parents = tuple(t for t in tensors if t.requires_grad)
        out._op = "stack"

        def backward(grad: np.ndarray) -> None:
            slices = np.moveaxis(grad, axis, 0)
            for t, g in zip(tensors, slices):
                if t.requires_grad:
                    t._accumulate(g)

        out._backward = backward
    return out


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable selection: ``condition ? a : b``.

    ``condition`` is treated as a constant boolean mask.
    """
    cond = _as_array(condition).astype(bool)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    data = np.where(cond, a.data, b.data)
    requires = _GRAD_ENABLED and (a.requires_grad or b.requires_grad)
    out = Tensor(data)
    out.requires_grad = requires and data.dtype.kind == "f"
    if out.requires_grad:
        global _GRAPH_NODES
        _GRAPH_NODES += 1
        out._parents = tuple(t for t in (a, b) if t.requires_grad)
        out._op = "where"

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(np.where(cond, grad, 0.0), a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(np.where(cond, 0.0, grad), b.shape))

        out._backward = backward
    return out


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise maximum (gradient split evenly on ties)."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    return where(a.data >= b.data, a, b)
