"""Composite differentiable operations built from :class:`~repro.tensor.Tensor` primitives.

These mirror the pieces of ``torch.nn.functional`` that the ISRec
reproduction needs: numerically stable softmax / log-softmax, sequence
cross-entropy with padding masks, cosine similarity (Eq. 6 of the paper),
binary cross-entropy for the pairwise baselines, and the BPR losses used by
BPR-MF / FPMC / GRU4Rec+.

The hot-path trio — :func:`softmax`, :func:`log_softmax`,
:func:`cross_entropy` — dispatches to the fused single-tape-node kernels in
:mod:`repro.tensor.fused` by default; the original multi-op compositions are
kept as ``*_composed`` reference implementations (selected globally with
``fused.use_fused(False)``) and every fused kernel is gradcheck-verified
against them.
"""

from __future__ import annotations

import numpy as np

from repro.obs.registry import record_kernel_dispatch
from repro.tensor import fused
from repro.tensor.tensor import Tensor, where


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` (fused kernel by default)."""
    if fused.fused_enabled():
        record_kernel_dispatch("softmax", True)
        return fused.softmax(x, axis=axis)
    record_kernel_dispatch("softmax", False)
    return softmax_composed(x, axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis`` (fused kernel by default)."""
    if fused.fused_enabled():
        record_kernel_dispatch("log_softmax", True)
        return fused.log_softmax(x, axis=axis)
    record_kernel_dispatch("log_softmax", False)
    return log_softmax_composed(x, axis=axis)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  mask: np.ndarray | None = None) -> Tensor:
    """Mean negative log-likelihood of integer ``targets`` under ``logits``.

    Parameters
    ----------
    logits:
        ``(..., num_classes)`` unnormalised scores.
    targets:
        Integer array broadcastable to ``logits.shape[:-1]``.
    mask:
        Optional ``{0,1}`` float array matching ``targets``; positions with
        ``0`` are excluded from the mean (used for padded positions in a
        sequence, Eq. 13 of the paper).

    Dispatches to the fused single-node kernel by default; the composed
    reference is :func:`cross_entropy_composed`.
    """
    if fused.fused_enabled():
        record_kernel_dispatch("cross_entropy", True)
        return fused.cross_entropy(logits, targets, mask)
    record_kernel_dispatch("cross_entropy", False)
    return cross_entropy_composed(logits, targets, mask)


def info_nce(anchors: Tensor, positives: Tensor, temperature: float = 0.2) -> Tensor:
    """Symmetric InfoNCE between two ``(N, D)`` views (Sec. "intent contrastive").

    Both views are L2-normalised, all ``N x N`` pairwise cosine similarities
    are divided by ``temperature``, and the loss averages the row-direction
    and column-direction cross-entropies with the matching pair on the
    diagonal as the positive class.  Dispatches to the fused single-node
    kernel by default; the composed reference is :func:`info_nce_composed`.
    """
    if fused.fused_enabled():
        record_kernel_dispatch("info_nce", True)
        return fused.info_nce(anchors, positives, temperature=temperature)
    record_kernel_dispatch("info_nce", False)
    return info_nce_composed(anchors, positives, temperature=temperature)


# ----------------------------------------------------------------------
# Composed reference implementations (kept for gradcheck / benchmarking)
# ----------------------------------------------------------------------
def softmax_composed(x: Tensor, axis: int = -1) -> Tensor:
    """Reference softmax built from ~4 tape primitives."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax_composed(x: Tensor, axis: int = -1) -> Tensor:
    """Reference log-softmax built from ~5 tape primitives."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy_composed(logits: Tensor, targets: np.ndarray,
                           mask: np.ndarray | None = None) -> Tensor:
    """Reference cross-entropy built on the full log-softmax graph."""
    targets = np.asarray(targets)
    logp = log_softmax_composed(logits, axis=-1)
    flat = logp.reshape(-1, logp.shape[-1])
    rows = np.arange(flat.shape[0])
    picked = flat[rows, targets.reshape(-1)]
    nll = -picked
    if mask is None:
        return nll.mean()
    mask_flat = np.asarray(mask, dtype=flat.dtype).reshape(-1)
    total = float(mask_flat.sum())
    if total <= 0:
        raise ValueError("cross_entropy mask excludes every position")
    return (nll * Tensor(mask_flat)).sum() * (1.0 / total)


def info_nce_composed(anchors: Tensor, positives: Tensor,
                      temperature: float = 0.2) -> Tensor:
    """Reference InfoNCE built from normalise/matmul/cross-entropy primitives."""
    if anchors.ndim != 2 or anchors.shape != positives.shape:
        raise ValueError(
            "info_nce expects matching (N, D) views, got "
            f"{anchors.shape} and {positives.shape}")
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    a_hat = l2_normalize(anchors, axis=-1)
    p_hat = l2_normalize(positives, axis=-1)
    logits = (a_hat @ p_hat.swapaxes(0, 1)) * (1.0 / temperature)
    targets = np.arange(anchors.shape[0])
    row_direction = cross_entropy_composed(logits, targets)
    col_direction = cross_entropy_composed(logits.swapaxes(0, 1), targets)
    return (row_direction + col_direction) * 0.5


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp along ``axis``."""
    peak = Tensor(x.data.max(axis=axis, keepdims=True))
    out = (x - peak).exp().sum(axis=axis, keepdims=True).log() + peak
    if not keepdims:
        out = out.reshape(tuple(s for i, s in enumerate(out.shape) if i != axis % x.ndim))
    return out


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean binary cross-entropy on raw ``logits`` (numerically stable)."""
    targets_t = Tensor(np.asarray(targets, dtype=logits.data.dtype))
    # log(1 + exp(-|x|)) + max(x, 0) - x * t  (the standard stable form)
    abs_logits = logits.abs()
    softplus = ((-abs_logits).exp() + 1.0).log()
    positive_part = logits.relu()
    return (softplus + positive_part - logits * targets_t).mean()


def bpr_loss(positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
    """Bayesian personalised ranking loss: ``-mean(log sigmoid(pos - neg))``."""
    diff = positive_scores - negative_scores
    # -log(sigmoid(d)) == softplus(-d)
    abs_diff = diff.abs()
    softplus = ((-abs_diff).exp() + 1.0).log()
    return (softplus + (-diff).relu()).mean()


def bpr_max_loss(positive_scores: Tensor, negative_scores: Tensor,
                 regularization: float = 1.0) -> Tensor:
    """BPR-max loss from the GRU4Rec+ paper (Hidasi & Karatzoglou 2018).

    Softmax weights over negatives concentrate the ranking penalty on the
    hardest negatives and a score regulariser keeps negative scores small.

    Parameters
    ----------
    positive_scores:
        ``(batch,)`` scores of ground-truth items.
    negative_scores:
        ``(batch, num_negatives)`` scores of sampled negatives.
    """
    weights = softmax(negative_scores, axis=-1)
    diff = positive_scores.reshape(-1, 1) - negative_scores
    ranked = (weights * diff.sigmoid()).sum(axis=-1)
    loss = -(ranked + 1e-8).log().mean()
    reg = (weights * negative_scores * negative_scores).sum(axis=-1).mean()
    return loss + regularization * reg


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-8) -> Tensor:
    """Cosine similarity along ``axis`` with broadcasting (Eq. 6).

    The paper adopts cosine rather than inner-product similarity to avoid
    the mode-collapse where only large-norm concepts are ever activated.
    """
    dot = (a * b).sum(axis=axis)
    norm_a = ((a * a).sum(axis=axis) + eps).sqrt()
    norm_b = ((b * b).sum(axis=axis) + eps).sqrt()
    return dot / (norm_a * norm_b)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-8) -> Tensor:
    """Scale vectors along ``axis`` to unit L2 norm."""
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps).sqrt()
    return x / norm


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Return ``x`` with positions where ``mask`` is true replaced by ``value``.

    The fill value broadcasts as a scalar through :func:`where`, so no
    full-size constant tensor is allocated (``mask`` itself may also be any
    shape broadcastable to ``x``, e.g. a shared ``(T, T)`` causal mask
    against ``(B, h, T, T)`` attention scores).
    """
    fill = Tensor(np.asarray(value, dtype=x.data.dtype))
    return where(np.asarray(mask, dtype=bool), fill, x)


def mean_squared_error(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error against constant targets."""
    diff = predictions - Tensor(np.asarray(targets, dtype=predictions.data.dtype))
    return (diff * diff).mean()
