"""Numerical gradient checking used to validate every analytic gradient.

The test-suite calls :func:`gradcheck` on each primitive and composite
operation; it compares the autograd gradient against a central finite
difference computed in float64.

:func:`gradcheck` is backend-proof: it always upcasts floating inputs to
float64 copies and runs both the analytic and the numerical pass under the
precision-preserving default backend, so the same suites pass unchanged —
with the same tolerances — even when the session runs under
``use_backend("float32")`` (or ``REPRO_BACKEND=float32``), whose dtype
policy would otherwise demote the float64 probe tensors and drown the
finite-difference signal in rounding noise.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.backend import use_backend
from repro.tensor.tensor import Tensor


def numerical_gradient(func: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-5) -> np.ndarray:
    """Central finite-difference gradient of ``func`` w.r.t. ``inputs[index]``.

    ``func`` must return a scalar :class:`Tensor`.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = float(func(*inputs).data)
        flat[i] = original - eps
        lower = float(func(*inputs).data)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def _as_float64(tensor_input: Tensor) -> Tensor:
    """Upcast a float tensor to a float64 copy.

    Tensors already in float64 (and non-float tensors) pass through as the
    *same* object — case builders routinely close over a parameter and also
    list it as an input, so identity must be preserved whenever no upcast is
    required.
    """
    if tensor_input.data.dtype.kind != "f" or tensor_input.data.dtype == np.float64:
        return tensor_input
    upcast = Tensor(tensor_input.data.astype(np.float64),
                    requires_grad=tensor_input.requires_grad)
    return upcast


def gradcheck(func: Callable[..., Tensor], inputs: Sequence[Tensor],
              eps: float = 1e-5, atol: float = 1e-4, rtol: float = 1e-3) -> bool:
    """Verify analytic gradients of ``func`` against finite differences.

    Parameters
    ----------
    func:
        Function of the given tensors returning a scalar :class:`Tensor`.
    inputs:
        Tensors; those with ``requires_grad=True`` are checked.  Floating
        inputs are upcast to float64 copies internally (and the default
        backend is forced for the duration), so the comparison always runs
        in full precision regardless of the inputs' dtype or the session's
        active backend.

    Returns
    -------
    bool
        ``True`` when every checked gradient matches.  Raises
        ``AssertionError`` with a diagnostic message otherwise.
    """
    with use_backend("numpy"):
        inputs = [_as_float64(tensor_input) for tensor_input in inputs]
        for tensor_input in inputs:
            if tensor_input.requires_grad:
                tensor_input.zero_grad()
        output = func(*inputs)
        if output.data.size != 1:
            raise ValueError("gradcheck requires a scalar-valued function")
        output.backward()
        for i, tensor_input in enumerate(inputs):
            if not tensor_input.requires_grad:
                continue
            analytic = tensor_input.grad
            if analytic is None:
                raise AssertionError(f"input {i} received no gradient")
            numeric = numerical_gradient(func, inputs, i, eps=eps)
            if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
                worst = np.max(np.abs(analytic - numeric))
                raise AssertionError(
                    f"gradient mismatch for input {i}: max abs diff {worst:.3e}\n"
                    f"analytic:\n{analytic}\nnumeric:\n{numeric}"
                )
    return True
