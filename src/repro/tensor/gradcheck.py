"""Numerical gradient checking used to validate every analytic gradient.

The test-suite calls :func:`gradcheck` on each primitive and composite
operation; it compares the autograd gradient against a central finite
difference computed in float64.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(func: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-5) -> np.ndarray:
    """Central finite-difference gradient of ``func`` w.r.t. ``inputs[index]``.

    ``func`` must return a scalar :class:`Tensor`.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = float(func(*inputs).data)
        flat[i] = original - eps
        lower = float(func(*inputs).data)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def gradcheck(func: Callable[..., Tensor], inputs: Sequence[Tensor],
              eps: float = 1e-5, atol: float = 1e-4, rtol: float = 1e-3) -> bool:
    """Verify analytic gradients of ``func`` against finite differences.

    Parameters
    ----------
    func:
        Function of the given tensors returning a scalar :class:`Tensor`.
    inputs:
        Tensors; those with ``requires_grad=True`` are checked.  They should
        be float64 for the comparison to be meaningful.

    Returns
    -------
    bool
        ``True`` when every checked gradient matches.  Raises
        ``AssertionError`` with a diagnostic message otherwise.
    """
    for tensor_input in inputs:
        if tensor_input.requires_grad:
            tensor_input.zero_grad()
    output = func(*inputs)
    if output.data.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    output.backward()
    for i, tensor_input in enumerate(inputs):
        if not tensor_input.requires_grad:
            continue
        analytic = tensor_input.grad
        if analytic is None:
            raise AssertionError(f"input {i} received no gradient")
        numeric = numerical_gradient(func, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
