"""Fused single-tape-node kernels for the training/inference hot path.

Every ISRec training step pays for a full-vocabulary softmax cross-entropy at
every sequence position (Eq. 13) and ``L`` causal attention layers (Eq. 3).
The composed implementations in :mod:`repro.tensor.functional` build these
from 6–10 tiny tape operations each, so a single ``(B, T, V)`` loss
materialises half a dozen full-size temporaries plus backward closures, and
attention allocates a full ``(B, h, T, T)`` fill tensor per layer just to
mask.

This module provides the same operations as *one* tape node each, with a
hand-derived vector-Jacobian product:

- :func:`softmax` / :func:`log_softmax` — one shifted exp forward, the
  classic ``y * (g - <g, y>)`` / ``g - softmax * sum(g)`` backward.
- :func:`cross_entropy` — one logsumexp forward; the backward is the
  textbook ``softmax - one_hot`` scatter, never materialising the log-prob
  graph.
- :func:`attention` — masked scaled-dot-product attention: mask + softmax +
  weighted sum as a single op with a custom VJP (optionally applying an
  inverted-dropout mask to the attention weights inside the kernel).
- :func:`layer_norm` — normalisation + affine as one node with the standard
  three-term backward.

The composed implementations stay in the tree as the reference; every fused
kernel is gradcheck-verified against them (``tests/tensor/test_fused.py``).
The module-level :func:`use_fused` switch lets callers (and the benchmark
harness, ``repro.utils.bench``) select either path at runtime.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.tensor.backend import active_backend
from repro.tensor.tensor import Tensor

_NEG_INF = -1e9

_FUSED_ENABLED = True


def fused_enabled() -> bool:
    """Return whether consumers should dispatch to the fused kernels."""
    return _FUSED_ENABLED


@contextlib.contextmanager
def use_fused(enabled: bool = True):
    """Context manager selecting the fused (default) or composed path.

    ``with use_fused(False):`` routes :mod:`repro.tensor.functional`
    dispatchers and the nn-layer consumers (attention, layer norm) through
    the original composed implementations — the benchmark harness uses this
    to time both paths on identical inputs.
    """
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _FUSED_ENABLED = previous


def _node(data: np.ndarray, parents: tuple[Tensor, ...], op: str, backward) -> Tensor:
    """Record ``data`` as a single tape node with a custom VJP closure."""
    out = parents[0]._make(np.asarray(data), parents, op)
    if out.requires_grad:
        out._backward = backward
    return out


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` as one tape node."""
    backend = active_backend()
    y = backend.binary(np.subtract, x.data,
                       x.data.max(axis=axis, keepdims=True))
    np.exp(y, out=y)
    y /= y.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        # dL/dx = y * (g - <g, y>): the softmax Jacobian applied in O(n).
        inner = (grad * y).sum(axis=axis, keepdims=True)
        x._accumulate(y * (grad - inner))

    return _node(y, (x,), "fused_softmax", backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis`` as one tape node."""
    shifted = active_backend().binary(np.subtract, x.data,
                                      x.data.max(axis=axis, keepdims=True))
    np.subtract(
        shifted,
        np.log(np.exp(shifted).sum(axis=axis, keepdims=True)),
        out=shifted,
    )

    def backward(grad: np.ndarray) -> None:
        # dL/dx = g - softmax * sum(g); softmax is recovered as exp(out).
        x._accumulate(grad - np.exp(shifted) * grad.sum(axis=axis, keepdims=True))

    return _node(shifted, (x,), "fused_log_softmax", backward)


# ----------------------------------------------------------------------
# Cross-entropy (Eq. 13)
# ----------------------------------------------------------------------
def cross_entropy(logits: Tensor, targets: np.ndarray,
                  mask: np.ndarray | None = None,
                  suppress_index: int | None = None) -> Tensor:
    """Mean NLL of integer ``targets`` under ``logits`` as one tape node.

    Forward is a single logsumexp; backward is ``softmax - one_hot`` scaled
    by each position's weight, written straight into one ``(N, V)`` buffer —
    the log-prob graph of the composed reference is never materialised.
    Semantics (padding ``mask``, all-masked :class:`ValueError`) match
    :func:`repro.tensor.functional.cross_entropy_composed`.

    ``suppress_index`` treats one vocabulary column as ``-inf`` inside the
    kernel (zero probability, zero gradient).  This replaces the
    ``logits + suppress`` constant-add that ``all_item_logits`` needs to
    ban the padding item, avoiding one full ``(B, T, V)`` temporary and
    tape node per training step.
    """
    targets = np.asarray(targets)
    data = logits.data
    vocabulary = data.shape[-1]
    flat = data.reshape(-1, vocabulary)
    count = flat.shape[0]
    index = targets.reshape(-1)
    rows = np.arange(count)

    # peak may include the suppressed column; any value >= the true maximum
    # keeps the exp shift stable, so no masked max pass is needed.
    peak = flat.max(axis=-1, keepdims=True)
    shifted = active_backend().binary(np.subtract, flat, peak)
    np.exp(shifted, out=shifted)
    if suppress_index is not None:
        shifted[:, suppress_index] = 0.0
    denominator = shifted.sum(axis=-1)
    # nll_i = logsumexp(x_i) - x_i[target_i]
    nll = np.log(denominator) + peak[:, 0] - flat[rows, index]

    if mask is None:
        weights = np.full(count, 1.0 / count, dtype=data.dtype)
    else:
        mask_flat = np.asarray(mask, dtype=data.dtype).reshape(-1)
        total = float(mask_flat.sum())
        if total <= 0:
            raise ValueError("cross_entropy mask excludes every position")
        weights = mask_flat * (1.0 / total)
    value = np.asarray(nll @ weights, dtype=data.dtype)

    def backward(grad: np.ndarray) -> None:
        # Reuse the exp buffer: probs = shifted / denom, then the scatter.
        # The suppressed column already holds probability zero, and masked
        # positions (weight 0) contribute nothing after the final scale.
        probs = shifted
        probs /= denominator[:, None]
        probs[rows, index] -= 1.0
        if suppress_index is not None:
            probs[:, suppress_index] = 0.0
        probs *= (weights * float(grad))[:, None]
        # In-place shape assignment: `probs` owns its buffer, so this avoids
        # the defensive copy _accumulate makes for reshape views.
        probs.shape = data.shape
        logits._accumulate(probs)

    return _node(value, (logits,), "fused_cross_entropy", backward)


# ----------------------------------------------------------------------
# Intent-contrastive InfoNCE (ICSRec-style auxiliary objective)
# ----------------------------------------------------------------------
def info_nce(anchors: Tensor, positives: Tensor,
             temperature: float = 0.2, eps: float = 1e-8) -> Tensor:
    """Symmetric InfoNCE over two views of a batch as one tape node.

    ``anchors`` and ``positives`` are ``(N, D)`` intent representations of
    two augmented views of the same ``N`` sequences.  Both are L2-normalised
    (same ``sqrt(sum + eps)`` form as
    :func:`repro.tensor.functional.l2_normalize`), every pairwise cosine
    similarity is divided by ``temperature``, and the loss is the mean of
    the row-wise and column-wise cross-entropies with the diagonal as the
    positive class — in-batch negatives in both directions.

    The composed reference (:func:`repro.tensor.functional.info_nce_composed`)
    builds the same value from ~20 tape primitives; here forward is one
    normalised matmul plus two logsumexps and backward is a single
    hand-derived VJP: with ``G = grad/(2N) · (P_row + P_col) - grad/N · I``
    scaled by ``1/temperature``, ``dA_hat = G @ P_hat`` and
    ``dP_hat = Gᵀ @ A_hat``, each pulled back through the normalisation via
    ``dX = inv_norm · (dX_hat - <dX_hat, X_hat> X_hat)``.
    """
    a = anchors.data
    p = positives.data
    if a.ndim != 2 or a.shape != p.shape:
        raise ValueError(
            f"info_nce expects matching (N, D) views, got {a.shape} and {p.shape}")
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")

    backend = active_backend()
    inv_a = 1.0 / np.sqrt((a * a).sum(axis=-1, keepdims=True) + eps)
    inv_p = 1.0 / np.sqrt((p * p).sum(axis=-1, keepdims=True) + eps)
    a_hat = a * inv_a
    p_hat = p * inv_p
    logits = backend.matmul(a_hat, p_hat.T)
    logits *= 1.0 / temperature
    count = logits.shape[0]
    rows = np.arange(count)
    diagonal = logits[rows, rows].copy()
    peak_row = logits.max(axis=1)
    lse_row = np.log(np.exp(logits - peak_row[:, None]).sum(axis=1)) + peak_row
    peak_col = logits.max(axis=0)
    lse_col = np.log(np.exp(logits - peak_col[None, :]).sum(axis=0)) + peak_col
    value = np.asarray(
        0.5 * ((lse_row - diagonal).mean() + (lse_col - diagonal).mean()),
        dtype=a.dtype)

    def backward(grad: np.ndarray) -> None:
        # Row/column softmaxes recovered stably from the cached logsumexps.
        score = np.exp(logits - lse_row[:, None])
        score += np.exp(logits - lse_col[None, :])
        score *= 0.5 / count
        score[rows, rows] -= 1.0 / count
        score *= float(grad) / temperature
        if anchors.requires_grad:
            d_hat = backend.matmul(score, p_hat)
            anchors._accumulate(inv_a * (
                d_hat - (d_hat * a_hat).sum(axis=-1, keepdims=True) * a_hat))
        if positives.requires_grad:
            d_hat = backend.matmul(score.T, a_hat)
            positives._accumulate(inv_p * (
                d_hat - (d_hat * p_hat).sum(axis=-1, keepdims=True) * p_hat))

    return _node(value, (anchors, positives), "fused_info_nce", backward)


# ----------------------------------------------------------------------
# Masked scaled-dot-product attention (Eq. 3)
# ----------------------------------------------------------------------
def attention(q: Tensor, k: Tensor, v: Tensor, mask: np.ndarray | None = None,
              scale: float = 1.0, dropout_mask: np.ndarray | None = None) -> Tensor:
    """``softmax(mask(q kᵀ · scale)) @ v`` as a single tape node.

    Parameters
    ----------
    q, k, v:
        ``(..., T, head_dim)`` projections (any matching leading batch/head
        axes).
    mask:
        Optional boolean array broadcastable to the ``(..., T, T)`` score
        matrix, ``True`` where attention is forbidden.  Masking happens
        in-place on the score buffer — no full-size fill tensor is ever
        allocated.  A fully-masked row degrades to uniform weights exactly
        like the composed ``masked_fill`` + softmax reference, and its
        gradient w.r.t. ``q``/``k`` is zero (masked scores are constants).
    scale:
        Multiplier applied to the raw scores (``1/sqrt(head_dim)``).
    dropout_mask:
        Optional pre-scaled inverted-dropout multiplier applied to the
        attention weights inside the kernel (constant w.r.t. the gradient).
    """
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)

    backend = active_backend()
    scores = backend.matmul(q.data, np.swapaxes(k.data, -1, -2))
    if scale != 1.0:
        scores *= scale
    if mask is not None:
        np.copyto(scores, _NEG_INF, where=mask)
    scores -= scores.max(axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=-1, keepdims=True)
    weights = scores  # (..., T, T), the post-softmax attention weights
    applied = weights if dropout_mask is None else weights * dropout_mask
    out = backend.matmul(applied, v.data)

    def backward(grad: np.ndarray) -> None:
        if v.requires_grad:
            v._accumulate(np.swapaxes(applied, -1, -2) @ grad)
        if q.requires_grad or k.requires_grad:
            dw = grad @ np.swapaxes(v.data, -1, -2)
            if dropout_mask is not None:
                dw *= dropout_mask
            ds = weights * (dw - (dw * weights).sum(axis=-1, keepdims=True))
            if mask is not None:
                # Masked scores are constants: no gradient may leak through,
                # matching the composed masked_fill reference (this only
                # matters for fully-masked rows, where weights are nonzero).
                np.copyto(ds, 0.0, where=mask)
            if scale != 1.0:
                ds *= scale
            if q.requires_grad:
                q._accumulate(ds @ k.data)
            if k.requires_grad:
                k._accumulate(np.swapaxes(ds, -1, -2) @ q.data)

    return _node(out, (q, k, v), "fused_attention", backward)


# ----------------------------------------------------------------------
# Layer normalisation
# ----------------------------------------------------------------------
def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Last-axis normalisation + affine as one tape node.

    Matches :class:`repro.nn.LayerNorm`'s composed forward (biased variance,
    ``eps`` inside the square root) and uses the standard three-term
    backward ``dx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat))``.
    """
    backend = active_backend()
    mean = x.data.mean(axis=-1, keepdims=True)
    xhat = backend.binary(np.subtract, x.data, mean)
    variance = np.mean(xhat * xhat, axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(variance + eps)
    xhat *= inv_std
    out = backend.binary(np.multiply, xhat, gamma.data)
    np.add(out, beta.data, out=out)

    def backward(grad: np.ndarray) -> None:
        reduce_axes = tuple(range(grad.ndim - 1))
        if gamma.requires_grad:
            gamma._accumulate((grad * xhat).sum(axis=reduce_axes))
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=reduce_axes))
        if x.requires_grad:
            dxhat = grad * gamma.data
            x._accumulate(inv_std * (
                dxhat
                - dxhat.mean(axis=-1, keepdims=True)
                - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
            ))

    return _node(out, (x, gamma, beta), "fused_layer_norm", backward)
