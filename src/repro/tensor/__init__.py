"""A small reverse-mode automatic differentiation engine built on numpy.

This package is the substrate that replaces PyTorch in the ISRec
reproduction.  It provides:

- :class:`~repro.tensor.tensor.Tensor` — an n-dimensional array that records
  the operations applied to it and can back-propagate gradients.
- :mod:`~repro.tensor.functional` — composite differentiable operations
  (softmax, cross-entropy, cosine similarity, ...).
- :mod:`~repro.tensor.fused` — fused single-tape-node kernels for the
  training hot path (softmax, cross-entropy, masked attention, layer norm)
  with hand-derived VJPs; toggled globally via ``fused.use_fused``.
- :mod:`~repro.tensor.gradcheck` — numerical gradient checking used by the
  test-suite to validate every analytic gradient.
- :mod:`~repro.tensor.backend` — the pluggable dense-compute seam: every
  matmul/elementwise/reduction/RNG/allocation call dispatches through the
  active :class:`~repro.tensor.backend.Backend` (default numpy float32,
  plus ``float64``, strict ``float32``, and pooled-allocation ``arena``
  backends), selected with ``use_backend`` just like ``use_fused``.

Every operation supports numpy-style broadcasting; gradients of broadcast
operands are reduced back to the operand's shape.
"""

from repro.tensor.backend import (
    ArenaBackend, Backend, active_backend, array_allocs, available_backends,
    set_backend, use_backend,
)
from repro.tensor.tensor import (
    Tensor, no_grad, inference_mode, is_grad_enabled, is_inference_mode,
    tensor, tensor_allocs, graph_nodes, zeros, ones, arange,
)
from repro.tensor import backend
from repro.tensor import functional
from repro.tensor import fused
from repro.tensor.fused import use_fused, fused_enabled
from repro.tensor.gradcheck import gradcheck, numerical_gradient

__all__ = [
    "Tensor",
    "tensor",
    "tensor_allocs",
    "graph_nodes",
    "backend",
    "Backend",
    "ArenaBackend",
    "active_backend",
    "array_allocs",
    "available_backends",
    "set_backend",
    "use_backend",
    "zeros",
    "ones",
    "arange",
    "no_grad",
    "inference_mode",
    "is_grad_enabled",
    "is_inference_mode",
    "functional",
    "fused",
    "use_fused",
    "fused_enabled",
    "gradcheck",
    "numerical_gradient",
]
