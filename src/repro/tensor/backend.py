"""Pluggable dense-compute backends for the autograd substrate.

Every dense operation of :class:`~repro.tensor.tensor.Tensor` and the fused
kernels (:mod:`repro.tensor.fused`) routes through one small seam — the
active :class:`Backend` — instead of calling numpy directly.  A backend
owns five concerns:

- **dtype policy** (:meth:`Backend.coerce`, :attr:`Backend.dtype`) — what
  floating dtype new tensors and freshly initialised parameters use, and
  which input dtypes pass through untouched;
- **matmul** (:meth:`Backend.matmul`) — including the batched-by-2D GEMM
  fold of the projection hot path;
- **elementwise** (:meth:`Backend.unary` / :meth:`Backend.binary`) —
  ufunc application for exp/log/add/mul/...;
- **reductions** (:meth:`Backend.sum` / :meth:`Backend.max`);
- **RNG and allocation** (:meth:`Backend.random`, :meth:`Backend.empty`) —
  dropout-mask draws and scratch-buffer allocation.

Four backends ship:

``numpy`` (default)
    Bit-compatible with the pre-seam substrate: float32 compute dtype,
    explicit float32/float64 arrays preserved, every op the exact numpy
    expression the code used before the seam existed.
``float64``
    Full-precision reference: parameters initialise in float64 and implicit
    floats coerce to float64.  Explicit float32 arrays are *preserved*, not
    silently promoted (see :meth:`Backend.coerce`).  This is the baseline
    the float32 speedup in ``BENCH_backends.json`` is measured against.
``float32``
    Strict reduced precision: float64 arrays are demoted to float32 on
    tensor construction, so e.g. a float64 checkpoint runs in float32.
    Training was already float32-native, so this backend is numerically
    identical to ``numpy`` on the training path; the strictness matters
    when float64 data leaks in.
``arena``
    A pooling wrapper over the default backend: inside an
    :meth:`ArenaBackend.scope`, forward-pass scratch buffers (matmul
    outputs, elementwise results) are served from a free-list keyed by
    ``(shape, dtype)`` and recycled when the scope exits, attacking the
    allocation counters (:func:`~repro.tensor.tensor.tensor_allocs` /
    :func:`array_allocs`) on the serving hot path.  Pooling only engages
    inside :func:`~repro.tensor.tensor.inference_mode` — with a tape being
    recorded, buffers may outlive the scope, so the arena then behaves
    exactly like its base backend.

Select a backend for a scope with :func:`use_backend` (mirroring
``fused.use_fused``), per-process with :func:`set_backend` or the
``REPRO_BACKEND`` environment variable (read at import; the CI backend
matrix runs tier-1 under ``REPRO_BACKEND=float32``).
"""

from __future__ import annotations

import contextlib
import os
import threading

import numpy as np

from repro.obs.registry import record_backend_dispatch

# Monotone count of fresh numpy result buffers allocated through the seam
# (matmul/elementwise/reduction/RNG results, ``empty``, and arena pool
# misses).  The arena benchmark reads deltas of this counter: a pool hit
# does not increment it, so the drop between base and arena runs is the
# allocation win.
_ARRAY_ALLOCS = 0


def array_allocs() -> int:
    """Number of numpy buffers allocated through the backend seam so far."""
    return _ARRAY_ALLOCS


class Backend:
    """Default numpy backend; the base class every other backend refines.

    The method bodies here are the *exact* expressions the substrate used
    before the seam existed, so the default backend is bit-compatible with
    the pre-seam code by construction.
    """

    #: Registry name (``use_backend(name)``).
    name = "numpy"
    #: Floating dtype for parameter init and implicit tensor data.
    dtype = np.float32

    # ------------------------------------------------------------------
    # dtype policy
    # ------------------------------------------------------------------
    def coerce(self, arr: np.ndarray) -> np.ndarray:
        """Apply this backend's dtype policy to a freshly built array.

        Explicit float32 and float64 arrays always pass through untouched —
        float64 because gradcheck depends on full-precision round-trips,
        float32 because demoting-free pass-through is what keeps a
        non-default backend from silently promoting the (float32) training
        data.  Other float dtypes (float16, longdouble) and non-numeric
        data coerce to :attr:`dtype`; integer and boolean arrays are kept
        for index/mask tensors.
        """
        kind = arr.dtype.kind
        if kind == "f":
            if arr.dtype == np.float32 or arr.dtype == np.float64:
                return arr
            return arr.astype(self.dtype)
        if kind in "iub":
            return arr
        return arr.astype(self.dtype)

    # ------------------------------------------------------------------
    # Allocation (arena hook points)
    # ------------------------------------------------------------------
    def empty(self, shape, dtype) -> np.ndarray:
        """Uninitialised scratch buffer (pooled under the arena backend)."""
        global _ARRAY_ALLOCS
        _ARRAY_ALLOCS += 1
        return np.empty(shape, dtype=dtype)

    # ------------------------------------------------------------------
    # Matmul
    # ------------------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``a @ b`` with batched-by-2D products folded into a single GEMM.

        ``(..., n, k) @ (k, m)`` runs noticeably faster as one
        ``(prod(...) * n, k) @ (k, m)`` BLAS call than as numpy's gufunc
        loop of per-batch products — this shape is the projection/linear
        hot path (``states @ W``) of every training step.
        """
        global _ARRAY_ALLOCS
        _ARRAY_ALLOCS += 1
        record_backend_dispatch(self.name, "matmul")
        if a.ndim > 2 and b.ndim == 2:
            return (a.reshape(-1, a.shape[-1]) @ b).reshape(*a.shape[:-1], b.shape[-1])
        return a @ b

    # ------------------------------------------------------------------
    # Elementwise
    # ------------------------------------------------------------------
    def unary(self, ufunc, x: np.ndarray) -> np.ndarray:
        """Apply a unary ufunc (``np.exp``, ``np.log``, ``np.tanh``, ...)."""
        global _ARRAY_ALLOCS
        _ARRAY_ALLOCS += 1
        return ufunc(x)

    def binary(self, ufunc, a, b) -> np.ndarray:
        """Apply a binary ufunc (``np.add``, ``np.multiply``, ...)."""
        global _ARRAY_ALLOCS
        _ARRAY_ALLOCS += 1
        return ufunc(a, b)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        """Summation over ``axis`` (or all elements)."""
        global _ARRAY_ALLOCS
        _ARRAY_ALLOCS += 1
        return x.sum(axis=axis, keepdims=keepdims)

    def max(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        """Maximum over ``axis`` (or all elements)."""
        global _ARRAY_ALLOCS
        _ARRAY_ALLOCS += 1
        return x.max(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # RNG
    # ------------------------------------------------------------------
    def random(self, rng: np.random.Generator, shape, dtype) -> np.ndarray:
        """Uniform [0, 1) draws, natively in ``dtype`` when the generator can.

        Drawing float32 directly halves the RNG bandwidth of every dropout
        mask on the float32 training hot path.
        """
        global _ARRAY_ALLOCS
        _ARRAY_ALLOCS += 1
        if dtype == np.float32:
            return rng.random(shape, dtype=np.float32)
        return rng.random(shape)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} dtype={np.dtype(self.dtype).name}>"


class NumpyBackend(Backend):
    """Alias of the base backend under its registry name."""


class Float64Backend(Backend):
    """Full-precision backend: float64 parameters and implicit data."""

    name = "float64"
    dtype = np.float64


class Float32Backend(Backend):
    """Strict float32 backend: float64 tensor data is demoted on entry."""

    name = "float32"
    dtype = np.float32

    def coerce(self, arr: np.ndarray) -> np.ndarray:
        kind = arr.dtype.kind
        if kind == "f":
            if arr.dtype == np.float32:
                return arr
            return arr.astype(np.float32)
        if kind in "iub":
            return arr
        return arr.astype(np.float32)


class ArenaBackend(Backend):
    """Pooled-allocation wrapper recycling inference-forward buffers.

    Inside an active :meth:`scope` *and* :func:`~repro.tensor.tensor.inference_mode`,
    matmul and (same-dtype float) elementwise results are written into
    ``out=`` buffers served from a free-list keyed by ``(shape, dtype)``.
    When the scope exits, every buffer leased during it returns to the
    pool, so a steady-state serving loop reaches zero fresh allocations
    per request for its dense intermediates.

    Anything that must outlive the scope (a cached encoder state, returned
    scores) must be copied out before the scope closes — the serving
    engine does exactly that.  Outside a scope, or while gradients are
    enabled (a tape would keep buffers alive indefinitely), the arena
    degrades to its base backend: plain allocations, nothing pooled.

    The pool is bounded (``max_buffers`` per ``(shape, dtype)`` key); the
    instrumentation counters ``backend.arena.hits`` / ``backend.arena.misses``
    record pool effectiveness when telemetry is on.
    """

    name = "arena"
    dtype = np.float32

    def __init__(self, base: Backend | None = None, max_buffers: int = 64):
        self._base = base or NumpyBackend()
        self.dtype = self._base.dtype
        self._pool: dict[tuple, list[np.ndarray]] = {}
        self._leased: list[np.ndarray] = []
        self._active = 0
        self._lock = threading.RLock()
        self.max_buffers = int(max_buffers)
        self.hits = 0
        self.misses = 0

    def coerce(self, arr: np.ndarray) -> np.ndarray:
        return self._base.coerce(arr)

    # ------------------------------------------------------------------
    # Pool mechanics
    # ------------------------------------------------------------------
    def _pooling(self) -> bool:
        from repro.tensor.tensor import is_inference_mode

        return self._active > 0 and is_inference_mode()

    def _acquire(self, shape: tuple, dtype) -> np.ndarray:
        key = (shape, np.dtype(dtype).str)
        with self._lock:
            stack = self._pool.get(key)
            if stack:
                buffer = stack.pop()
                self.hits += 1
            else:
                global _ARRAY_ALLOCS
                _ARRAY_ALLOCS += 1
                buffer = np.empty(shape, dtype=dtype)
                self.misses += 1
            self._leased.append(buffer)
        return buffer

    @contextlib.contextmanager
    def scope(self):
        """Lease pooled buffers until exit, then recycle them all.

        Scopes nest; buffers return to the pool when the outermost scope
        exits.  Safe only around code whose dense intermediates do not
        escape the scope un-copied (the inference hot path).
        """
        with self._lock:
            self._active += 1
        try:
            yield self
        finally:
            with self._lock:
                self._active -= 1
                if self._active == 0:
                    for buffer in self._leased:
                        key = (buffer.shape, buffer.dtype.str)
                        stack = self._pool.setdefault(key, [])
                        if len(stack) < self.max_buffers:
                            stack.append(buffer)
                    self._leased.clear()

    def pool_stats(self) -> dict:
        """Hit/miss counts and current pool occupancy."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "pooled_buffers": sum(len(s) for s in self._pool.values()),
                    "leased": len(self._leased)}

    # ------------------------------------------------------------------
    # Pooled op implementations
    # ------------------------------------------------------------------
    def empty(self, shape, dtype) -> np.ndarray:
        if self._pooling():
            return self._acquire(tuple(shape), dtype)
        return self._base.empty(shape, dtype)

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # Fallback paths delegate to the base backend, which records its own
        # dispatch — so (arena - numpy) matmul counts = pooled products.
        record_backend_dispatch(self.name, "matmul")
        if not self._pooling() or a.dtype != b.dtype or a.dtype.kind != "f":
            return self._base.matmul(a, b)
        if a.ndim > 2 and b.ndim == 2:
            flat = a.reshape(-1, a.shape[-1])
            out = self._acquire((flat.shape[0], b.shape[1]), a.dtype)
            np.matmul(flat, b, out=out)
            return out.reshape(*a.shape[:-1], b.shape[-1])
        if a.ndim == 2 and b.ndim == 1:
            out = self._acquire((a.shape[0],), a.dtype)
            return np.matmul(a, b, out=out)
        if a.ndim == 2 and b.ndim == 2:
            out = self._acquire((a.shape[0], b.shape[1]), a.dtype)
            return np.matmul(a, b, out=out)
        if a.ndim > 2 and b.ndim > 2:
            try:
                batch = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
            except ValueError:
                return self._base.matmul(a, b)
            out = self._acquire(batch + (a.shape[-2], b.shape[-1]), a.dtype)
            return np.matmul(a, b, out=out)
        return self._base.matmul(a, b)

    def binary(self, ufunc, a, b) -> np.ndarray:
        if (self._pooling() and isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.dtype == b.dtype and a.dtype.kind == "f"):
            try:
                shape = np.broadcast_shapes(a.shape, b.shape)
            except ValueError:
                return self._base.binary(ufunc, a, b)
            out = self._acquire(shape, a.dtype)
            return ufunc(a, b, out=out)
        return self._base.binary(ufunc, a, b)

    def unary(self, ufunc, x: np.ndarray) -> np.ndarray:
        if self._pooling() and isinstance(x, np.ndarray) and x.dtype.kind == "f":
            out = self._acquire(x.shape, x.dtype)
            return ufunc(x, out=out)
        return self._base.unary(ufunc, x)


#: Backend constructors by registry name (``default`` aliases ``numpy``).
BACKENDS = {
    "numpy": NumpyBackend,
    "default": NumpyBackend,
    "float64": Float64Backend,
    "float32": Float32Backend,
    "arena": ArenaBackend,
}


def available_backends() -> tuple[str, ...]:
    """Registry names accepted by :func:`use_backend` / :func:`set_backend`."""
    return tuple(sorted(BACKENDS))


def _resolve(backend: "str | Backend") -> Backend:
    if isinstance(backend, Backend):
        return backend
    try:
        return BACKENDS[backend]()
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; available: "
            f"{', '.join(available_backends())}") from None


_GLOBAL_BACKEND: Backend = NumpyBackend()


class _ThreadState(threading.local):
    def __init__(self):
        self.stack: list[Backend] = []


_THREAD = _ThreadState()


def active_backend() -> Backend:
    """The backend dense ops currently dispatch through (thread-aware)."""
    stack = _THREAD.stack
    if stack:
        return stack[-1]
    return _GLOBAL_BACKEND


def set_backend(backend: "str | Backend") -> Backend:
    """Install the process-global default backend; returns the previous one.

    Thread-scoped :func:`use_backend` overrides still win within their
    scope.  Accepts a registry name or a :class:`Backend` instance.
    """
    global _GLOBAL_BACKEND
    previous = _GLOBAL_BACKEND
    _GLOBAL_BACKEND = _resolve(backend)
    return previous


@contextlib.contextmanager
def use_backend(backend: "str | Backend" = "numpy"):
    """Context manager routing dense ops through ``backend`` for this thread.

    Mirrors ``fused.use_fused``: the override is scoped and restores the
    previous backend on exit; other threads are unaffected.  Yields the
    resolved :class:`Backend` instance so callers can reach backend-specific
    extras (e.g. :meth:`ArenaBackend.scope`)::

        with use_backend("float64"):
            model = ISRec(...)          # parameters initialise in float64
    """
    resolved = _resolve(backend)
    _THREAD.stack.append(resolved)
    try:
        yield resolved
    finally:
        _THREAD.stack.pop()


# Honour the environment selector at import (the CI backend matrix sets
# REPRO_BACKEND=float32 for its second tier-1 leg).
_ENV_BACKEND = os.environ.get("REPRO_BACKEND", "").strip()
if _ENV_BACKEND:
    set_backend(_ENV_BACKEND)
