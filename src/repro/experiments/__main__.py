"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro.experiments table2 [--profiles beauty steam] [--scale 0.6]
    python -m repro.experiments table3
    python -m repro.experiments table5 --epochs 60
    python -m repro.experiments figure2 --profiles beauty
    python -m repro.experiments intents --profiles beauty epinions --jobs 3
    python -m repro.experiments graphs --jobs 4
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    ExperimentConfig,
    render_table3,
    render_table4,
    run_figure2,
    run_figure3,
    run_figure4,
    run_graph_comparison,
    run_intent_objectives,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)

ARTEFACTS = ("table2", "table3", "table4", "table5", "table6",
             "figure2", "figure3", "figure4", "intents", "graphs")


def main(argv: list[str] | None = None) -> None:
    """Parse CLI args and regenerate the requested artefact(s)."""
    parser = argparse.ArgumentParser(prog="python -m repro.experiments",
                                     description=__doc__)
    parser.add_argument("artefact", choices=ARTEFACTS + ("all",))
    parser.add_argument("--profiles", nargs="+", default=None,
                        help="dataset profiles (default: the paper's choice)")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--dim", type=int, default=48)
    parser.add_argument("--epochs", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--checkpoint-dir", default=None,
                        help="enable fault tolerance: checkpoint every "
                             "trained model and completed run under this "
                             "directory, and resume a partially completed "
                             "sweep on restart")
    parser.add_argument("--jobs", type=int, default=1,
                        help="train up to N sweep cells in parallel "
                             "processes (default: 1 = serial); results and "
                             "the resume ledger are identical either way — "
                             "see docs/parallelism.md")
    parser.add_argument("--telemetry-dir", default=None,
                        help="enable observability: stream a machine-"
                             "readable <artefact>.telemetry.jsonl file "
                             "(per-step training records, eval latency, run "
                             "results) plus a .summary.json under this "
                             "directory; inspect with `make "
                             "telemetry-report FILE=...`")
    args = parser.parse_args(argv)

    config = ExperimentConfig(dim=args.dim, epochs=args.epochs,
                              eval_every=5, patience=4, seed=args.seed,
                              checkpoint_dir=args.checkpoint_dir,
                              telemetry_dir=args.telemetry_dir)
    artefacts = ARTEFACTS if args.artefact == "all" else (args.artefact,)
    for artefact in artefacts:
        print(f"\n### Regenerating {artefact} ###\n", flush=True)
        if artefact == "table2":
            print(run_table2(profiles=args.profiles, config=config,
                             scale=args.scale, progress=True,
                             jobs=args.jobs).render())
        elif artefact == "table3":
            print(render_table3(run_table3(profiles=args.profiles,
                                           scale=args.scale,
                                           telemetry_dir=args.telemetry_dir)))
        elif artefact == "table4":
            print(render_table4(run_table4(profiles=args.profiles,
                                           scale=args.scale,
                                           telemetry_dir=args.telemetry_dir)))
        elif artefact == "table5":
            print(run_table5(profiles=args.profiles, config=config,
                             scale=args.scale, progress=True,
                             jobs=args.jobs).render())
        elif artefact == "table6":
            print(run_table6(config=config, scale=args.scale,
                             progress=True, jobs=args.jobs).render())
        elif artefact == "figure2":
            print(run_figure2(profiles=args.profiles, config=config,
                              scale=args.scale, progress=True,
                              jobs=args.jobs).render())
        elif artefact == "figure3":
            print(run_figure3(config=config, scale=args.scale,
                              progress=True, jobs=args.jobs).render())
        elif artefact == "figure4":
            print(run_figure4(config=config, scale=args.scale,
                              progress=True, jobs=args.jobs).render())
        elif artefact == "intents":
            print(run_intent_objectives(profiles=args.profiles, config=config,
                                        scale=args.scale, progress=True,
                                        jobs=args.jobs).render())
        elif artefact == "graphs":
            print(run_graph_comparison(profiles=args.profiles, config=config,
                                       scale=args.scale, progress=True,
                                       jobs=args.jobs).render())


if __name__ == "__main__":
    main()
