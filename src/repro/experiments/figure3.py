"""Figure 3: sensitivity to the intent feature dimensionality d' (§4.6.1).

The paper sweeps d' on Beauty and observes performance peaking around 8
then declining (overfitting).  This runner reproduces the sweep and returns
the metric series for every d'.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core import ISRecConfig
from repro.eval.metrics import MetricReport
from repro.experiments.common import (
    ExperimentConfig,
    SweepState,
    telemetry_scope,
)
from repro.utils.charts import ascii_chart
from repro.utils.tables import ResultTable

DEFAULT_DIMS = [2, 4, 8, 16, 32]


@dataclass
class SweepResult:
    """Shared container for the Fig. 3 / Fig. 4 hyper-parameter sweeps."""

    parameter: str
    profile: str
    results: dict[int, MetricReport] = field(default_factory=dict)

    def series(self, metric: str) -> list[tuple[int, float]]:
        """``(parameter value, metric)`` pairs in ascending order."""
        return [(value, self.results[value][metric]) for value in sorted(self.results)]

    def best(self, metric: str = "HR@10") -> int:
        """Parameter value with the best ``metric``."""
        return max(self.results, key=lambda value: self.results[value][metric])

    def render(self, chart: bool = True) -> str:
        """Text table of every metric across the sweep (+ an ASCII chart)."""
        values = sorted(self.results)
        table = ResultTable(
            ["Metric", *[f"{self.parameter}={value}" for value in values]],
            title=f"{self.parameter} sweep on {self.profile}",
        )
        for metric in ("HR@1", "HR@5", "HR@10", "NDCG@5", "NDCG@10", "MRR"):
            table.add_row([metric, *[self.results[value][metric] for value in values]])
        rendered = table.render()
        if chart and len(values) >= 2:
            rendered += "\n\n" + ascii_chart(
                self.series("HR@10"),
                x_label=self.parameter, y_label="HR@10",
                title=f"HR@10 vs {self.parameter} ({self.profile})",
            )
        return rendered


def run_figure3(dims: list[int] | None = None, profile: str = "beauty",
                config: ExperimentConfig | None = None,
                base: ISRecConfig | None = None,
                scale: float = 1.0,
                progress: bool = False,
                jobs: int = 1) -> SweepResult:
    """Train ISRec for every intent dimensionality d'."""
    from repro.parallel.sweep import SweepCell, run_cells

    dims = dims or DEFAULT_DIMS
    config = config or ExperimentConfig()
    base = base or ISRecConfig(dim=config.dim)
    sweep = SweepState.for_artefact(config.checkpoint_dir, "figure3")
    cells = [SweepCell(key=f"{profile}/ISRec/d'={intent_dim}", model="ISRec",
                       profile=profile, scale=scale, config=config,
                       isrec_config=replace(base, intent_dim=intent_dim))
             for intent_dim in dims]

    def report(cell: "SweepCell", run) -> None:
        if progress:
            print(f"[figure3] d'={cell.isrec_config.intent_dim:3d} "
                  f"HR@10={run.report.hr10:.4f}", flush=True)

    outcome = SweepResult(parameter="d'", profile=profile)
    with telemetry_scope(config.telemetry_dir, "figure3"):
        results = run_cells(cells, jobs=jobs, sweep=sweep, progress=report)
    for cell, intent_dim in zip(cells, dims):
        outcome.results[intent_dim] = results[cell.key].report
    return outcome
