"""Shared experiment machinery: model factory, single-run driver, and
crash-safe sweep resumption.

Every table/figure runner builds models through :func:`build_model` and
trains/evaluates them through :func:`run_model`, so hyper-parameters are
consistent across experiments (the paper's Appendix B regime, scaled down).

Long sweeps (Table 2's 11 models x 5 datasets, the ablation grids) survive
faults through two cooperating layers:

- :class:`SweepState` — a JSON ledger, written atomically after every
  completed (model, dataset) run, that :func:`run_model` consults so a
  restarted sweep skips finished runs and replays only the missing ones;
- per-model epoch checkpoints — when :attr:`ExperimentConfig.checkpoint_dir`
  is set, each model's ``TrainConfig`` gets its own checkpoint sub-directory,
  so even the run that was interrupted mid-training resumes from its newest
  valid epoch checkpoint instead of epoch 0.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path


from repro import obs
from repro.core import ISRec, ISRecConfig, build_variant
from repro.data import (
    InteractionDataset,
    LeaveOneOutSplit,
    default_max_len,
    load_dataset,
    split_leave_one_out,
)
from repro.eval import MetricReport, RankingEvaluator
from repro.models import (
    BERT4Rec,
    BERT4RecConcept,
    BPRMF,
    Caser,
    DGCF,
    FM,
    FPMC,
    GRU4Rec,
    GRU4RecPlus,
    KTUP,
    NCF,
    PopRec,
    SASRec,
    SASRecConcept,
)
from repro.train import TrainConfig
from repro.utils import Timer, set_seed

# Paper Table 2 column order.
MODEL_NAMES: list[str] = [
    "PopRec", "BPR-MF", "NCF", "FPMC", "GRU4Rec", "GRU4Rec+",
    "DGCF", "Caser", "SASRec", "BERT4Rec", "ISRec",
]

ABLATION_NAMES: list[str] = [
    "ISRec", "w/o GNN", "w/o GNN&Intent", "BERT4Rec + concept", "SASRec + concept",
]


@dataclass
class ExperimentConfig:
    """Run-wide knobs shared by all table/figure runners.

    ``checkpoint_dir`` switches on fault tolerance: each trained model
    checkpoints its epochs under ``<checkpoint_dir>/train/<run key>`` and
    every runner records finished (model, dataset) runs in a
    :class:`SweepState` ledger there, so a killed sweep resumes where it
    stopped instead of restarting from scratch.

    ``telemetry_dir`` switches on observability (``docs/observability.md``):
    every runner streams a machine-readable
    ``<telemetry_dir>/<artefact>.telemetry.jsonl`` file (per-step training
    records, eval latencies, run results) plus an end-of-run
    ``.summary.json`` next to its printed results.
    """

    dim: int = 48
    epochs: int = 100
    lr: float = 3e-3
    eval_every: int = 5
    patience: int = 4
    batch_size: int = 64
    seed: int = 0
    num_negatives: int = 100
    verbose: bool = False
    checkpoint_dir: str | None = None
    telemetry_dir: str | None = None
    # Intent-contrastive auxiliary objective (docs/training-objectives.md);
    # 0.0 keeps the plain next-item loss bit-exactly.
    contrastive_weight: float = 0.0
    contrastive_temperature: float = 0.2

    def train_config(self, run_key: str | None = None) -> TrainConfig:
        """Project these settings onto a :class:`TrainConfig`.

        ``run_key`` (e.g. ``"beauty/SASRec"``) namespaces the per-model epoch
        checkpoint directory when ``checkpoint_dir`` is configured.
        """
        train_dir = None
        if self.checkpoint_dir is not None and run_key is not None:
            safe = run_key.replace(" ", "_")
            train_dir = str(Path(self.checkpoint_dir) / "train" / safe)
        return TrainConfig(epochs=self.epochs, batch_size=self.batch_size,
                           lr=self.lr, eval_every=self.eval_every,
                           patience=self.patience, seed=self.seed,
                           verbose=self.verbose, checkpoint_dir=train_dir,
                           contrastive_weight=self.contrastive_weight,
                           contrastive_temperature=self.contrastive_temperature)


@dataclass
class RunResult:
    """Outcome of training + testing one model on one dataset."""

    model_name: str
    dataset_name: str
    report: MetricReport
    seconds: float = 0.0
    extras: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON form stored in the :class:`SweepState` ledger."""
        return {"model_name": self.model_name,
                "dataset_name": self.dataset_name,
                "report": self.report.as_dict(),
                "seconds": float(self.seconds),
                "extras": dict(self.extras)}

    @classmethod
    def from_dict(cls, payload: dict) -> "RunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(model_name=payload["model_name"],
                   dataset_name=payload["dataset_name"],
                   report=MetricReport.from_dict(payload["report"]),
                   seconds=float(payload.get("seconds", 0.0)),
                   extras=dict(payload.get("extras", {})))


class SweepState:
    """Atomic JSON ledger of completed runs within one table/figure sweep.

    One ledger file per artefact (``table2.json``, ``figure3.json``, ...).
    Every completed run is flushed to disk immediately (tmp file +
    ``os.replace``), so a crash between runs loses at most the run that was
    in flight — and that run's own epoch checkpoints still allow it to
    resume mid-training.  A corrupt ledger is renamed aside rather than
    trusted, so resumption degrades to a fresh sweep instead of crashing.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.completed: dict[str, dict] = {}
        if self.path.exists():
            try:
                payload = json.loads(self.path.read_text())
                self.completed = dict(payload.get("completed", {}))
            except (json.JSONDecodeError, OSError):
                backup = self.path.with_suffix(self.path.suffix + ".corrupt")
                os.replace(self.path, backup)
                self.completed = {}

    def __contains__(self, key: str) -> bool:
        return key in self.completed

    def get(self, key: str) -> RunResult | None:
        """Previously recorded result for ``key``, if any."""
        payload = self.completed.get(key)
        return None if payload is None else RunResult.from_dict(payload)

    def record(self, key: str, run: RunResult) -> None:
        """Record a finished run and flush the ledger atomically."""
        self.completed[key] = run.to_dict()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"completed": self.completed}, indent=1)
        fd, tmp_name = tempfile.mkstemp(dir=self.path.parent,
                                        prefix=self.path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    @classmethod
    def for_artefact(cls, checkpoint_dir: str | Path | None,
                     artefact: str) -> "SweepState | None":
        """Ledger for one artefact, or ``None`` when checkpointing is off."""
        if checkpoint_dir is None:
            return None
        return cls(Path(checkpoint_dir) / f"{artefact}.json")


@contextlib.contextmanager
def telemetry_scope(telemetry_dir: str | Path | None, artefact: str):
    """Stream one artefact's telemetry to ``<telemetry_dir>/<artefact>...``.

    The runners wrap their sweep loop in this: with ``telemetry_dir`` unset
    it is a no-op yielding ``None``; otherwise telemetry is enabled for the
    scope and the yielded value is the path of the JSONL stream (a sibling
    ``<artefact>.telemetry.summary.json`` is written on exit).
    """
    if telemetry_dir is None:
        yield None
        return
    path = Path(telemetry_dir) / f"{artefact}.telemetry.jsonl"
    with obs.telemetry_run(path, run=artefact):
        yield path


def build_model(name: str, dataset: InteractionDataset, max_len: int,
                config: ExperimentConfig,
                isrec_config: ISRecConfig | None = None):
    """Instantiate a recommender by its paper name."""
    num_users = dataset.num_users
    num_items = dataset.num_items
    dim = config.dim
    if name == "PopRec":
        return PopRec(max_len=max_len)
    if name == "BPR-MF":
        return BPRMF(num_users, num_items, dim=dim, max_len=max_len)
    if name == "NCF":
        return NCF(num_users, num_items, dim=dim, max_len=max_len)
    if name == "FPMC":
        return FPMC(num_users, num_items, dim=dim, max_len=max_len)
    if name == "GRU4Rec":
        return GRU4Rec(num_items, dim=dim, max_len=max_len)
    if name == "GRU4Rec+":
        return GRU4RecPlus(num_items, dim=dim, max_len=max_len)
    if name == "DGCF":
        return DGCF(num_users, num_items, dim=dim, max_len=max_len)
    if name == "Caser":
        return Caser(num_users, num_items, dim=dim, max_len=max_len)
    if name == "SASRec":
        return SASRec(num_items, dim=dim, max_len=max_len)
    if name == "KTUP":
        return KTUP.from_dataset(dataset, dim=dim, max_len=max_len)
    if name == "FM":
        return FM.from_dataset(dataset, dim=dim, max_len=max_len)
    if name == "SASRec + concept":
        return SASRecConcept(num_items, dataset.item_concepts, dim=dim, max_len=max_len)
    if name == "BERT4Rec":
        return BERT4Rec(num_items, dim=dim, max_len=max_len)
    if name == "BERT4Rec + concept":
        return BERT4RecConcept(num_items, dataset.item_concepts, dim=dim, max_len=max_len)
    base = isrec_config or ISRecConfig(dim=dim)
    if name == "ISRec":
        return build_variant("isrec", dataset, max_len=max_len, base_config=base)
    if name in ("w/o GNN", "w/o GNN&Intent"):
        return build_variant(name, dataset, max_len=max_len, base_config=base)
    raise KeyError(f"unknown model name {name!r}")


def run_model(name: str, dataset: InteractionDataset, split: LeaveOneOutSplit,
              evaluator: RankingEvaluator, config: ExperimentConfig,
              max_len: int | None = None,
              isrec_config: ISRecConfig | None = None,
              sweep: SweepState | None = None,
              sweep_key: str | None = None,
              extra_eval=None) -> RunResult:
    """Build, train, and test one model; returns its :class:`RunResult`.

    With a ``sweep`` ledger, a run whose ``sweep_key`` (default
    ``"<dataset>/<model>"``) is already recorded is returned from the ledger
    without retraining; otherwise the run executes (resuming from its own
    epoch checkpoints when ``config.checkpoint_dir`` is set) and is recorded.

    ``extra_eval`` is an optional callable receiving the trained model and
    returning a JSON-able dict merged into ``RunResult.extras`` (used by
    the session-aware sweep to attach per-session metrics).
    """
    key = sweep_key or f"{dataset.name}/{name}"
    if sweep is not None:
        cached = sweep.get(key)
        if cached is not None:
            cached.extras["resumed_from_sweep"] = True
            obs.emit("run", key=key, model=name, dataset=dataset.name,
                     cached=True, hr10=cached.report.hr10)
            return cached
    length = max_len or default_max_len(dataset.name)
    set_seed(config.seed)
    model = build_model(name, dataset, length, config, isrec_config=isrec_config)
    obs.emit("run_start", key=key, model=name, dataset=dataset.name,
             max_len=length, seed=config.seed)
    with obs.profile(f"run:{key}"), Timer() as timer:
        model.fit(dataset, split, config.train_config(run_key=key))
        report = evaluator.evaluate(model, stage="test")
        extras = dict(extra_eval(model) or {}) if extra_eval is not None else {}
    result = RunResult(model_name=name, dataset_name=dataset.name,
                       report=report, seconds=timer.elapsed, extras=extras)
    obs.emit("run", key=key, model=name, dataset=dataset.name, cached=False,
             seconds=round(timer.elapsed, 3), **report.as_dict())
    if obs.telemetry_enabled():
        obs.counter("experiments.runs").inc()
        obs.histogram("experiments.run_seconds").observe(timer.elapsed)
    if sweep is not None:
        sweep.record(key, result)
    return result


def run_model_seeds(name: str, dataset: InteractionDataset, split: LeaveOneOutSplit,
                    evaluator: RankingEvaluator, config: ExperimentConfig,
                    seeds: list[int], max_len: int | None = None,
                    isrec_config: ISRecConfig | None = None):
    """Run one model once per seed and aggregate the test reports.

    Returns an :class:`~repro.eval.aggregate.AggregateReport`; negatives are
    shared across seeds (they come from the evaluator), so the variance
    measured is purely initialisation/training noise.
    """
    from dataclasses import replace as dc_replace

    from repro.eval.aggregate import aggregate_reports

    reports = []
    for seed in seeds:
        seeded = dc_replace(config, seed=seed)
        run = run_model(name, dataset, split, evaluator, seeded,
                        max_len=max_len, isrec_config=isrec_config)
        reports.append(run.report)
    return aggregate_reports(reports)


def prepare(profile: str, config: ExperimentConfig,
            scale: float = 1.0) -> tuple[InteractionDataset, LeaveOneOutSplit, RankingEvaluator]:
    """Load a dataset profile and set up its split + paired evaluator."""
    dataset = load_dataset(profile, scale=scale)
    split = split_leave_one_out(dataset.sequences)
    # Clamp the negative count to what the (possibly scaled-down) item
    # universe can supply for its most active user.
    max_seen = max(len(set(seq.tolist())) for seq in split.full_sequences)
    available = max(dataset.num_items - max_seen, 1)
    evaluator = RankingEvaluator(split, dataset.num_items,
                                 num_negatives=min(config.num_negatives, available),
                                 seed=config.seed,
                                 popularity=dataset.item_popularity())
    return dataset, split, evaluator


def prepare_session(profile: str, config: ExperimentConfig,
                    scale: float = 1.0) -> tuple[InteractionDataset, LeaveOneOutSplit, RankingEvaluator]:
    """Like :func:`prepare`, but on the session-annotated variant of a
    profile with a session-boundary-respecting split (``repro.eval.session``)."""
    from repro.eval.session import session_split

    dataset = load_dataset(profile, scale=scale, sessions=True)
    split = session_split(dataset)
    max_seen = max(len(set(seq.tolist())) for seq in split.full_sequences)
    available = max(dataset.num_items - max_seen, 1)
    evaluator = RankingEvaluator(split, dataset.num_items,
                                 num_negatives=min(config.num_negatives, available),
                                 seed=config.seed,
                                 popularity=dataset.item_popularity())
    return dataset, split, evaluator


def fast_config(**overrides) -> ExperimentConfig:
    """A configuration for smoke-level runs (tests, CI)."""
    defaults = dict(epochs=3, eval_every=2, patience=1)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)
