"""Shared experiment machinery: model factory and single-run driver.

Every table/figure runner builds models through :func:`build_model` and
trains/evaluates them through :func:`run_model`, so hyper-parameters are
consistent across experiments (the paper's Appendix B regime, scaled down).
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.core import ISRec, ISRecConfig, build_variant
from repro.data import (
    InteractionDataset,
    LeaveOneOutSplit,
    default_max_len,
    load_dataset,
    split_leave_one_out,
)
from repro.eval import MetricReport, RankingEvaluator
from repro.models import (
    BERT4Rec,
    BERT4RecConcept,
    BPRMF,
    Caser,
    DGCF,
    FPMC,
    GRU4Rec,
    GRU4RecPlus,
    NCF,
    PopRec,
    SASRec,
    SASRecConcept,
)
from repro.train import TrainConfig
from repro.utils import Timer, set_seed

# Paper Table 2 column order.
MODEL_NAMES: list[str] = [
    "PopRec", "BPR-MF", "NCF", "FPMC", "GRU4Rec", "GRU4Rec+",
    "DGCF", "Caser", "SASRec", "BERT4Rec", "ISRec",
]

ABLATION_NAMES: list[str] = [
    "ISRec", "w/o GNN", "w/o GNN&Intent", "BERT4Rec + concept", "SASRec + concept",
]


@dataclass
class ExperimentConfig:
    """Run-wide knobs shared by all table/figure runners."""

    dim: int = 48
    epochs: int = 100
    lr: float = 3e-3
    eval_every: int = 5
    patience: int = 4
    batch_size: int = 64
    seed: int = 0
    num_negatives: int = 100
    verbose: bool = False

    def train_config(self) -> TrainConfig:
        """Project these settings onto a :class:`TrainConfig`."""
        return TrainConfig(epochs=self.epochs, batch_size=self.batch_size,
                           lr=self.lr, eval_every=self.eval_every,
                           patience=self.patience, seed=self.seed,
                           verbose=self.verbose)


@dataclass
class RunResult:
    """Outcome of training + testing one model on one dataset."""

    model_name: str
    dataset_name: str
    report: MetricReport
    seconds: float = 0.0
    extras: dict = field(default_factory=dict)


def build_model(name: str, dataset: InteractionDataset, max_len: int,
                config: ExperimentConfig,
                isrec_config: ISRecConfig | None = None):
    """Instantiate a recommender by its paper name."""
    num_users = dataset.num_users
    num_items = dataset.num_items
    dim = config.dim
    if name == "PopRec":
        return PopRec(max_len=max_len)
    if name == "BPR-MF":
        return BPRMF(num_users, num_items, dim=dim, max_len=max_len)
    if name == "NCF":
        return NCF(num_users, num_items, dim=dim, max_len=max_len)
    if name == "FPMC":
        return FPMC(num_users, num_items, dim=dim, max_len=max_len)
    if name == "GRU4Rec":
        return GRU4Rec(num_items, dim=dim, max_len=max_len)
    if name == "GRU4Rec+":
        return GRU4RecPlus(num_items, dim=dim, max_len=max_len)
    if name == "DGCF":
        return DGCF(num_users, num_items, dim=dim, max_len=max_len)
    if name == "Caser":
        return Caser(num_users, num_items, dim=dim, max_len=max_len)
    if name == "SASRec":
        return SASRec(num_items, dim=dim, max_len=max_len)
    if name == "SASRec + concept":
        return SASRecConcept(num_items, dataset.item_concepts, dim=dim, max_len=max_len)
    if name == "BERT4Rec":
        return BERT4Rec(num_items, dim=dim, max_len=max_len)
    if name == "BERT4Rec + concept":
        return BERT4RecConcept(num_items, dataset.item_concepts, dim=dim, max_len=max_len)
    base = isrec_config or ISRecConfig(dim=dim)
    if name == "ISRec":
        return build_variant("isrec", dataset, max_len=max_len, base_config=base)
    if name in ("w/o GNN", "w/o GNN&Intent"):
        return build_variant(name, dataset, max_len=max_len, base_config=base)
    raise KeyError(f"unknown model name {name!r}")


def run_model(name: str, dataset: InteractionDataset, split: LeaveOneOutSplit,
              evaluator: RankingEvaluator, config: ExperimentConfig,
              max_len: int | None = None,
              isrec_config: ISRecConfig | None = None) -> RunResult:
    """Build, train, and test one model; returns its :class:`RunResult`."""
    length = max_len or default_max_len(dataset.name)
    set_seed(config.seed)
    model = build_model(name, dataset, length, config, isrec_config=isrec_config)
    with Timer() as timer:
        model.fit(dataset, split, config.train_config())
        report = evaluator.evaluate(model, stage="test")
    return RunResult(model_name=name, dataset_name=dataset.name,
                     report=report, seconds=timer.elapsed)


def run_model_seeds(name: str, dataset: InteractionDataset, split: LeaveOneOutSplit,
                    evaluator: RankingEvaluator, config: ExperimentConfig,
                    seeds: list[int], max_len: int | None = None,
                    isrec_config: ISRecConfig | None = None):
    """Run one model once per seed and aggregate the test reports.

    Returns an :class:`~repro.eval.aggregate.AggregateReport`; negatives are
    shared across seeds (they come from the evaluator), so the variance
    measured is purely initialisation/training noise.
    """
    from dataclasses import replace as dc_replace

    from repro.eval.aggregate import aggregate_reports

    reports = []
    for seed in seeds:
        seeded = dc_replace(config, seed=seed)
        run = run_model(name, dataset, split, evaluator, seeded,
                        max_len=max_len, isrec_config=isrec_config)
        reports.append(run.report)
    return aggregate_reports(reports)


def prepare(profile: str, config: ExperimentConfig,
            scale: float = 1.0) -> tuple[InteractionDataset, LeaveOneOutSplit, RankingEvaluator]:
    """Load a dataset profile and set up its split + paired evaluator."""
    dataset = load_dataset(profile, scale=scale)
    split = split_leave_one_out(dataset.sequences)
    # Clamp the negative count to what the (possibly scaled-down) item
    # universe can supply for its most active user.
    max_seen = max(len(set(seq.tolist())) for seq in split.full_sequences)
    available = max(dataset.num_items - max_seen, 1)
    evaluator = RankingEvaluator(split, dataset.num_items,
                                 num_negatives=min(config.num_negatives, available),
                                 seed=config.seed,
                                 popularity=dataset.item_popularity())
    return dataset, split, evaluator


def fast_config(**overrides) -> ExperimentConfig:
    """A configuration for smoke-level runs (tests, CI)."""
    defaults = dict(epochs=3, eval_every=2, patience=1)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)
