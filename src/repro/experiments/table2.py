"""Table 2: overall performance comparison (§4.3).

Runs every model of the paper's Table 2 on the requested dataset profiles
and prints the same layout: one block per dataset, one row per metric, one
column per model, with the relative improvement of ISRec over the strongest
baseline in the last column.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.metrics import MetricReport
from repro.experiments.common import (
    MODEL_NAMES,
    ExperimentConfig,
    RunResult,
    SweepState,
    telemetry_scope,
)
from repro.utils.tables import ResultTable


@dataclass
class Table2Result:
    """All runs of one Table 2 reproduction."""

    results: dict[str, dict[str, MetricReport]] = field(default_factory=dict)
    seconds: dict[str, dict[str, float]] = field(default_factory=dict)

    def add(self, run: RunResult) -> None:
        """Record one (model, dataset) run."""
        self.results.setdefault(run.dataset_name, {})[run.model_name] = run.report
        self.seconds.setdefault(run.dataset_name, {})[run.model_name] = run.seconds

    def improvement(self, dataset: str, metric: str) -> float | None:
        """Relative improvement of ISRec over the best baseline (percent)."""
        block = self.results.get(dataset, {})
        if "ISRec" not in block:
            return None
        baselines = [report[metric] for name, report in block.items() if name != "ISRec"]
        if not baselines:
            return None
        best = max(baselines)
        if best <= 0:
            return None
        return 100.0 * (block["ISRec"][metric] - best) / best

    def render(self) -> str:
        """Paper-layout text rendering of every dataset block."""
        blocks = []
        for dataset, reports in self.results.items():
            models = [name for name in MODEL_NAMES if name in reports]
            table = ResultTable(["Metric", *models, "Improv."],
                                title=f"Table 2 — {dataset}")
            for metric in MetricReport.metric_names():
                row: list = [metric]
                row.extend(reports[name][metric] for name in models)
                improvement = self.improvement(dataset, metric)
                row.append("-" if improvement is None else f"{improvement:+.2f}%")
                table.add_row(row)
            blocks.append(table.render())
        return "\n\n".join(blocks)


def run_table2(profiles: list[str] | None = None,
               models: list[str] | None = None,
               config: ExperimentConfig | None = None,
               scale: float = 1.0,
               progress: bool = False,
               jobs: int = 1) -> Table2Result:
    """Reproduce Table 2 over ``profiles`` x ``models``.

    When ``config.checkpoint_dir`` is set, every finished (model, dataset)
    run is checkpointed in a sweep ledger and a restarted call resumes the
    grid where the previous one stopped.  ``jobs > 1`` trains up to that
    many grid cells in parallel processes (``docs/parallelism.md``) —
    results and the ledger are identical either way.
    """
    from repro.parallel.sweep import SweepCell, run_cells

    profiles = profiles or ["beauty", "steam", "epinions", "ml-1m", "ml-20m"]
    models = models or list(MODEL_NAMES)
    config = config or ExperimentConfig()
    sweep = SweepState.for_artefact(config.checkpoint_dir, "table2")
    cells = [SweepCell(key=f"{profile}/{name}", model=name, profile=profile,
                       scale=scale, config=config)
             for profile in profiles for name in models]

    def report(cell: SweepCell, run: RunResult) -> None:
        if progress:
            cached = " (cached)" if run.extras.get("resumed_from_sweep") else ""
            print(f"[table2] {cell.profile:9s} {cell.model:12s} "
                  f"HR@10={run.report.hr10:.4f} ({run.seconds:.1f}s)"
                  f"{cached}", flush=True)

    outcome = Table2Result()
    with telemetry_scope(config.telemetry_dir, "table2"):
        results = run_cells(cells, jobs=jobs, sweep=sweep, progress=report)
    for cell in cells:
        outcome.add(results[cell.key])
    return outcome
