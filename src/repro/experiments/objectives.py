"""Intent-objective sweep: baseline vs +contrastive vs +session-eval.

Sweeps the training-objective variants of ``docs/training-objectives.md``
across dataset profiles, three cells per profile:

- ``ISRec`` — the plain next-item objective (the Table 2 recipe);
- ``ISRec+contrastive`` — adds the intent-contrastive auxiliary loss
  (``TrainConfig.contrastive_weight``), same dataset and evaluation;
- ``ISRec+session-eval`` — trains on the session-annotated variant of the
  profile with a session-boundary-respecting split and attaches the
  boundary-vs-within :class:`repro.eval.SessionReport`.

``render()`` marks the sparse rows (beauty/steam/epinions, short
sequences) so the table can be read against the sparse-vs-dense
expectation discussed in ``docs/training-objectives.md`` — the recorded
run in EXPERIMENTS.md measures the *reverse* of the textbook prediction:
the contrastive objective helps the dense MovieLens profiles and hurts
the short-sequence ones, whose prefix crops are nearly identical views.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.experiments.common import (
    ExperimentConfig,
    RunResult,
    SweepState,
    telemetry_scope,
)
from repro.utils.tables import ResultTable

#: Profiles with short average sequences (the paper's sparse regime).
SPARSE_PROFILES = ("beauty", "steam", "epinions")

VARIANTS = ("ISRec", "ISRec+contrastive", "ISRec+session-eval")


@dataclass
class IntentObjectivesResult:
    """All runs of one intent-objective sweep (profile -> variant)."""

    results: dict[str, dict[str, RunResult]] = field(default_factory=dict)

    def add(self, profile: str, variant: str, run: RunResult) -> None:
        """Record one (profile, variant) run."""
        self.results.setdefault(profile, {})[variant] = run

    def contrastive_delta(self, profile: str, metric: str = "HR@10") -> float | None:
        """Relative improvement of +contrastive over baseline (percent)."""
        block = self.results.get(profile, {})
        base = block.get("ISRec")
        contrastive = block.get("ISRec+contrastive")
        if base is None or contrastive is None or base.report[metric] <= 0:
            return None
        return 100.0 * ((contrastive.report[metric] - base.report[metric])
                        / base.report[metric])

    def session_report(self, profile: str) -> dict | None:
        """The ``extras["session"]`` payload of the session-eval run."""
        run = self.results.get(profile, {}).get("ISRec+session-eval")
        if run is None:
            return None
        return run.extras.get("session")

    def render(self) -> str:
        """Text table: per-profile objective comparison + session split."""
        table = ResultTable(
            ["Profile", "HR@10", "NDCG@10", "+contr HR@10", "+contr NDCG@10",
             "dHR@10", "sess HR@10 (bnd/in)"],
            title="Intent objectives — baseline vs contrastive vs session eval")
        for profile, block in self.results.items():
            label = f"{profile}*" if profile in SPARSE_PROFILES else profile
            row: list = [label]
            base = block.get("ISRec")
            contrastive = block.get("ISRec+contrastive")
            for run, metric in ((base, "HR@10"), (base, "NDCG@10"),
                                (contrastive, "HR@10"), (contrastive, "NDCG@10")):
                row.append("-" if run is None else run.report[metric])
            delta = self.contrastive_delta(profile)
            row.append("-" if delta is None else f"{delta:+.2f}%")
            session = self.session_report(profile)
            if session is None:
                row.append("-")
            else:
                def hr10(part):
                    return "-" if part is None else f"{part['HR@10']:.4f}"
                row.append(f"{hr10(session['boundary'])}/"
                           f"{hr10(session['within'])}")
            table.add_row(row)
        return table.render() + "\n(* sparse profile: short sequences)"


def run_intent_objectives(profiles: list[str] | None = None,
                          config: ExperimentConfig | None = None,
                          scale: float = 1.0,
                          progress: bool = False,
                          jobs: int = 1,
                          contrastive_weight: float = 0.1,
                          contrastive_temperature: float = 0.2,
                          ) -> IntentObjectivesResult:
    """Train the three objective variants on every profile.

    Same crash-safety and parallelism contract as the table runners: the
    sweep ledger (``config.checkpoint_dir``) resumes a killed grid, and
    ``jobs > 1`` trains independent cells in parallel processes with
    bit-identical results.
    """
    from repro.parallel.sweep import SweepCell, run_cells

    profiles = profiles or ["beauty", "steam", "epinions", "ml-1m", "ml-20m"]
    config = config or ExperimentConfig()
    contrastive_config = replace(config,
                                 contrastive_weight=contrastive_weight,
                                 contrastive_temperature=contrastive_temperature)
    sweep = SweepState.for_artefact(config.checkpoint_dir, "intent_objectives")
    cells = []
    for profile in profiles:
        cells.append(SweepCell(key=f"{profile}/ISRec", model="ISRec",
                               profile=profile, scale=scale, config=config))
        cells.append(SweepCell(key=f"{profile}/ISRec+contrastive",
                               model="ISRec", profile=profile, scale=scale,
                               config=contrastive_config))
        cells.append(SweepCell(key=f"{profile}/ISRec+session-eval",
                               model="ISRec", profile=profile, scale=scale,
                               config=config, session_eval=True))

    def report(cell: "SweepCell", run: RunResult) -> None:
        if progress:
            cached = " (cached)" if run.extras.get("resumed_from_sweep") else ""
            print(f"[intents] {cell.key:32s} HR@10={run.report.hr10:.4f} "
                  f"({run.seconds:.1f}s){cached}", flush=True)

    outcome = IntentObjectivesResult()
    with telemetry_scope(config.telemetry_dir, "intent_objectives"):
        results = run_cells(cells, jobs=jobs, sweep=sweep, progress=report)
    for cell in cells:
        profile, _, variant = cell.key.partition("/")
        outcome.add(profile, variant, results[cell.key])
    return outcome
