"""Table 3: dataset statistics after preprocessing (§4.1)."""

from __future__ import annotations

from repro.data import available_profiles, load_dataset
from repro.data.dataset import DatasetStatistics
from repro.utils.tables import ResultTable


def run_table3(profiles: list[str] | None = None,
               scale: float = 1.0,
               telemetry_dir: str | None = None) -> dict[str, DatasetStatistics]:
    """Compute the Table 3 row for each profile.

    With ``telemetry_dir`` set, the per-profile statistics are additionally
    streamed to ``<telemetry_dir>/table3.telemetry.jsonl``.
    """
    from repro import obs
    from repro.experiments.common import telemetry_scope

    profiles = profiles or available_profiles()
    stats: dict[str, DatasetStatistics] = {}
    with telemetry_scope(telemetry_dir, "table3"):
        for name in profiles:
            with obs.timer("table3.profile_seconds"):
                stats[name] = load_dataset(name, scale=scale).statistics()
            obs.emit("dataset_stats", profile=name, **vars(stats[name]))
    return stats


def render_table3(stats: dict[str, DatasetStatistics]) -> str:
    """Paper-layout text rendering of Table 3."""
    table = ResultTable(
        ["Dataset", "#Users", "#Items", "#Interactions", "Avg.length", "Density"],
        title="Table 3 — dataset statistics",
    )
    for statistics in stats.values():
        table.add_row([str(cell) for cell in statistics.as_row()])
    return table.render()
