"""Table 4: statistics of the preprocessed concepts (§4.1)."""

from __future__ import annotations

from repro.data import available_profiles, load_dataset
from repro.data.dataset import ConceptStatistics
from repro.utils.tables import ResultTable


def run_table4(profiles: list[str] | None = None,
               scale: float = 1.0) -> dict[str, ConceptStatistics]:
    """Compute the Table 4 row for each profile."""
    profiles = profiles or available_profiles()
    return {name: load_dataset(name, scale=scale).concept_statistics() for name in profiles}


def render_table4(stats: dict[str, ConceptStatistics]) -> str:
    """Paper-layout text rendering of Table 4."""
    table = ResultTable(
        ["Dataset", "#Concepts", "#Edges", "Avg.concepts/item"],
        title="Table 4 — concept statistics",
    )
    for statistics in stats.values():
        table.add_row([str(cell) for cell in statistics.as_row()])
    return table.render()
