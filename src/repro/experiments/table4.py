"""Table 4: statistics of the preprocessed concepts (§4.1)."""

from __future__ import annotations

from repro.data import available_profiles, load_dataset
from repro.data.dataset import ConceptStatistics
from repro.utils.tables import ResultTable


def run_table4(profiles: list[str] | None = None,
               scale: float = 1.0,
               telemetry_dir: str | None = None) -> dict[str, ConceptStatistics]:
    """Compute the Table 4 row for each profile.

    With ``telemetry_dir`` set, the per-profile statistics are additionally
    streamed to ``<telemetry_dir>/table4.telemetry.jsonl``.
    """
    from repro import obs
    from repro.experiments.common import telemetry_scope

    profiles = profiles or available_profiles()
    stats: dict[str, ConceptStatistics] = {}
    with telemetry_scope(telemetry_dir, "table4"):
        for name in profiles:
            with obs.timer("table4.profile_seconds"):
                stats[name] = load_dataset(name, scale=scale).concept_statistics()
            obs.emit("concept_stats", profile=name, **vars(stats[name]))
    return stats


def render_table4(stats: dict[str, ConceptStatistics]) -> str:
    """Paper-layout text rendering of Table 4."""
    table = ResultTable(
        ["Dataset", "#Concepts", "#Edges", "Avg.concepts/item"],
        title="Table 4 — concept statistics",
    )
    for statistics in stats.values():
        table.add_row([str(cell) for cell in statistics.as_row()])
    return table.render()
