"""Table 5: ablation study of intent extraction and structured transition (§4.5).

Compares the full ISRec with "w/o GNN" (identity transition), "w/o
GNN&Intent" (plain concept-aware transformer), and the concept-augmented
strongest baselines (BERT4Rec + concept, SASRec + concept) on the paper's
two showcase datasets (Beauty and ML-1m by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.metrics import MetricReport
from repro.experiments.common import (
    ABLATION_NAMES,
    ExperimentConfig,
    SweepState,
    telemetry_scope,
)
from repro.utils.tables import ResultTable


@dataclass
class Table5Result:
    """Ablation reports per (dataset, variant)."""

    results: dict[str, dict[str, MetricReport]] = field(default_factory=dict)

    def render(self) -> str:
        """Paper-layout text rendering of the ablation table."""
        datasets = list(self.results)
        columns = ["Variant"]
        for dataset in datasets:
            columns.extend([f"{dataset} HR@10", f"{dataset} NDCG@10"])
        table = ResultTable(columns, title="Table 5 — ablation study")
        variants = [name for name in ABLATION_NAMES
                    if all(name in self.results[d] for d in datasets)]
        for variant in variants:
            row: list = [variant]
            for dataset in datasets:
                report = self.results[dataset][variant]
                row.extend([report.hr10, report.ndcg10])
            table.add_row(row)
        return table.render()


def run_table5(profiles: list[str] | None = None,
               variants: list[str] | None = None,
               config: ExperimentConfig | None = None,
               scale: float = 1.0,
               progress: bool = False,
               jobs: int = 1) -> Table5Result:
    """Reproduce the Table 5 ablation (``jobs > 1`` parallelises cells)."""
    from repro.parallel.sweep import SweepCell, run_cells

    profiles = profiles or ["beauty", "ml-1m"]
    variants = variants or list(ABLATION_NAMES)
    config = config or ExperimentConfig()
    sweep = SweepState.for_artefact(config.checkpoint_dir, "table5")
    cells = [SweepCell(key=f"{profile}/{variant}", model=variant,
                       profile=profile, scale=scale, config=config)
             for profile in profiles for variant in variants]

    def report(cell: "SweepCell", run) -> None:
        if progress:
            print(f"[table5] {cell.profile:9s} {cell.model:20s} "
                  f"HR@10={run.report.hr10:.4f}", flush=True)

    outcome = Table5Result()
    with telemetry_scope(config.telemetry_dir, "table5"):
        results = run_cells(cells, jobs=jobs, sweep=sweep, progress=report)
    for cell in cells:
        outcome.results.setdefault(cell.profile, {})[cell.model] = (
            results[cell.key].report)
    return outcome
