"""Figure 2: showcases of intent extraction and structured transition (§4.4).

Trains ISRec on the two showcase domains (Beauty and Steam in the paper),
then renders per-step intent traces for sample users: candidate intents,
activated intents, the transitioned next intents, and the top
recommendations — the textual equivalent of the paper's Fig. 2 panels.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field

from repro.core import IntentTrace, IntentTracer
from repro.experiments.common import (
    ExperimentConfig,
    build_model,
    prepare,
    telemetry_scope,
)
from repro.data import default_max_len
from repro.utils import set_seed


@dataclass
class Figure2Result:
    """Intent traces per profile."""

    traces: dict[str, list[IntentTrace]] = field(default_factory=dict)

    def render(self) -> str:
        """All traces as text, grouped by profile."""
        blocks = []
        for profile, traces in self.traces.items():
            blocks.append(f"=== Figure 2 — {profile} showcases ===")
            blocks.extend(trace.render() for trace in traces)
        return "\n\n".join(blocks)


def _trace_profile(payload: tuple) -> tuple[str, list[int], list[IntentTrace]]:
    """Train + trace one profile (runs inline or in a fork-pool child)."""
    profile, users_per_profile, config, scale = payload
    dataset, split, _evaluator = prepare(profile, config, scale=scale)
    set_seed(config.seed)
    model = build_model("ISRec", dataset, default_max_len(profile), config)
    # Epoch-level crash safety: with config.checkpoint_dir set, an
    # interrupted training run resumes from its newest valid checkpoint.
    model.fit(dataset, split,
              config.train_config(run_key=f"{dataset.name}/ISRec-figure2"))
    tracer = IntentTracer(model, dataset)
    users = _showcase_users(dataset, users_per_profile)
    return profile, users, [tracer.trace(user) for user in users]


def run_figure2(profiles: list[str] | None = None,
                users_per_profile: int = 2,
                config: ExperimentConfig | None = None,
                scale: float = 1.0,
                progress: bool = False,
                jobs: int = 1) -> Figure2Result:
    """Train ISRec per profile and trace ``users_per_profile`` users.

    ``jobs > 1`` trains the profiles in parallel processes (this runner's
    unit of work is a whole profile — it keeps the trained model around for
    tracing, so there is no per-cell sweep ledger here).
    """
    profiles = profiles or ["beauty", "steam"]
    config = config or ExperimentConfig()
    payloads = [(profile, users_per_profile, config, scale)
                for profile in profiles]
    outcome = Figure2Result()
    with telemetry_scope(config.telemetry_dir, "figure2"):
        if jobs > 1 and len(payloads) > 1:
            from repro.parallel.sweep import _init_pool_worker

            context = multiprocessing.get_context("fork")
            with context.Pool(processes=min(jobs, len(payloads)),
                              initializer=_init_pool_worker) as pool:
                completed = pool.map(_trace_profile, payloads)
        else:
            completed = [_trace_profile(payload) for payload in payloads]
        for profile, users, traces in completed:
            outcome.traces[profile] = traces
            if progress:
                print(f"[figure2] traced users {users} on {profile}", flush=True)
    return outcome


def _showcase_users(dataset, count: int) -> list[int]:
    """Pick users with mid-length histories (readable showcases)."""
    lengths = [(len(seq), user) for user, seq in enumerate(dataset.sequences)]
    lengths.sort(reverse=True)
    median_start = len(lengths) // 3
    return [user for _length, user in lengths[median_start:median_start + count]]
