"""Table 6: sensitivity to the maximum sequence length T (§4.6.3).

The paper sweeps T over {10..50} on Beauty and {10..300} on ML-1m and finds
the best T tracks the dataset's average sequence length, with performance
flattening for larger T.  Our scaled profiles sweep proportionally smaller
grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import ISRecConfig
from repro.eval.metrics import MetricReport
from repro.experiments.common import (
    ExperimentConfig,
    SweepState,
    telemetry_scope,
)
from repro.utils.tables import ResultTable

DEFAULT_SWEEPS: dict[str, list[int]] = {
    "beauty": [5, 10, 20, 30, 40],
    "ml-1m": [5, 10, 25, 50, 70],
}


@dataclass
class Table6Result:
    """Reports per (profile, maximum sequence length)."""

    results: dict[str, dict[int, MetricReport]] = field(default_factory=dict)

    def best_length(self, profile: str, metric: str = "HR@10") -> int:
        """The T with the best ``metric`` on ``profile``."""
        block = self.results[profile]
        return max(block, key=lambda length: block[length][metric])

    def render(self) -> str:
        """Paper-layout text rendering of the sweep."""
        blocks = []
        for profile, block in self.results.items():
            lengths = sorted(block)
            table = ResultTable(["Metric", *[f"T={length}" for length in lengths]],
                                title=f"Table 6 — max sequence length, {profile}")
            for metric in ("HR@10", "NDCG@10"):
                table.add_row([metric, *[block[length][metric] for length in lengths]])
            blocks.append(table.render())
        return "\n\n".join(blocks)


def run_table6(sweeps: dict[str, list[int]] | None = None,
               config: ExperimentConfig | None = None,
               isrec_config: ISRecConfig | None = None,
               scale: float = 1.0,
               progress: bool = False,
               jobs: int = 1) -> Table6Result:
    """Train ISRec for every (profile, T) pair of the sweep."""
    from repro.parallel.sweep import SweepCell, run_cells

    sweeps = sweeps or DEFAULT_SWEEPS
    config = config or ExperimentConfig()
    sweep = SweepState.for_artefact(config.checkpoint_dir, "table6")
    cells = [SweepCell(key=f"{profile}/ISRec/T={length}", model="ISRec",
                       profile=profile, scale=scale, config=config,
                       max_len=length, isrec_config=isrec_config)
             for profile, lengths in sweeps.items() for length in lengths]

    def report(cell: "SweepCell", run) -> None:
        if progress:
            print(f"[table6] {cell.profile:9s} T={cell.max_len:3d} "
                  f"HR@10={run.report.hr10:.4f}", flush=True)

    outcome = Table6Result()
    with telemetry_scope(config.telemetry_dir, "table6"):
        results = run_cells(cells, jobs=jobs, sweep=sweep, progress=report)
    for cell in cells:
        outcome.results.setdefault(cell.profile, {})[cell.max_len] = (
            results[cell.key].report)
    return outcome
