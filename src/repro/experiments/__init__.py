"""Experiment runners — one per table/figure of the paper's evaluation.

=================  =====================================================
Runner             Paper artefact
=================  =====================================================
:func:`run_table2` Table 2 — overall comparison (11 models x 5 datasets)
:func:`run_table3` Table 3 — dataset statistics
:func:`run_table4` Table 4 — concept statistics
:func:`run_table5` Table 5 — ablation study
:func:`run_table6` Table 6 — max sequence length sensitivity
:func:`run_figure2` Fig. 2 — intent transition showcases
:func:`run_figure3` Fig. 3 — intent dimensionality d' sweep
:func:`run_figure4` Fig. 4 — activated intents lambda sweep
=================  =====================================================

Beyond the paper's artefacts, :func:`run_intent_objectives` sweeps the
training-objective variants of ``docs/training-objectives.md`` (baseline
vs intent-contrastive vs session-aware evaluation), and
:func:`run_graph_comparison` trains ISRec against the structure-aware
baselines (KTUP, FM) on the graph-bearing profile variants
(``docs/graph-workloads.md``).
"""

from repro.experiments.common import (
    ABLATION_NAMES,
    MODEL_NAMES,
    ExperimentConfig,
    RunResult,
    SweepState,
    build_model,
    fast_config,
    prepare,
    run_model,
    run_model_seeds,
    telemetry_scope,
)
from repro.experiments import report
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.graphs import (
    GraphComparisonResult,
    run_graph_comparison,
)
from repro.experiments.objectives import (
    IntentObjectivesResult,
    run_intent_objectives,
)
from repro.experiments.figure3 import SweepResult, run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table3 import render_table3, run_table3
from repro.experiments.table4 import render_table4, run_table4
from repro.experiments.table5 import Table5Result, run_table5
from repro.experiments.table6 import Table6Result, run_table6

__all__ = [
    "MODEL_NAMES", "ABLATION_NAMES",
    "ExperimentConfig", "RunResult", "SweepState", "build_model", "run_model",
    "prepare", "telemetry_scope",
    "run_model_seeds",
    "fast_config",
    "run_table2", "Table2Result",
    "run_table3", "render_table3",
    "run_table4", "render_table4",
    "run_table5", "Table5Result",
    "run_table6", "Table6Result",
    "run_figure2", "Figure2Result",
    "report",
    "run_figure3", "run_figure4", "SweepResult",
    "run_intent_objectives", "IntentObjectivesResult",
    "run_graph_comparison", "GraphComparisonResult",
]
