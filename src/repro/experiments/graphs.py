"""Graph-workloads sweep: ISRec vs the structure-aware baselines.

Trains ISRec, KTUP (knowledge-aware), and FM (context-aware) on the
graph-bearing profile variants (``beauty-kg``, ``ml-1m-kg-dense``, ...)
so the structured-intent-transition model is finally compared against
models that exploit *item* structure rather than intent structure — the
comparison ROADMAP item 4 calls for and ``docs/graph-workloads.md``
motivates.  The default grid crosses the interaction-density axis
(``beauty`` sparse vs ``ml-1m`` dense) with the KG-density axis
(``-kg`` vs ``-kg-dense``).

Same contracts as the other table runners: crash-safe :class:`SweepState`
ledger under ``config.checkpoint_dir``, bit-identical ``--jobs N``
parallelism through :func:`repro.parallel.sweep.run_cells`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    ExperimentConfig,
    RunResult,
    SweepState,
    telemetry_scope,
)
from repro.utils.tables import ResultTable

#: Model column order: structure-aware baselines first, ISRec last.
GRAPH_MODELS = ("FM", "KTUP", "ISRec")

#: Default grid: interaction density (beauty sparse / ml-1m dense) crossed
#: with KG density (default vs dense+noisier graphs).
DEFAULT_GRAPH_PROFILES = ("beauty-kg", "beauty-kg-dense",
                          "ml-1m-kg", "ml-1m-kg-dense")


@dataclass
class GraphComparisonResult:
    """All runs of one graph-workloads sweep (profile -> model)."""

    results: dict[str, dict[str, RunResult]] = field(default_factory=dict)
    #: Per-profile structural statistics (triples, social edges, ...).
    graph_stats: dict[str, dict] = field(default_factory=dict)

    def add(self, profile: str, model: str, run: RunResult) -> None:
        """Record one (profile, model) run."""
        self.results.setdefault(profile, {})[model] = run

    def isrec_margin(self, profile: str, metric: str = "HR@10") -> float | None:
        """ISRec's relative margin (percent) over the best structure-aware
        baseline on ``profile``; negative when a baseline wins."""
        block = self.results.get(profile, {})
        isrec = block.get("ISRec")
        rivals = [block[m] for m in ("FM", "KTUP") if m in block]
        if isrec is None or not rivals:
            return None
        best = max(run.report[metric] for run in rivals)
        if best <= 0:
            return None
        return 100.0 * (isrec.report[metric] - best) / best

    def render(self) -> str:
        """Text table: per-profile model comparison + structural stats."""
        table = ResultTable(
            ["Profile", "triples", "social", "FM HR@10", "KTUP HR@10",
             "ISRec HR@10", "ISRec NDCG@10", "ISRec vs best"],
            title="Graph workloads — ISRec vs structure-aware baselines")
        for profile, block in self.results.items():
            stats = self.graph_stats.get(profile, {})
            row: list = [profile,
                         str(stats.get("num_triples", "-")),
                         str(stats.get("num_social_edges", "-"))]
            for model, metric in (("FM", "HR@10"), ("KTUP", "HR@10"),
                                  ("ISRec", "HR@10"), ("ISRec", "NDCG@10")):
                run = block.get(model)
                row.append("-" if run is None else run.report[metric])
            margin = self.isrec_margin(profile)
            row.append("-" if margin is None else f"{margin:+.2f}%")
            table.add_row(row)
        return table.render() + (
            "\n(-kg: moderate KG + social graph; -kg-dense: 3x triples, "
            "2x social degree, 3x noise)")


def run_graph_comparison(profiles: list[str] | None = None,
                         config: ExperimentConfig | None = None,
                         scale: float = 1.0,
                         progress: bool = False,
                         jobs: int = 1,
                         models: tuple[str, ...] = GRAPH_MODELS,
                         ) -> GraphComparisonResult:
    """Train every model of ``models`` on every graph-bearing profile.

    Same crash-safety and parallelism contract as the table runners: the
    sweep ledger (``config.checkpoint_dir``) resumes a killed grid, and
    ``jobs > 1`` trains independent cells in parallel processes with
    bit-identical results.
    """
    from repro.data import load_dataset
    from repro.parallel.sweep import SweepCell, run_cells

    profiles = list(profiles or DEFAULT_GRAPH_PROFILES)
    config = config or ExperimentConfig()
    sweep = SweepState.for_artefact(config.checkpoint_dir, "graphs")
    cells = [SweepCell(key=f"{profile}/{model}", model=model,
                       profile=profile, scale=scale, config=config)
             for profile in profiles for model in models]

    def report(cell: "SweepCell", run: RunResult) -> None:
        if progress:
            cached = " (cached)" if run.extras.get("resumed_from_sweep") else ""
            print(f"[graphs] {cell.key:28s} HR@10={run.report.hr10:.4f} "
                  f"({run.seconds:.1f}s){cached}", flush=True)

    outcome = GraphComparisonResult()
    with telemetry_scope(config.telemetry_dir, "graphs"):
        results = run_cells(cells, jobs=jobs, sweep=sweep, progress=report)
    for profile in profiles:
        dataset = load_dataset(profile, scale=scale)
        stats = dataset.graph_statistics()
        outcome.graph_stats[profile] = {
            "num_triples": stats.num_triples,
            "num_entities": stats.num_entities,
            "num_social_edges": stats.num_social_edges,
            "avg_social_degree": round(stats.avg_social_degree, 2),
        }
    for cell in cells:
        profile, _, model = cell.key.partition("/")
        outcome.add(profile, model, results[cell.key])
    return outcome
