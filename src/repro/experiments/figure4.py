"""Figure 4: sensitivity to the number of activated intents lambda (§4.6.2).

The paper sweeps lambda on Beauty and finds a peak between 10 and 15 out of
592 concepts; performance degrades when too few intents can be activated
(under-expressive) or too many (noisy).  Our vocabulary is ~10x smaller, so
the sweep covers a proportionally smaller grid.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import ISRecConfig
from repro.experiments.common import (
    ExperimentConfig,
    SweepState,
    telemetry_scope,
)
from repro.experiments.figure3 import SweepResult

DEFAULT_LAMBDAS = [1, 2, 3, 5, 8, 12, 20]


def run_figure4(lambdas: list[int] | None = None, profile: str = "beauty",
                config: ExperimentConfig | None = None,
                base: ISRecConfig | None = None,
                scale: float = 1.0,
                progress: bool = False,
                jobs: int = 1) -> SweepResult:
    """Train ISRec for every activated-intent count lambda."""
    from repro.parallel.sweep import SweepCell, run_cells

    lambdas = lambdas or DEFAULT_LAMBDAS
    config = config or ExperimentConfig()
    base = base or ISRecConfig(dim=config.dim)
    sweep = SweepState.for_artefact(config.checkpoint_dir, "figure4")
    cells = [SweepCell(key=f"{profile}/ISRec/lambda={lam}", model="ISRec",
                       profile=profile, scale=scale, config=config,
                       isrec_config=replace(base, num_intents=lam))
             for lam in lambdas]

    def report(cell: "SweepCell", run) -> None:
        if progress:
            print(f"[figure4] lambda={cell.isrec_config.num_intents:3d} "
                  f"HR@10={run.report.hr10:.4f}", flush=True)

    outcome = SweepResult(parameter="lambda", profile=profile)
    with telemetry_scope(config.telemetry_dir, "figure4"):
        results = run_cells(cells, jobs=jobs, sweep=sweep, progress=report)
    for cell, lam in zip(cells, lambdas):
        outcome.results[lam] = results[cell.key].report
    return outcome
