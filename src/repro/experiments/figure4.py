"""Figure 4: sensitivity to the number of activated intents lambda (§4.6.2).

The paper sweeps lambda on Beauty and finds a peak between 10 and 15 out of
592 concepts; performance degrades when too few intents can be activated
(under-expressive) or too many (noisy).  Our vocabulary is ~10x smaller, so
the sweep covers a proportionally smaller grid.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import ISRecConfig
from repro.experiments.common import (
    ExperimentConfig,
    SweepState,
    prepare,
    run_model,
    telemetry_scope,
)
from repro.experiments.figure3 import SweepResult

DEFAULT_LAMBDAS = [1, 2, 3, 5, 8, 12, 20]


def run_figure4(lambdas: list[int] | None = None, profile: str = "beauty",
                config: ExperimentConfig | None = None,
                base: ISRecConfig | None = None,
                scale: float = 1.0,
                progress: bool = False) -> SweepResult:
    """Train ISRec for every activated-intent count lambda."""
    lambdas = lambdas or DEFAULT_LAMBDAS
    config = config or ExperimentConfig()
    base = base or ISRecConfig(dim=config.dim)
    sweep = SweepState.for_artefact(config.checkpoint_dir, "figure4")
    dataset, split, evaluator = prepare(profile, config, scale=scale)
    outcome = SweepResult(parameter="lambda", profile=profile)
    with telemetry_scope(config.telemetry_dir, "figure4"):
        for lam in lambdas:
            isrec_config = replace(base, num_intents=lam)
            run = run_model("ISRec", dataset, split, evaluator, config,
                            isrec_config=isrec_config, sweep=sweep,
                            sweep_key=f"{dataset.name}/ISRec/lambda={lam}")
            outcome.results[lam] = run.report
            if progress:
                print(f"[figure4] lambda={lam:3d} HR@10={run.report.hr10:.4f}", flush=True)
    return outcome
