"""Pretty-print a telemetry JSONL file (``make telemetry-report FILE=...``).

Usage::

    PYTHONPATH=src python -m repro.obs.report runs/table2.telemetry.jsonl

Prints the run header, an event-type census, the training trajectory
(first/last/best loss, throughput), evaluation latency, and — when the
stream carries a ``run_summary`` record — the metrics snapshot and the
profiler breakdown.
"""

from __future__ import annotations

import argparse
from collections import Counter as TallyCounter

from repro.obs.profile import profile_report
from repro.obs.sink import read_telemetry


def _fmt(value, spec: str = ".4g") -> str:
    if value is None:
        return "-"
    return format(value, spec)


def render_report(records: list[dict]) -> str:
    """Human-readable multi-section report of one telemetry stream."""
    header = records[0]
    lines = [f"telemetry run: {header.get('run') or '(unnamed)'}  "
             f"schema={header.get('schema')}  records={len(records)}"]

    census = TallyCounter(record.get("event", "?") for record in records)
    lines.append("events: " + ", ".join(
        f"{name} x{count}" for name, count in sorted(census.items())))

    steps = [record for record in records if record.get("event") == "train_step"]
    if steps:
        losses = [record["loss"] for record in steps if "loss" in record]
        lines.append(f"\ntraining: {len(steps)} steps")
        if losses:
            lines.append(f"  loss        first {_fmt(losses[0])}  "
                         f"last {_fmt(losses[-1])}  min {_fmt(min(losses))}")
        for field, label in (("grad_norm", "grad norm"), ("lr", "lr"),
                             ("seq_per_s", "sequences/s"),
                             ("tok_per_s", "tokens/s")):
            values = [record[field] for record in steps
                      if record.get(field) is not None]
            if values:
                mean = sum(values) / len(values)
                lines.append(f"  {label:<11} mean {_fmt(mean)}  "
                             f"last {_fmt(values[-1])}")

    evals = [record for record in records if record.get("event") == "eval"]
    for record in evals:
        lines.append(f"\neval [{record.get('stage', '?')}]: "
                     f"{_fmt(record.get('num_users'), 'd')} users in "
                     f"{_fmt(record.get('seconds'))}s  "
                     f"({_fmt(record.get('candidates_per_s'))} candidates/s)")

    recoveries = [r for r in records if r.get("event") == "divergence_recovery"]
    if recoveries:
        lines.append(f"\ndivergence recoveries: {len(recoveries)}")
        for record in recoveries:
            lines.append(f"  epoch {record.get('epoch')}: {record.get('reason')}"
                         f"  lr {_fmt(record.get('lr_before'))} -> "
                         f"{_fmt(record.get('lr_after'))}")

    summaries = [r for r in records if r.get("event") == "run_summary"]
    if summaries:
        summary = summaries[-1]
        metrics = summary.get("metrics", {})
        if metrics:
            lines.append("\nmetrics snapshot:")
            for name, state in metrics.items():
                kind = state.get("type")
                if kind == "histogram" and state.get("count"):
                    lines.append(f"  {name:<36} n={state['count']:<6} "
                                 f"mean {_fmt(state.get('mean'))}  "
                                 f"min {_fmt(state.get('min'))}  "
                                 f"max {_fmt(state.get('max'))}")
                else:
                    lines.append(f"  {name:<36} {_fmt(state.get('value'))}")
        tree = summary.get("profile", {})
        if tree:
            lines.append("\nprofile breakdown:")
            lines.append(profile_report(tree))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", help="telemetry JSONL file to pretty-print")
    args = parser.parse_args(argv)
    records = read_telemetry(args.file)
    print(render_report(records))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
