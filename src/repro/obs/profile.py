"""Lightweight nesting profiler: ``with profile("train_step"): ...``.

Spans nest: a ``profile("backward")`` opened inside ``profile("train_step")``
becomes its child, and :func:`profile_report` renders the tree with each
span's share of its parent's wall time.  The whole machinery is guarded by
the global telemetry toggle — when telemetry is disabled ``profile`` yields
immediately without touching the clock.

>>> from repro import obs
>>> with obs.use_telemetry():
...     with obs.profile("step"):
...         with obs.profile("forward"):
...             pass
...         with obs.profile("backward"):
...             pass
>>> tree = obs.profile_tree()
>>> sorted(tree["step"]["children"])
['backward', 'forward']
"""

from __future__ import annotations

import contextlib
import time

from repro.obs.registry import telemetry_enabled


class _Span:
    """One node of the profile tree: aggregated over every entry."""

    __slots__ = ("name", "total", "count", "children")

    def __init__(self, name: str):
        self.name = name
        self.total = 0.0
        self.count = 0
        self.children: dict[str, _Span] = {}

    def child(self, name: str) -> "_Span":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = _Span(name)
        return node

    def to_dict(self) -> dict:
        """JSON-serializable subtree."""
        payload: dict = {"total_s": self.total, "count": self.count}
        if self.children:
            payload["children"] = {name: child.to_dict()
                                   for name, child in self.children.items()}
        return payload


_ROOT = _Span("<root>")
_STACK: list[_Span] = [_ROOT]


@contextlib.contextmanager
def profile(name: str):
    """Time a scope as a span nested under the currently open span."""
    if not telemetry_enabled():
        yield
        return
    span = _STACK[-1].child(name)
    _STACK.append(span)
    start = time.perf_counter()
    try:
        yield
    finally:
        span.total += time.perf_counter() - start
        span.count += 1
        # A reset_profile() inside this scope already truncated the stack;
        # popping unconditionally would eventually evict the root.
        if _STACK[-1] is span:
            _STACK.pop()


def profile_tree() -> dict:
    """The accumulated spans as a nested mapping (children of the root)."""
    return {name: span.to_dict() for name, span in _ROOT.children.items()}


def reset_profile() -> None:
    """Drop every accumulated span (open scopes keep working)."""
    _ROOT.children.clear()
    del _STACK[1:]


def profile_report(tree: dict | None = None) -> str:
    """Indented text breakdown of the profile tree.

    Each line shows the span's total wall time, entry count, and its share
    of the parent span's time.
    """
    tree = profile_tree() if tree is None else tree
    lines: list[str] = []

    def render(children: dict, indent: int, parent_total: float | None) -> None:
        order = sorted(children.items(),
                       key=lambda item: item[1]["total_s"], reverse=True)
        for name, node in order:
            share = ""
            if parent_total and parent_total > 0:
                share = f"  ({100.0 * node['total_s'] / parent_total:5.1f}%)"
            lines.append(f"{'  ' * indent}{name:<24} "
                         f"{node['total_s'] * 1e3:10.2f} ms  "
                         f"x{node['count']}{share}")
            render(node.get("children", {}), indent + 1, node["total_s"])

    render(tree, 0, None)
    return "\n".join(lines) if lines else "(no profile spans recorded)"
