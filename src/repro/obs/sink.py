"""JSONL event sink and the end-of-run summary writer.

A telemetry file is a stream of one-JSON-object-per-line records.  The
first line is a ``telemetry_start`` header, instrumented code appends
events (``train_step``, ``epoch``, ``eval_batch``, ``checkpoint``, ...),
and closing the run appends a ``run_summary`` record holding the full
metrics-registry snapshot and the profiler tree.  ``make telemetry-report
FILE=...`` pretty-prints such a file (``repro.obs.report``).

:func:`telemetry_run` is the one-stop entry point used by the trainer
tests and the experiment runners::

    with obs.telemetry_run("runs/table2.telemetry.jsonl", run="table2"):
        run_table2(...)
"""

from __future__ import annotations

import contextlib
import json
import time
from pathlib import Path

from repro.obs.profile import profile_tree, reset_profile
from repro.obs.registry import (
    MetricsRegistry,
    get_registry,
    set_registry,
    set_telemetry,
)

SCHEMA = "telemetry/v1"


def _jsonable(value):
    """Coerce numpy scalars and other leaves into JSON-native types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    # Numpy scalars (and 0-d arrays) expose .item() returning the native
    # Python equivalent — crucially keeping float32 losses as floats, where
    # an int() attempt would silently truncate them.
    extract = getattr(value, "item", None)
    if extract is not None:
        try:
            return _jsonable(extract())
        except (TypeError, ValueError):
            pass
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


class JsonlSink:
    """Append-only JSONL writer with line-buffered flushing.

    Every :meth:`write` lands on disk immediately (line-buffered file plus
    explicit flush), so a crashed run's telemetry is readable up to the
    final completed record.
    """

    def __init__(self, path: str | Path, run: str | None = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.records_written = 0
        self.write({"ts": 0.0, "event": "telemetry_start", "schema": SCHEMA,
                    "run": run, "created_unix": time.time()})

    def write(self, record: dict) -> None:
        """Append one event record as a JSON line."""
        if self._handle.closed:
            return
        json.dump(_jsonable(record), self._handle, separators=(", ", ": "))
        self._handle.write("\n")
        self._handle.flush()
        self.records_written += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._handle.closed:
            self._handle.close()


def write_summary(path: str | Path, registry: MetricsRegistry,
                  run: str | None = None, extra: dict | None = None) -> Path:
    """Write an end-of-run summary JSON next to a telemetry stream.

    The summary bundles the registry snapshot (every counter / gauge /
    histogram) with the profiler tree, as one indented JSON document —
    the regression-visible artefact diffed between runs.
    """
    path = Path(path)
    payload = {
        "schema": SCHEMA + "/summary",
        "run": run,
        "created_unix": time.time(),
        "metrics": registry.snapshot(),
        "profile": profile_tree(),
    }
    if extra:
        payload.update(_jsonable(extra))
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_jsonable(payload), handle, indent=2)
        handle.write("\n")
    return path


@contextlib.contextmanager
def telemetry_run(path: str | Path, run: str | None = None,
                  summary: bool = True):
    """Enable telemetry for a scope and stream it to ``path`` (JSONL).

    Swaps in a fresh global registry with a :class:`JsonlSink` attached and
    resets the profiler, so the emitted stream and summary cover exactly
    this run.  On exit the stream gains a ``run_summary`` record and (with
    ``summary=True``) a sibling ``<stem>.summary.json`` is written; the
    previous registry and toggle state are restored even on error.
    """
    path = Path(path)
    sink = JsonlSink(path, run=run)
    registry = MetricsRegistry()
    registry.attach(sink)
    previous_registry = set_registry(registry)
    previous_enabled = set_telemetry(True)
    reset_profile()
    try:
        yield sink
    finally:
        try:
            registry.emit("run_summary", run=run,
                          metrics=registry.snapshot(),
                          profile=profile_tree())
            if summary:
                write_summary(path.with_suffix(".summary.json"),
                              registry, run=run)
        finally:
            set_telemetry(previous_enabled)
            set_registry(previous_registry)
            sink.close()


def read_telemetry(path: str | Path) -> list[dict]:
    """Parse a JSONL telemetry file into a list of records.

    Raises ``ValueError`` if any line fails to parse or the stream does not
    start with a ``telemetry_start`` header — used by tests and the report
    CLI to validate files.
    """
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: invalid JSONL: {error}") from error
    if not records or records[0].get("event") != "telemetry_start":
        raise ValueError(f"{path}: missing telemetry_start header")
    return records
