"""Observability layer: metrics registry, JSONL telemetry, profiling.

One subsystem for everything the training/eval stack reports about itself
(see ``docs/observability.md``):

- :mod:`repro.obs.registry` — counters, gauges, histograms, and scoped
  timers behind a global on/off toggle mirroring
  ``repro.tensor.fused.use_fused`` (off by default; near-zero cost when
  disabled).
- :mod:`repro.obs.sink` — a JSONL event stream plus an end-of-run summary
  writer; :func:`telemetry_run` wires both up for a scope.
- :mod:`repro.obs.profile` — nested ``with profile("train_step"):`` spans
  and a breakdown report.
- :mod:`repro.obs.report` — CLI pretty-printer
  (``make telemetry-report FILE=...``).

Instrumented call sites: ``Trainer`` (per-step loss / grad norm / LR /
throughput / tensor allocations, checkpoint and divergence-recovery
events), ``RankingEvaluator.evaluate`` (per-batch scoring latency,
candidates/s), the fused-vs-composed kernel dispatch in ``repro.tensor``,
every ``repro.experiments`` runner (one telemetry file per artefact), and
the ``repro.parallel`` subsystem (per-step all-reduce and per-worker
compute time, worker-count gauge, prefetch queue depth and hit/miss
counters, parallel-sweep scheduling events).  Forked worker/pool children
always run with telemetry *off* and a private registry — their stats
travel back to the parent, which is the only process that writes streams.
"""

from repro.obs.profile import profile, profile_report, profile_tree, reset_profile
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    emit,
    gauge,
    get_registry,
    histogram,
    record_backend_dispatch,
    record_kernel_dispatch,
    set_registry,
    set_telemetry,
    telemetry_enabled,
    timer,
    use_telemetry,
)
from repro.obs.sink import (
    JsonlSink,
    read_telemetry,
    telemetry_run,
    write_summary,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "JsonlSink",
    "counter",
    "gauge",
    "histogram",
    "timer",
    "emit",
    "get_registry",
    "set_registry",
    "telemetry_enabled",
    "set_telemetry",
    "use_telemetry",
    "telemetry_run",
    "read_telemetry",
    "write_summary",
    "record_kernel_dispatch",
    "record_backend_dispatch",
    "profile",
    "profile_tree",
    "profile_report",
    "reset_profile",
]
