"""Structured metrics registry: counters, gauges, histograms, scoped timers.

The registry is the in-memory half of the observability layer
(``docs/observability.md``): instruments all over the stack — the trainer,
the ranking evaluator, the fused-kernel dispatchers — record into a single
process-global :class:`MetricsRegistry`, and sinks (``repro.obs.sink``)
stream the event half to disk as JSONL.

Telemetry is **off by default** and guarded by one module-level boolean,
mirroring ``repro.tensor.fused.use_fused``: every instrumentation site
checks :func:`telemetry_enabled` first, so the disabled cost is a global
read and a branch.  Enable it for a scope with::

    from repro import obs

    with obs.use_telemetry():
        ...   # instrumented code records metrics/events

or for a whole run (with a JSONL file attached) via
:func:`repro.obs.sink.telemetry_run`.
"""

from __future__ import annotations

import contextlib
import time

_TELEMETRY_ENABLED = False


def telemetry_enabled() -> bool:
    """Return whether instrumentation sites should record anything."""
    return _TELEMETRY_ENABLED


def set_telemetry(enabled: bool) -> bool:
    """Switch telemetry on/off globally; returns the previous setting."""
    global _TELEMETRY_ENABLED
    previous = _TELEMETRY_ENABLED
    _TELEMETRY_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def use_telemetry(enabled: bool = True):
    """Context manager selecting telemetry on (default) or off for a scope."""
    previous = set_telemetry(enabled)
    try:
        yield
    finally:
        set_telemetry(previous)


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class Counter:
    """Monotonically increasing count (events, dispatches, steps)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def snapshot(self) -> dict:
        """JSON-serializable state."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins scalar (current LR, epoch number, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def snapshot(self) -> dict:
        """JSON-serializable state."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming distribution summary (running moments, extrema, quantiles).

    Stores O(1) running state — count, sum, sum of squares, min, max, and
    the last observation — plus a bounded ring buffer of the most recent
    ``sample_size`` observations from which :meth:`quantile` estimates
    p50/p99-style tail statistics (the serving latency dashboards need
    percentiles, not just moments).  Memory stays bounded regardless of how
    many values are observed.
    """

    #: Ring-buffer capacity backing :meth:`quantile`.
    sample_size = 2048

    __slots__ = ("name", "count", "total", "total_sq", "min", "max", "last",
                 "_samples", "_cursor")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.last: float | None = None
        self._samples: list[float] = []
        self._cursor = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value
        if len(self._samples) < self.sample_size:
            self._samples.append(value)
        else:
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.sample_size

    @property
    def mean(self) -> float | None:
        """Mean of all observations, or ``None`` when empty."""
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) of the distribution.

        Computed over the retained ring-buffer sample (the most recent
        ``sample_size`` observations) with nearest-rank interpolation;
        exact while fewer than ``sample_size`` values have been observed.
        Returns ``None`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    def snapshot(self) -> dict:
        """JSON-serializable state."""
        if not self.count:
            return {"type": "histogram", "count": 0}
        mean = self.total / self.count
        variance = max(self.total_sq / self.count - mean * mean, 0.0)
        return {
            "type": "histogram",
            "count": self.count,
            "mean": mean,
            "std": variance ** 0.5,
            "min": self.min,
            "max": self.max,
            "last": self.last,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


class _TimerContext:
    """Context manager produced by :meth:`MetricsRegistry.timer`."""

    __slots__ = ("_histogram", "_start", "elapsed")

    def __init__(self, histogram: Histogram | None):
        self._histogram = histogram
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self._histogram is not None:
            self._histogram.observe(self.elapsed)


class MetricsRegistry:
    """Named instruments plus attached event sinks.

    Instruments are get-or-create by name (``registry.counter("x").inc()``),
    so instrumentation sites never need set-up code.  Events flow to every
    attached sink (objects with a ``write(record: dict)`` method) stamped
    with seconds since the registry was created.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sinks: list = []
        self._epoch = time.perf_counter()

    # -- instruments ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get-or-create the counter called ``name``."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the gauge called ``name``."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the histogram called ``name``."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def timer(self, name: str) -> _TimerContext:
        """Scoped timer observing elapsed seconds into histogram ``name``."""
        return _TimerContext(self.histogram(name))

    # -- events --------------------------------------------------------
    def attach(self, sink) -> None:
        """Start forwarding events to ``sink`` (a ``write(dict)`` object)."""
        self._sinks.append(sink)

    def detach(self, sink) -> None:
        """Stop forwarding events to ``sink``."""
        if sink in self._sinks:
            self._sinks.remove(sink)

    def emit(self, event: str, **fields) -> None:
        """Send one event record to every attached sink."""
        if not self._sinks:
            return
        record = {"ts": round(time.perf_counter() - self._epoch, 6),
                  "event": event}
        record.update(fields)
        for sink in self._sinks:
            sink.write(record)

    # -- lifecycle -----------------------------------------------------
    def snapshot(self) -> dict:
        """All instruments as one JSON-serializable mapping."""
        merged: dict[str, dict] = {}
        for group in (self._counters, self._gauges, self._histograms):
            for name, instrument in group.items():
                merged[name] = instrument.snapshot()
        return dict(sorted(merged.items()))

    def reset(self) -> None:
        """Drop every instrument (sinks stay attached)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._epoch = time.perf_counter()


_REGISTRY = MetricsRegistry()

#: Shared no-op context for disabled-telemetry timer() calls.
_NULL_TIMER = _TimerContext(None)


def get_registry() -> MetricsRegistry:
    """The process-global registry instruments record into."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the global registry; returns the previous one.

    ``telemetry_run`` uses this to give each run a fresh registry so the
    end-of-run summary covers exactly that run.
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


# ----------------------------------------------------------------------
# Module-level conveniences used by instrumentation sites
# ----------------------------------------------------------------------
def emit(event: str, **fields) -> None:
    """Emit an event through the global registry (no-op when disabled)."""
    if _TELEMETRY_ENABLED:
        _REGISTRY.emit(event, **fields)


def counter(name: str) -> Counter:
    """Global-registry counter (record only when :func:`telemetry_enabled`)."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Global-registry gauge."""
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Global-registry histogram."""
    return _REGISTRY.histogram(name)


def timer(name: str) -> _TimerContext:
    """Global-registry scoped timer; a shared no-op when telemetry is off."""
    if not _TELEMETRY_ENABLED:
        return _NULL_TIMER
    return _REGISTRY.timer(name)


def record_kernel_dispatch(kernel: str, fused_on: bool) -> None:
    """Count one fused-vs-composed dispatch decision in ``repro.tensor``.

    Called from the ``functional`` dispatchers and the nn-layer consumers;
    the disabled-path cost is the boolean check.
    """
    if _TELEMETRY_ENABLED:
        path = "fused" if fused_on else "composed"
        _REGISTRY.counter(f"kernel_dispatch.{kernel}.{path}").inc()


def record_backend_dispatch(backend: str, kernel: str) -> None:
    """Count one dense-compute call routed through a named backend.

    Called from :mod:`repro.tensor.backend` hot paths (matmul, reductions);
    like :func:`record_kernel_dispatch`, the disabled-path cost is a single
    boolean check, so the seam stays telemetry-free by default.
    """
    if _TELEMETRY_ENABLED:
        _REGISTRY.counter(f"backend_dispatch.{backend}.{kernel}").inc()
