"""Benchmark of the compute-backend seam and the quantized serving path.

Four sections, written to ``BENCH_backends.json`` at the repository root
(regenerate with ``make bench-backends``):

- ``train_step`` — the fused training step of an ISRec/SASRec-sized model
  built and run under ``use_backend("float64")`` versus
  ``use_backend("float32")``.  The float64 run is the full-precision
  baseline; the recorded ``speedup_f32_vs_f64`` is the reduced-precision
  win of the backend seam (acceptance floor: 2x).
- ``serve`` — warm-request latency of the exact float engine versus the
  int8-quantized engine (both GEMM modes) over identical artifacts and
  histories, plus accuracy parity: mean/min top-10 overlap, exact-top-1
  agreement, and held-out HR@10 / NDCG@10 for both engines.  The
  ``dequant`` mode must beat both the freshly measured exact warm path
  and the committed ``BENCH_serve.json`` warm reference; the ``int8``
  GEMV mode is recorded honestly even though numpy has no fast int8
  kernels (it loses — see docs/performance.md).
- ``arena`` — allocations of a cold serve request (encoder forward +
  scoring) under the default backend versus the pooled ``arena`` backend:
  both :func:`repro.tensor.tensor_allocs` (tensor objects — unchanged by
  pooling) and :func:`repro.tensor.array_allocs` (fresh numpy buffers
  through the seam — the counter the arena attacks).
- ``gemv_micro`` — the raw item-table GEMV at float64/float32/float16
  precision and through :func:`repro.serve.quantize.int8_gemv`, so the
  dtype story behind the engine defaults is on the record.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro.models.sasrec import SASRec
from repro.tensor import fused, use_backend
from repro.tensor.backend import ArenaBackend, array_allocs
from repro.tensor.tensor import tensor_allocs
from repro.utils.bench import environment_info, measure, write_bench
from repro.utils.seeding import temp_seed

SCHEMA = "bench_backends/v1"

#: ISRec/SASRec-sized training shapes plus the serving workload of
#: ``repro.serve.bench`` (ML-1M-scale vocabulary, dim 64).
DEFAULT_SHAPES = dict(batch_size=128, seq_len=50, vocab=3416, dim=64,
                      num_heads=2, num_layers=2, num_concepts=48,
                      max_len=50, num_users=256, history_len=30, top_k=10)
#: Miniature shapes for CI smoke runs.
SMOKE_SHAPES = dict(batch_size=8, seq_len=16, vocab=200, dim=32,
                    num_heads=2, num_layers=1, num_concepts=8,
                    max_len=16, num_users=24, history_len=8, top_k=10)

PRESETS = {"default": DEFAULT_SHAPES, "smoke": SMOKE_SHAPES}

#: Backends compared in the train-step section (baseline listed first).
TRAIN_BACKENDS = ("float64", "float32")


def _measure_allocs(fn: Callable[[], object], repeats: int = 5,
                    warmup: int = 2) -> dict:
    """Like :func:`repro.utils.bench.measure`, also counting array allocs."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    tensors_before, arrays_before = tensor_allocs(), array_allocs()
    fn()
    return {"wall_time_s": best,
            "tensor_allocs": tensor_allocs() - tensors_before,
            "array_allocs": array_allocs() - arrays_before}


# ----------------------------------------------------------------------
# Section 1: train step across precision backends
# ----------------------------------------------------------------------
def _build_train_case(backend: str, shapes: dict):
    with use_backend(backend) as resolved, temp_seed(0):
        model = SASRec(num_items=shapes["vocab"], dim=shapes["dim"],
                       max_len=shapes["seq_len"],
                       num_layers=shapes["num_layers"],
                       num_heads=shapes["num_heads"], dropout=0.1)
        dtype = resolved.dtype
    rng = np.random.default_rng(0)
    batch, seq_len, vocab = shapes["batch_size"], shapes["seq_len"], shapes["vocab"]
    inputs = rng.integers(1, vocab + 1, size=(batch, seq_len))
    targets = rng.integers(1, vocab + 1, size=(batch, seq_len))
    pad = seq_len // 3
    inputs[:, :pad] = 0
    targets[:, :pad] = 0
    mask = (targets > 0).astype(dtype)
    model.train()
    parameters = list(model.parameters())
    payload = (np.arange(batch), inputs, targets, mask)

    def step() -> None:
        with use_backend(backend), fused.use_fused(True):
            loss = model.training_loss(payload)
            loss.backward()
            for parameter in parameters:
                parameter.zero_grad()

    return model, step


def bench_train_step(shapes: dict, repeats: int = 5, warmup: int = 2) -> dict:
    """Fused train step under each precision backend, float64 = baseline."""
    results: dict = {}
    for backend in TRAIN_BACKENDS:
        model, step = _build_train_case(backend, shapes)
        result = measure(step, repeats=repeats, warmup=warmup)
        result["param_dtype"] = str(model.item_embedding.weight.dtype)
        results[backend] = result
    results["speedup_f32_vs_f64"] = (
        results["float64"]["wall_time_s"]
        / max(results["float32"]["wall_time_s"], 1e-12))
    return results


# ----------------------------------------------------------------------
# Section 2: quantized serving
# ----------------------------------------------------------------------
def _holdout_metrics(engine, holdouts: dict[int, int], k: int) -> dict:
    """HR@k / NDCG@k of each user's held-out item under ``engine``."""
    hits, ndcg = [], []
    for user, target in holdouts.items():
        ranked = [item for item, _score in engine.recommend(user, k=k)]
        if target in ranked:
            rank = ranked.index(target)
            hits.append(1.0)
            ndcg.append(1.0 / np.log2(rank + 2.0))
        else:
            hits.append(0.0)
            ndcg.append(0.0)
    return {f"hr@{k}": float(np.mean(hits)), f"ndcg@{k}": float(np.mean(ndcg))}


def bench_serve_quantized(shapes: dict, repeats: int = 5, warmup: int = 2,
                          reference_path: str | Path | None = None) -> dict:
    """Exact vs quantized engines: warm latency and ranking parity."""
    from repro.serve import (RecommendationEngine, engine_for_artifact,
                             export_artifact, load_artifact)
    from repro.serve.bench import build_model, seed_histories

    model = build_model(shapes)
    with tempfile.TemporaryDirectory(prefix="bench_backends_") as tmp:
        exact_path = export_artifact(model, Path(tmp) / "exact.npz")
        quant_path = export_artifact(model, Path(tmp) / "int8.npz",
                                     quantize="int8")
        artifact_bytes = {"float32": exact_path.stat().st_size,
                          "int8": quant_path.stat().st_size}
        engines = {
            "exact": RecommendationEngine(load_artifact(exact_path)),
            "int8_dequant": engine_for_artifact(quant_path, gemm="dequant"),
            "int8_gemv": engine_for_artifact(quant_path, gemm="int8"),
        }
    k = shapes["top_k"]
    holdouts: dict[int, int] = {}
    for engine in engines.values():
        rng = seed_histories(engine, shapes)
        del rng
    for user in engines["exact"].known_users():
        history = engines["exact"].history(user)
        if len(history) > 1:
            holdouts[user] = history[-1]
            for engine in engines.values():
                engine.set_history(user, history[:-1])

    results: dict = {"artifact_bytes": artifact_bytes}
    for name, engine in engines.items():
        engine.recommend(0, k=k)  # populate the user-0 state cache
        results[f"warm_{name}"] = measure(
            lambda engine=engine: engine.recommend(0, k=k),
            repeats=max(repeats, 5), warmup=warmup)
    results["speedup_dequant_vs_exact"] = (
        results["warm_exact"]["wall_time_s"]
        / max(results["warm_int8_dequant"]["wall_time_s"], 1e-12))

    if reference_path is not None and Path(reference_path).exists():
        with open(reference_path, encoding="utf-8") as handle:
            reference = json.load(handle)
        reference_warm = (reference.get("single_request", {})
                          .get("serve_warm", {}).get("wall_time_s"))
        if reference_warm:
            results["reference_warm_s"] = reference_warm
            results["speedup_dequant_vs_reference"] = (
                reference_warm
                / max(results["warm_int8_dequant"]["wall_time_s"], 1e-12))

    overlaps, agreement = {"int8_dequant": [], "int8_gemv": []}, []
    for user in sorted(holdouts):
        top_exact = [item for item, _score in
                     engines["exact"].recommend(user, k=k)]
        exact_set = set(top_exact)
        for name in ("int8_dequant", "int8_gemv"):
            top_quant = {item for item, _score in
                         engines[name].recommend(user, k=k)}
            overlaps[name].append(len(exact_set & top_quant)
                                  / max(len(exact_set), 1))
        agreement.append(float(top_exact[0] in top_quant))
    results["topk_overlap"] = {
        name: {"mean": float(np.mean(values)), "min": float(np.min(values))}
        for name, values in overlaps.items()}
    results["top1_in_quant_top10"] = float(np.mean(agreement))
    metrics = {name: _holdout_metrics(engine, holdouts, k)
               for name, engine in engines.items()}
    results["ranking_metrics"] = metrics
    results["ranking_metrics"]["abs_diff_dequant"] = {
        key: abs(metrics["exact"][key] - metrics["int8_dequant"][key])
        for key in metrics["exact"]}
    return results


# ----------------------------------------------------------------------
# Section 3: arena-pooled cold requests
# ----------------------------------------------------------------------
def bench_arena(shapes: dict, repeats: int = 5, warmup: int = 2) -> dict:
    """Cold-request allocations: default backend vs pooled arena backend."""
    from repro.serve import engine_for_artifact, export_artifact
    from repro.serve.bench import build_model, seed_histories

    model = build_model(shapes)
    with tempfile.TemporaryDirectory(prefix="bench_backends_") as tmp:
        quant_path = export_artifact(model, Path(tmp) / "int8.npz",
                                     quantize="int8")
        engine = engine_for_artifact(quant_path)
    seed_histories(engine, shapes)
    history = engine.history(0)
    k = shapes["top_k"]

    def cold_base() -> None:
        engine.set_history(0, history)  # invalidates the cached state
        engine.recommend(0, k=k)

    arena = ArenaBackend()

    def cold_arena() -> None:
        engine.set_history(0, history)
        with use_backend(arena), arena.scope():
            engine.recommend(0, k=k)

    results = {"base": _measure_allocs(cold_base, repeats, warmup),
               "arena": _measure_allocs(cold_arena, repeats, warmup)}
    results["arena"]["pool"] = arena.pool_stats()
    base_arrays = results["base"]["array_allocs"]
    results["array_alloc_reduction"] = (
        1.0 - results["arena"]["array_allocs"] / base_arrays
        if base_arrays else 0.0)
    return results


# ----------------------------------------------------------------------
# Section 4: GEMV precision micro
# ----------------------------------------------------------------------
def bench_gemv_micro(shapes: dict, repeats: int = 5, warmup: int = 2) -> dict:
    """Item-table GEMV at each precision plus the honest int8 product."""
    from repro.serve.quantize import int8_gemv, quantize_per_channel

    rng = np.random.default_rng(3)
    table64 = rng.normal(size=(shapes["vocab"] + 1, shapes["dim"]))
    state64 = rng.normal(size=shapes["dim"])
    table32, state32 = table64.astype(np.float32), state64.astype(np.float32)
    table16, state16 = table64.astype(np.float16), state64.astype(np.float16)
    q, scales = quantize_per_channel(table32)

    cases = {
        "float64": lambda: table64 @ state64,
        "float32": lambda: table32 @ state32,
        "float16": lambda: table16 @ state16,
        "int8_gemv": lambda: int8_gemv(q, scales, state32),
    }
    results = {name: measure(case, repeats=max(repeats, 7), warmup=warmup)
               for name, case in cases.items()}
    results["speedup_f32_vs_f64"] = (
        results["float64"]["wall_time_s"]
        / max(results["float32"]["wall_time_s"], 1e-12))
    return results


# ----------------------------------------------------------------------
# Top-level runner / CLI
# ----------------------------------------------------------------------
def run_backend_bench(shapes: dict | None = None, repeats: int = 5,
                      warmup: int = 2, preset: str = "default",
                      reference_path: str | Path | None = None) -> dict:
    """Run every section and return the full results document."""
    shapes = dict(shapes or PRESETS[preset])
    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "preset": preset,
        "shapes": shapes,
        "repeats": repeats,
        "environment": environment_info(),
        "train_step": bench_train_step(shapes, repeats, warmup),
        "serve": bench_serve_quantized(shapes, repeats, warmup,
                                       reference_path=reference_path),
        "arena": bench_arena(shapes, repeats, warmup),
        "gemv_micro": bench_gemv_micro(shapes, repeats, warmup),
    }


def format_summary(results: dict) -> str:
    """Human-readable summary of a results document."""
    as_us = lambda seconds: f"{seconds * 1e6:8.1f} us"  # noqa: E731
    train, serve = results["train_step"], results["serve"]
    arena, micro = results["arena"], results["gemv_micro"]
    lines = [f"backend bench  preset={results['preset']}"]
    lines.append(
        f"  train step     float64 {train['float64']['wall_time_s'] * 1e3:8.2f} ms"
        f"   float32 {train['float32']['wall_time_s'] * 1e3:8.2f} ms"
        f"   speedup {train['speedup_f32_vs_f64']:.2f}x")
    line = (f"  serve warm     exact {as_us(serve['warm_exact']['wall_time_s'])}"
            f"   int8 {as_us(serve['warm_int8_dequant']['wall_time_s'])}"
            f"   speedup {serve['speedup_dequant_vs_exact']:.2f}x")
    if "reference_warm_s" in serve:
        line += f"   vs committed ref {serve['speedup_dequant_vs_reference']:.2f}x"
    lines.append(line)
    overlap = serve["topk_overlap"]["int8_dequant"]
    lines.append(f"  top-10 overlap mean {overlap['mean']:.3f}  min {overlap['min']:.3f}"
                 f"   artifact {serve['artifact_bytes']['int8'] / 1e3:.0f} kB"
                 f" vs {serve['artifact_bytes']['float32'] / 1e3:.0f} kB")
    lines.append(
        f"  arena cold     array allocs {arena['base']['array_allocs']}"
        f" -> {arena['arena']['array_allocs']}"
        f"   (-{arena['array_alloc_reduction'] * 100:.0f}%)"
        f"   tensor allocs {arena['base']['tensor_allocs']}"
        f" -> {arena['arena']['tensor_allocs']}")
    lines.append(
        f"  gemv           f64 {as_us(micro['float64']['wall_time_s'])}"
        f"  f32 {as_us(micro['float32']['wall_time_s'])}"
        f"  f16 {as_us(micro['float16']['wall_time_s'])}"
        f"  int8 {as_us(micro['int8_gemv']['wall_time_s'])}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_backends.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--preset", default="default", choices=sorted(PRESETS),
                        help="shape preset (default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per measurement (best-of)")
    parser.add_argument("--reference", default="BENCH_serve.json",
                        help="committed serve bench to compare the quantized "
                             "warm path against (default: %(default)s)")
    args = parser.parse_args(argv)

    results = run_backend_bench(repeats=args.repeats, preset=args.preset,
                                reference_path=args.reference)
    write_bench(results, args.out)
    print(format_summary(results))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
