"""Shared utilities: seeding, checkpointing, fault injection, tables, timers."""

from repro.utils.faults import FaultPlan, FaultyModel, InjectedCrash, truncate_file
from repro.utils.seeding import set_seed, get_rng, temp_seed
from repro.utils.serialization import (
    CheckpointIntegrityError,
    load_checkpoint,
    save_checkpoint,
    write_npz_atomic,
)
from repro.utils.tables import ResultTable, format_float
from repro.utils.timers import Timer

__all__ = [
    "set_seed",
    "get_rng",
    "temp_seed",
    "ResultTable",
    "format_float",
    "Timer",
    "save_checkpoint",
    "load_checkpoint",
    "write_npz_atomic",
    "CheckpointIntegrityError",
    "FaultPlan",
    "FaultyModel",
    "InjectedCrash",
    "truncate_file",
]
