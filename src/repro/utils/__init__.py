"""Shared utilities: deterministic seeding, table formatting, timers."""

from repro.utils.seeding import set_seed, get_rng, temp_seed
from repro.utils.serialization import load_checkpoint, save_checkpoint
from repro.utils.tables import ResultTable, format_float
from repro.utils.timers import Timer

__all__ = [
    "set_seed",
    "get_rng",
    "temp_seed",
    "ResultTable",
    "format_float",
    "Timer",
    "save_checkpoint",
    "load_checkpoint",
]
