"""Deterministic random number management.

All stochastic components (parameter initialisation, dropout, Gumbel noise,
negative sampling, synthetic data generation) draw from numpy ``Generator``
objects.  A single module-level generator provides the default stream so a
call to :func:`set_seed` makes an entire experiment reproducible, while
components that need an independent stream can request their own via
``numpy.random.default_rng``.
"""

from __future__ import annotations

import contextlib

import numpy as np

_DEFAULT_SEED = 0
_rng = np.random.default_rng(_DEFAULT_SEED)


def set_seed(seed: int) -> None:
    """Re-seed the global generator used throughout :mod:`repro`."""
    global _rng
    _rng = np.random.default_rng(seed)


def get_rng() -> np.random.Generator:
    """Return the global generator (re-seed with :func:`set_seed`)."""
    return _rng


@contextlib.contextmanager
def temp_seed(seed: int):
    """Temporarily replace the global generator with a seeded one."""
    global _rng
    saved = _rng
    _rng = np.random.default_rng(seed)
    try:
        yield
    finally:
        _rng = saved
