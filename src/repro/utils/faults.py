"""Deterministic fault injection for exercising recovery paths.

The harness produces exactly reproducible failures so fault-tolerance tests
can assert end-to-end behaviour (kill-and-resume, rollback on divergence,
checkpoint-corruption fallback) without flakiness:

- :class:`FaultPlan` — a declarative, seed-driven schedule of faults: NaN
  training losses at chosen global steps (or with a fixed probability drawn
  from a seeded generator), and injected crashes (:class:`InjectedCrash`)
  mid-epoch;
- :class:`FaultyModel` — a transparent proxy wrapping any Trainer-compatible
  model, applying the plan to ``training_loss``;
- :func:`truncate_file` — chop a checkpoint file to a fraction of its size,
  simulating a crash mid-write (the atomic writer makes this impossible for
  the *final* file, so tests use it to model external corruption).

The serving chaos half drives the ``tests/serve/test_chaos.py`` suite
(``docs/resilience.md``):

- :class:`ServeFaultPlan` — a picklable schedule of per-request serving
  faults: slow forwards (injected latency), failing forwards
  (:class:`InjectedCrash`), and hard worker deaths (``os._exit`` mid
  request, indistinguishable from SIGKILL to the parent);
- :class:`FaultyServeEngine` — a transparent proxy over a
  :class:`~repro.serve.engine.RecommendationEngine` applying the plan to
  ``recommend`` / ``recommend_batch``; the cluster worker wraps its engine
  with this when a plan is supplied;
- :func:`corrupt_file` — flip bytes in place so a checksummed artifact
  fails verification without changing its size.

All randomness comes from ``numpy.random.default_rng(plan.seed)``; the same
plan against the same training run always fires at the same steps.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np


class InjectedCrash(RuntimeError):
    """A crash injected by a :class:`FaultPlan` (simulates a hard kill)."""


@dataclass
class FaultPlan:
    """Schedule of failures to inject into a training run.

    ``*_steps`` fire deterministically at those 1-indexed global
    ``training_loss`` calls; ``*_prob`` fire stochastically-but-reproducibly
    from a generator seeded with ``seed``.  A step listed in ``crash_steps``
    wins over one listed in ``nan_loss_steps``.
    """

    seed: int = 0
    nan_loss_steps: frozenset[int] = field(default_factory=frozenset)
    crash_steps: frozenset[int] = field(default_factory=frozenset)
    nan_loss_prob: float = 0.0
    crash_prob: float = 0.0

    def __post_init__(self):
        self.nan_loss_steps = frozenset(self.nan_loss_steps)
        self.crash_steps = frozenset(self.crash_steps)
        if not (0.0 <= self.nan_loss_prob <= 1.0 and 0.0 <= self.crash_prob <= 1.0):
            raise ValueError("fault probabilities must be in [0, 1]")


class FaultyModel:
    """Proxy over a Trainer-compatible model that injects planned faults.

    Every attribute other than ``training_loss`` is forwarded to the wrapped
    model, so the proxy is a drop-in replacement for the Trainer protocol
    (``parameters``, ``train``/``eval``, ``state_dict``, batching, hooks).
    The global step counter survives rollbacks by design: a retried batch is
    a *new* call, so a one-shot fault does not re-fire on the retry.
    """

    def __init__(self, model, plan: FaultPlan):
        self._model = model
        self._plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self.step_count = 0
        self.faults_fired: list[tuple[int, str]] = []

    def __getattr__(self, name):
        return getattr(self._model, name)

    @property
    def wrapped(self):
        """The underlying model."""
        return self._model

    def training_loss(self, batch):
        """Forward to the wrapped model, injecting the planned fault (if any)."""
        self.step_count += 1
        step = self.step_count
        crash = step in self._plan.crash_steps or (
            self._plan.crash_prob > 0.0
            and self._rng.random() < self._plan.crash_prob)
        if crash:
            self.faults_fired.append((step, "crash"))
            raise InjectedCrash(f"injected crash at global step {step}")
        poison = step in self._plan.nan_loss_steps or (
            self._plan.nan_loss_prob > 0.0
            and self._rng.random() < self._plan.nan_loss_prob)
        loss = self._model.training_loss(batch)
        if poison:
            self.faults_fired.append((step, "nan_loss"))
            from repro.tensor import Tensor

            return loss * Tensor(np.asarray(np.nan, dtype=np.float32))
        return loss


def truncate_file(path: str | Path, fraction: float = 0.5) -> Path:
    """Truncate ``path`` to ``fraction`` of its size (simulated torn write).

    Returns the path.  ``fraction`` must be in ``[0, 1)``.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    path = Path(path)
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(int(size * fraction))
    return path


def corrupt_file(path: str | Path, offset: int | None = None,
                 length: int = 64) -> Path:
    """Flip ``length`` bytes of ``path`` in place (size-preserving rot).

    Unlike :func:`truncate_file` the file keeps its size and structure, so
    it exercises the checksum-verification path rather than the
    archive-parsing path.  ``offset`` defaults to the middle of the file.
    Returns the path.
    """
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    if offset is None:
        offset = size // 2
    offset = max(0, min(int(offset), size - 1))
    length = max(1, min(int(length), size - offset))
    with open(path, "r+b") as handle:
        handle.seek(offset)
        chunk = handle.read(length)
        handle.seek(offset)
        handle.write(bytes(byte ^ 0xFF for byte in chunk))
    return path


# ----------------------------------------------------------------------
# Serving chaos
# ----------------------------------------------------------------------
@dataclass
class ServeFaultPlan:
    """Schedule of per-request serving faults for a cluster worker.

    Indices are 1-based positions in the worker's request stream (each
    ``recommend`` or ``recommend_batch`` call counts once); ``*_prob``
    variants fire stochastically-but-reproducibly from a generator seeded
    with ``seed``.  Precedence per request: die > fail > slow (a dying
    worker never also sleeps).  The plan is picklable, so it crosses the
    fork into cluster worker processes.
    """

    seed: int = 0
    slow_requests: frozenset[int] = field(default_factory=frozenset)
    fail_requests: frozenset[int] = field(default_factory=frozenset)
    die_requests: frozenset[int] = field(default_factory=frozenset)
    slow_prob: float = 0.0
    fail_prob: float = 0.0
    slow_s: float = 0.05

    def __post_init__(self):
        self.slow_requests = frozenset(self.slow_requests)
        self.fail_requests = frozenset(self.fail_requests)
        self.die_requests = frozenset(self.die_requests)
        if not (0.0 <= self.slow_prob <= 1.0 and 0.0 <= self.fail_prob <= 1.0):
            raise ValueError("fault probabilities must be in [0, 1]")
        if self.slow_s < 0:
            raise ValueError(f"slow_s must be >= 0, got {self.slow_s}")


class FaultyServeEngine:
    """Proxy over a serving engine that injects a :class:`ServeFaultPlan`.

    Every attribute other than ``recommend`` / ``recommend_batch`` forwards
    to the wrapped engine, so the proxy drops into the cluster worker (and
    the :class:`~repro.serve.batcher.MicroBatcher`) unchanged.
    """

    def __init__(self, engine, plan: ServeFaultPlan):
        self._engine = engine
        self._plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self.request_count = 0
        self.faults_fired: list[tuple[int, str]] = []

    def __getattr__(self, name):
        return getattr(self._engine, name)

    @property
    def wrapped(self):
        """The underlying engine."""
        return self._engine

    def _inject(self) -> None:
        self.request_count += 1
        index = self.request_count
        if index in self._plan.die_requests:
            self.faults_fired.append((index, "die"))
            os._exit(1)  # hard death: no cleanup, like SIGKILL
        fail = index in self._plan.fail_requests or (
            self._plan.fail_prob > 0.0
            and self._rng.random() < self._plan.fail_prob)
        if fail:
            self.faults_fired.append((index, "fail"))
            raise InjectedCrash(f"injected forward failure at request {index}")
        slow = index in self._plan.slow_requests or (
            self._plan.slow_prob > 0.0
            and self._rng.random() < self._plan.slow_prob)
        if slow:
            self.faults_fired.append((index, "slow"))
            time.sleep(self._plan.slow_s)

    def recommend(self, *args, **kwargs):
        """Forward to the engine after applying the plan."""
        self._inject()
        return self._engine.recommend(*args, **kwargs)

    def recommend_batch(self, requests):
        """Forward to the engine after applying the plan (counts once)."""
        self._inject()
        return self._engine.recommend_batch(requests)
