"""Deterministic fault injection for exercising recovery paths.

The harness produces exactly reproducible failures so fault-tolerance tests
can assert end-to-end behaviour (kill-and-resume, rollback on divergence,
checkpoint-corruption fallback) without flakiness:

- :class:`FaultPlan` — a declarative, seed-driven schedule of faults: NaN
  training losses at chosen global steps (or with a fixed probability drawn
  from a seeded generator), and injected crashes (:class:`InjectedCrash`)
  mid-epoch;
- :class:`FaultyModel` — a transparent proxy wrapping any Trainer-compatible
  model, applying the plan to ``training_loss``;
- :func:`truncate_file` — chop a checkpoint file to a fraction of its size,
  simulating a crash mid-write (the atomic writer makes this impossible for
  the *final* file, so tests use it to model external corruption).

All randomness comes from ``numpy.random.default_rng(plan.seed)``; the same
plan against the same training run always fires at the same steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np


class InjectedCrash(RuntimeError):
    """A crash injected by a :class:`FaultPlan` (simulates a hard kill)."""


@dataclass
class FaultPlan:
    """Schedule of failures to inject into a training run.

    ``*_steps`` fire deterministically at those 1-indexed global
    ``training_loss`` calls; ``*_prob`` fire stochastically-but-reproducibly
    from a generator seeded with ``seed``.  A step listed in ``crash_steps``
    wins over one listed in ``nan_loss_steps``.
    """

    seed: int = 0
    nan_loss_steps: frozenset[int] = field(default_factory=frozenset)
    crash_steps: frozenset[int] = field(default_factory=frozenset)
    nan_loss_prob: float = 0.0
    crash_prob: float = 0.0

    def __post_init__(self):
        self.nan_loss_steps = frozenset(self.nan_loss_steps)
        self.crash_steps = frozenset(self.crash_steps)
        if not (0.0 <= self.nan_loss_prob <= 1.0 and 0.0 <= self.crash_prob <= 1.0):
            raise ValueError("fault probabilities must be in [0, 1]")


class FaultyModel:
    """Proxy over a Trainer-compatible model that injects planned faults.

    Every attribute other than ``training_loss`` is forwarded to the wrapped
    model, so the proxy is a drop-in replacement for the Trainer protocol
    (``parameters``, ``train``/``eval``, ``state_dict``, batching, hooks).
    The global step counter survives rollbacks by design: a retried batch is
    a *new* call, so a one-shot fault does not re-fire on the retry.
    """

    def __init__(self, model, plan: FaultPlan):
        self._model = model
        self._plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self.step_count = 0
        self.faults_fired: list[tuple[int, str]] = []

    def __getattr__(self, name):
        return getattr(self._model, name)

    @property
    def wrapped(self):
        """The underlying model."""
        return self._model

    def training_loss(self, batch):
        """Forward to the wrapped model, injecting the planned fault (if any)."""
        self.step_count += 1
        step = self.step_count
        crash = step in self._plan.crash_steps or (
            self._plan.crash_prob > 0.0
            and self._rng.random() < self._plan.crash_prob)
        if crash:
            self.faults_fired.append((step, "crash"))
            raise InjectedCrash(f"injected crash at global step {step}")
        poison = step in self._plan.nan_loss_steps or (
            self._plan.nan_loss_prob > 0.0
            and self._rng.random() < self._plan.nan_loss_prob)
        loss = self._model.training_loss(batch)
        if poison:
            self.faults_fired.append((step, "nan_loss"))
            from repro.tensor import Tensor

            return loss * Tensor(np.asarray(np.nan, dtype=np.float32))
        return loss


def truncate_file(path: str | Path, fraction: float = 0.5) -> Path:
    """Truncate ``path`` to ``fraction`` of its size (simulated torn write).

    Returns the path.  ``fraction`` must be in ``[0, 1)``.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    path = Path(path)
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(int(size * fraction))
    return path
