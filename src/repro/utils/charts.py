"""Terminal line charts for the hyper-parameter sweep figures.

matplotlib is not a dependency of this reproduction, so the Fig. 3/4
artefacts are rendered as compact ASCII charts: good enough to *see* the
peak/plateau shapes the paper plots.
"""

from __future__ import annotations

from typing import Sequence


def ascii_chart(points: Sequence[tuple[float, float]], width: int = 56,
                height: int = 10, x_label: str = "x", y_label: str = "y",
                title: str | None = None) -> str:
    """Render ``(x, y)`` points as a monotone-x ASCII line chart.

    Points are plotted at their proportional x positions with ``*`` markers
    joined by interpolated ``.`` columns; the y-axis is annotated with the
    min/max values.
    """
    if not points:
        raise ValueError("ascii_chart needs at least one point")
    if width < 8 or height < 3:
        raise ValueError("chart must be at least 8x3 characters")
    points = sorted((float(x), float(y)) for x, y in points)
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    def column(x: float) -> int:
        return int(round((x - x_low) / x_span * (width - 1)))

    def row(y: float) -> int:
        return int(round((y - y_low) / y_span * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    # Interpolated path between consecutive points.
    for (x0, y0), (x1, y1) in zip(points[:-1], points[1:]):
        c0, c1 = column(x0), column(x1)
        for c in range(c0, c1 + 1):
            fraction = 0.0 if c1 == c0 else (c - c0) / (c1 - c0)
            y = y0 + fraction * (y1 - y0)
            grid[height - 1 - row(y)][c] = "."
    for x, y in points:
        grid[height - 1 - row(y)][column(x)] = "*"

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_high:.4f} "
    bottom_label = f"{y_low:.4f} "
    pad = max(len(top_label), len(bottom_label))
    for index, grid_row in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(pad)
        elif index == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(prefix + "|" + "".join(grid_row))
    axis = " " * pad + "+" + "-" * width
    lines.append(axis)
    ticks = (" " * pad + f" {x_low:g}").ljust(pad + width - len(f"{x_high:g}")) \
        + f"{x_high:g}"
    lines.append(ticks)
    lines.append(" " * pad + f" {x_label} -> ({y_label})")
    return "\n".join(lines)
