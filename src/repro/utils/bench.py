"""Microbenchmark harness for the fused autograd kernels.

Times the training-step and eval hot paths — plus per-op microbenches —
under both the fused (:mod:`repro.tensor.fused`) and composed
(:mod:`repro.tensor.functional` reference) kernel paths, on identical
inputs, and records wall time together with the number of tensor
temporaries each path materialises (:func:`repro.tensor.tensor_allocs`).

The results are written to ``BENCH_kernels.json`` at the repository root —
the first entry of the perf trajectory every future optimisation PR is
measured against.  Regenerate it with::

    make bench-kernels            # or:
    PYTHONPATH=src python -m repro.utils.bench --out BENCH_kernels.json

``tests/test_kernel_regression.py`` runs :func:`bench_train_step` on tiny
shapes in tier-1 CI and fails if the fused path ever becomes slower than
the composed reference.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Callable

import numpy as np

from repro.models.sasrec import SASRec
from repro.tensor import functional as F
from repro.tensor import fused
from repro.tensor.tensor import Tensor, no_grad, tensor_allocs
from repro.utils.seeding import temp_seed

SCHEMA = "bench_kernels/v1"

#: Default shapes: an ISRec/SASRec-sized workload (ML-1M-scale item
#: vocabulary, the standard max_len=50 window).  The recorded numbers in
#: BENCH_kernels.json use these shapes.
DEFAULT_SHAPES = dict(batch_size=128, seq_len=50, vocab=3416, dim=64,
                      num_heads=2, num_layers=2)
#: Miniature shapes for CI smoke runs and the tier-1 regression test.
SMOKE_SHAPES = dict(batch_size=8, seq_len=16, vocab=200, dim=32,
                    num_heads=2, num_layers=1)

PRESETS = {"default": DEFAULT_SHAPES, "smoke": SMOKE_SHAPES}


def environment_info() -> dict:
    """Python/numpy/platform stamp written into every bench document."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
    }


# ----------------------------------------------------------------------
# Measurement core
# ----------------------------------------------------------------------
def measure(fn: Callable[[], object], repeats: int = 5, warmup: int = 2) -> dict:
    """Best-of-``repeats`` wall time plus tensor allocations of one call."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    before = tensor_allocs()
    fn()
    return {"wall_time_s": best, "tensor_allocs": tensor_allocs() - before}


def _compare(make_fn: Callable[[bool], Callable[[], object]],
             repeats: int, warmup: int) -> dict:
    """Measure ``make_fn(fused_on)`` under both kernel paths."""
    results = {}
    for label, flag in (("composed", False), ("fused", True)):
        with fused.use_fused(flag), temp_seed(0):
            results[label] = measure(make_fn(flag), repeats=repeats, warmup=warmup)
    composed, fused_r = results["composed"], results["fused"]
    results["speedup"] = composed["wall_time_s"] / max(fused_r["wall_time_s"], 1e-12)
    results["alloc_ratio"] = composed["tensor_allocs"] / max(fused_r["tensor_allocs"], 1)
    return results


# ----------------------------------------------------------------------
# Workload builders
# ----------------------------------------------------------------------
def _build_model_and_batch(shapes: dict) -> tuple[SASRec, tuple]:
    rng = np.random.default_rng(0)
    batch, seq_len, vocab = shapes["batch_size"], shapes["seq_len"], shapes["vocab"]
    with temp_seed(0):
        model = SASRec(num_items=vocab, dim=shapes["dim"], max_len=seq_len,
                       num_layers=shapes["num_layers"],
                       num_heads=shapes["num_heads"], dropout=0.1)
    inputs = rng.integers(1, vocab + 1, size=(batch, seq_len))
    targets = rng.integers(1, vocab + 1, size=(batch, seq_len))
    # Left-pad a third of each sequence: the realistic next_item_batches shape.
    pad = seq_len // 3
    inputs[:, :pad] = 0
    targets[:, :pad] = 0
    mask = (targets > 0).astype(np.float32)
    users = np.arange(batch)
    return model, (users, inputs, targets, mask)


def bench_train_step(shapes: dict | None = None, repeats: int = 5,
                     warmup: int = 2) -> dict:
    """Full training step (loss forward + backward) fused vs. composed."""
    shapes = shapes or DEFAULT_SHAPES
    model, batch = _build_model_and_batch(shapes)
    model.train()
    parameters = list(model.parameters())

    def make_step(_flag: bool) -> Callable[[], None]:
        def step() -> None:
            loss = model.training_loss(batch)
            loss.backward()
            for parameter in parameters:
                parameter.zero_grad()
        return step

    return _compare(make_step, repeats, warmup)


def bench_eval_forward(shapes: dict | None = None, repeats: int = 5,
                       warmup: int = 2) -> dict:
    """Inference scoring pass (``no_grad`` forward) fused vs. composed."""
    shapes = shapes or DEFAULT_SHAPES
    model, (users, inputs, _targets, _mask) = _build_model_and_batch(shapes)
    model.eval()
    rng = np.random.default_rng(1)
    candidates = rng.integers(1, shapes["vocab"] + 1,
                              size=(shapes["batch_size"], 101))

    def make_eval(_flag: bool) -> Callable[[], np.ndarray]:
        return lambda: model.score(users, inputs, candidates)

    return _compare(make_eval, repeats, warmup)


def bench_micro(shapes: dict | None = None, repeats: int = 5,
                warmup: int = 2) -> dict:
    """Per-op forward+backward microbenches, fused vs. composed."""
    shapes = shapes or DEFAULT_SHAPES
    rng = np.random.default_rng(2)
    batch, seq_len = shapes["batch_size"], shapes["seq_len"]
    vocab, dim, heads = shapes["vocab"], shapes["dim"], shapes["num_heads"]
    head_dim = dim // heads

    scores = rng.standard_normal((batch, heads, seq_len, seq_len)).astype(np.float32)
    logits = rng.standard_normal((batch, seq_len, vocab)).astype(np.float32)
    targets = rng.integers(1, vocab, size=(batch, seq_len))
    ce_mask = (rng.random((batch, seq_len)) < 0.8).astype(np.float32)
    ce_mask[:, -1] = 1.0
    qkv = [rng.standard_normal((batch, heads, seq_len, head_dim)).astype(np.float32)
           for _ in range(3)]
    states = rng.standard_normal((batch, seq_len, dim)).astype(np.float32)

    from repro.nn.attention import causal_mask
    from repro.nn.normalization import LayerNorm
    attn_mask = causal_mask(seq_len)
    with temp_seed(0):
        layer_norm = LayerNorm(dim)

    def fwd_bwd(build: Callable[[], Tensor]) -> None:
        build().backward()

    def softmax_case(fused_on: bool) -> Callable[[], None]:
        leaf = Tensor(scores, requires_grad=True)
        return lambda: fwd_bwd(lambda: F.softmax(leaf, axis=-1).sum())

    def log_softmax_case(fused_on: bool) -> Callable[[], None]:
        leaf = Tensor(logits, requires_grad=True)
        return lambda: fwd_bwd(lambda: F.log_softmax(leaf, axis=-1).sum())

    def cross_entropy_case(fused_on: bool) -> Callable[[], None]:
        leaf = Tensor(logits, requires_grad=True)
        return lambda: fwd_bwd(lambda: F.cross_entropy(leaf, targets, ce_mask))

    def attention_case(fused_on: bool) -> Callable[[], None]:
        leaves = [Tensor(data, requires_grad=True) for data in qkv]
        scale = 1.0 / np.sqrt(head_dim)
        if fused_on:
            return lambda: fwd_bwd(lambda: fused.attention(
                *leaves, mask=attn_mask, scale=scale).sum())

        def composed() -> Tensor:
            raw = (leaves[0] @ leaves[1].transpose(0, 1, 3, 2)) * scale
            masked = F.masked_fill(raw, attn_mask, -1e9)
            return (F.softmax(masked, axis=-1) @ leaves[2]).sum()
        return lambda: fwd_bwd(composed)

    def layer_norm_case(fused_on: bool) -> Callable[[], None]:
        leaf = Tensor(states, requires_grad=True)
        return lambda: fwd_bwd(lambda: layer_norm(leaf).sum())

    cases = {
        "softmax": softmax_case,
        "log_softmax": log_softmax_case,
        "cross_entropy": cross_entropy_case,
        "attention": attention_case,
        "layer_norm": layer_norm_case,
    }
    return {name: _compare(case, repeats, warmup) for name, case in cases.items()}


# ----------------------------------------------------------------------
# Top-level runner / CLI
# ----------------------------------------------------------------------
def run_kernel_bench(shapes: dict | None = None, repeats: int = 5,
                     warmup: int = 2, preset: str = "default",
                     include_micro: bool = True) -> dict:
    """Run every section and return the full results document."""
    shapes = dict(shapes or PRESETS[preset])
    results = {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "preset": preset,
        "shapes": shapes,
        "repeats": repeats,
        "environment": environment_info(),
        "train_step": bench_train_step(shapes, repeats, warmup),
        "eval_forward": bench_eval_forward(shapes, repeats, warmup),
    }
    if include_micro:
        results["micro"] = bench_micro(shapes, repeats, warmup)
    return results


def write_bench(results: dict, path: str) -> None:
    """Write a results document as indented JSON (trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")


def format_summary(results: dict) -> str:
    """Human-readable one-line-per-section summary of a results document."""
    lines = [f"kernel bench  preset={results['preset']}  shapes={results['shapes']}"]
    sections = [("train_step", results["train_step"]),
                ("eval_forward", results["eval_forward"])]
    sections += sorted(results.get("micro", {}).items())
    for name, section in sections:
        composed, fused_r = section["composed"], section["fused"]
        lines.append(
            f"  {name:<14} composed {composed['wall_time_s'] * 1e3:8.2f} ms "
            f"/ {composed['tensor_allocs']:>5} allocs   "
            f"fused {fused_r['wall_time_s'] * 1e3:8.2f} ms "
            f"/ {fused_r['tensor_allocs']:>5} allocs   "
            f"speedup {section['speedup']:.2f}x"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_kernels.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--preset", default="default", choices=sorted(PRESETS),
                        help="shape preset (default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per measurement (best-of)")
    parser.add_argument("--no-micro", action="store_true",
                        help="skip the per-op microbenches")
    args = parser.parse_args(argv)

    results = run_kernel_bench(repeats=args.repeats, preset=args.preset,
                               include_micro=not args.no_micro)
    write_bench(results, args.out)
    print(format_summary(results))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
