"""Model checkpointing: save/load parameter state to ``.npz`` files.

The format is a flat npz archive of the model's ``state_dict`` plus a
``__meta__`` JSON blob (model class name, parameter count) for sanity
checking on load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

_META_KEY = "__meta__"


def save_checkpoint(model, path: str | Path) -> Path:
    """Write ``model.state_dict()`` to ``path`` (``.npz`` appended if absent).

    Returns the resolved path written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    state = model.state_dict()
    meta = json.dumps({
        "model_class": type(model).__name__,
        "num_parameters": int(sum(np.asarray(v).size for v in state.values())),
        "keys": sorted(state),
    })
    arrays = dict(state)
    arrays[_META_KEY] = np.frombuffer(meta.encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_checkpoint(model, path: str | Path, strict_class: bool = True) -> dict:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Returns the checkpoint metadata.  Raises when the stored class name does
    not match ``model`` (disable with ``strict_class=False``) or when the
    parameter sets/shapes disagree (delegated to ``load_state_dict``).
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        state = {key: archive[key] for key in archive.files if key != _META_KEY}
    if strict_class and meta["model_class"] != type(model).__name__:
        raise TypeError(
            f"checkpoint was saved from {meta['model_class']!r} but is being "
            f"loaded into {type(model).__name__!r} (pass strict_class=False to override)"
        )
    model.load_state_dict(state)
    return meta
