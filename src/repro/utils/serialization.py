"""Crash-safe ``.npz`` checkpointing primitives.

Two layers live here:

- low-level helpers shared by every checkpoint writer in the project:
  :func:`write_npz_atomic` (tmp-file + ``os.replace`` so a crash mid-write
  can never leave a half-written archive under the final name),
  :func:`array_checksum` (CRC-32 over the raw array bytes), and
  :func:`verified_arrays` (load + integrity check against stored checksums);
- the model-level :func:`save_checkpoint` / :func:`load_checkpoint` pair:
  a flat npz archive of the model's ``state_dict`` plus a ``__meta__`` JSON
  blob (format version, model class name, parameter count, per-array
  checksums) for sanity checking on load.

Path rule: ``.npz`` is appended to the given path unless the name already
ends in ``.npz`` (so ``ckpt`` → ``ckpt.npz`` and ``ckpt.v1`` →
``ckpt.v1.npz``; multi-dot names are never mangled).

Integrity failures (truncated file, corrupted bytes, meta/array key-set
disagreement) raise :class:`CheckpointIntegrityError` rather than an opaque
``KeyError``/``BadZipFile`` so callers can fall back to an older checkpoint.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import zlib
from pathlib import Path

import numpy as np

_META_KEY = "__meta__"

#: Version stamp written into every ``__meta__`` blob; bump when the layout
#: of the archive changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 2


class CheckpointIntegrityError(RuntimeError):
    """A checkpoint file is unreadable, truncated, or fails its checksums."""


def normalize_checkpoint_path(path: str | Path) -> Path:
    """Append ``.npz`` unless the file name already ends with it."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def array_checksum(array: np.ndarray) -> int:
    """CRC-32 over the raw bytes of ``array`` (C-contiguous view)."""
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def write_npz_atomic(path: str | Path, arrays: dict[str, np.ndarray],
                     meta: dict) -> Path:
    """Atomically write ``arrays`` + a ``__meta__`` blob to ``path``.

    The meta blob is extended with the format version and a per-array
    checksum map before writing.  The archive is staged in a temporary file
    in the destination directory and moved into place with ``os.replace``,
    so readers either see the complete new file or the previous one — never
    a torn write.
    """
    path = Path(path)
    if _META_KEY in arrays:
        raise ValueError(f"array key {_META_KEY!r} is reserved")
    meta = dict(meta)
    meta.setdefault("format_version", CHECKPOINT_FORMAT_VERSION)
    meta["checksums"] = {key: array_checksum(np.asarray(value))
                         for key, value in arrays.items()}
    payload = dict(arrays)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name,
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    return path


def read_npz_verified(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Load an archive written by :func:`write_npz_atomic` and verify it.

    Returns ``(arrays, meta)``.  Raises :class:`CheckpointIntegrityError`
    when the file is unreadable (truncated zip), the meta blob is missing or
    undecodable, the meta key-set disagrees with the stored arrays, or any
    per-array checksum mismatches.
    """
    path = Path(path)
    try:
        # Own the file handle: np.load leaks its internal reader when the
        # zip header is corrupt, which matters here because corrupt archives
        # are an expected input (rotation fallback re-reads them).
        with open(path, "rb") as stream, np.load(stream) as archive:
            if _META_KEY not in archive.files:
                raise CheckpointIntegrityError(
                    f"{path}: missing {_META_KEY!r} blob")
            try:
                meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise CheckpointIntegrityError(
                    f"{path}: undecodable {_META_KEY!r} blob: {exc}") from exc
            arrays = {key: archive[key] for key in archive.files
                      if key != _META_KEY}
    except CheckpointIntegrityError:
        raise
    except Exception as exc:  # BadZipFile, OSError, EOFError, ValueError...
        raise CheckpointIntegrityError(
            f"{path}: unreadable checkpoint archive ({type(exc).__name__}: "
            f"{exc})") from exc
    checksums = meta.get("checksums")
    if checksums is not None:
        if set(checksums) != set(arrays):
            raise CheckpointIntegrityError(
                f"{path}: meta/array key-set mismatch: "
                f"meta-only={sorted(set(checksums) - set(arrays))}, "
                f"array-only={sorted(set(arrays) - set(checksums))}")
        for key, expected in checksums.items():
            actual = array_checksum(arrays[key])
            if actual != expected:
                raise CheckpointIntegrityError(
                    f"{path}: checksum mismatch for array {key!r} "
                    f"(stored {expected}, computed {actual})")
    return arrays, meta


def verified_arrays(path: str | Path) -> dict[str, np.ndarray]:
    """Arrays of a checkpoint after checksum verification (meta dropped)."""
    arrays, _meta = read_npz_verified(path)
    return arrays


def save_checkpoint(model, path: str | Path) -> Path:
    """Atomically write ``model.state_dict()`` to ``path``.

    ``.npz`` is appended unless already present (see the module docstring
    for the exact rule).  Returns the resolved path written.
    """
    path = normalize_checkpoint_path(path)
    state = model.state_dict()
    meta = {
        "model_class": type(model).__name__,
        "num_parameters": int(sum(np.asarray(v).size for v in state.values())),
        "keys": sorted(state),
    }
    return write_npz_atomic(path, dict(state), meta)


def load_checkpoint(model, path: str | Path, strict_class: bool = True) -> dict:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Returns the checkpoint metadata.  Raises
    :class:`CheckpointIntegrityError` when the archive is truncated, fails
    its checksums, or its ``__meta__`` key-set disagrees with the stored
    arrays; :class:`TypeError` when the stored class name does not match
    ``model`` (disable with ``strict_class=False``); and the usual
    ``load_state_dict`` errors when parameter sets/shapes disagree.
    """
    path = Path(path)
    if not path.exists() and normalize_checkpoint_path(path).exists():
        path = normalize_checkpoint_path(path)
    state, meta = read_npz_verified(path)
    stored_keys = meta.get("keys")
    if stored_keys is not None and sorted(stored_keys) != sorted(state):
        raise CheckpointIntegrityError(
            f"{path}: meta 'keys' disagree with stored arrays: "
            f"meta-only={sorted(set(stored_keys) - set(state))}, "
            f"array-only={sorted(set(state) - set(stored_keys))}")
    if strict_class and meta["model_class"] != type(model).__name__:
        raise TypeError(
            f"checkpoint was saved from {meta['model_class']!r} but is being "
            f"loaded into {type(model).__name__!r} (pass strict_class=False to override)"
        )
    model.load_state_dict(state)
    return meta
