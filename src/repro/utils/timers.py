"""A minimal wall-clock timer used by the experiment runners."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0
    True
    """

    def __init__(self):
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
