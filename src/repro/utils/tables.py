"""Plain-text result tables in the style of the paper's Tables 2-6.

The experiment runners and benchmark harnesses use :class:`ResultTable` to
print rows/series in the same layout the paper reports, so the benchmark
output can be compared side-by-side with the published tables.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_float(value, digits: int = 4) -> str:
    """Format a metric value the way the paper prints it (e.g. ``0.1233``)."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    return f"{value:.{digits}f}"


class ResultTable:
    """A small column-aligned text table.

    Example
    -------
    >>> table = ResultTable(["Metric", "SASRec", "ISRec"], title="Beauty")
    >>> table.add_row(["HR@10", 0.2653, 0.3594])
    >>> print(table.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None, digits: int = 4):
        self.columns = list(columns)
        self.title = title
        self.digits = digits
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable) -> None:
        """Append a row (floats formatted to ``digits`` places)."""
        row = [format_float(v, self.digits) if not isinstance(v, str) else v for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Column-aligned text rendering."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

        lines = []
        if self.title:
            lines.append(f"== {self.title} ==")
        lines.append(fmt(self.columns))
        lines.append("-+-".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
