"""Hypothesis property-based tests on the tensor engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.tensor import Tensor, functional as F
from repro.tensor.tensor import _unbroadcast

finite_floats = st.floats(min_value=-100, max_value=100, allow_nan=False,
                          allow_infinity=False, width=32)


def small_arrays(max_dims=3, max_side=5):
    return arrays(np.float64, array_shapes(max_dims=max_dims, max_side=max_side),
                  elements=finite_floats)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_softmax_is_distribution(data):
    out = F.softmax(Tensor(data), axis=-1).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-4, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_log_softmax_consistent(data):
    logp = F.log_softmax(Tensor(data), axis=-1).data
    np.testing.assert_allclose(np.exp(logp).sum(axis=-1), 1.0, rtol=1e-4, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2))
def test_add_commutative(data):
    a = Tensor(data)
    b = Tensor(data[::-1].copy())
    np.testing.assert_array_equal((a + b).data, (b + a).data)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_double_negation_identity(data):
    a = Tensor(data)
    np.testing.assert_array_equal((-(-a)).data, data)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_relu_idempotent(data):
    a = Tensor(data)
    once = a.relu().data
    twice = a.relu().relu().data
    np.testing.assert_array_equal(once, twice)
    assert np.all(once >= 0)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_matches_numpy(data):
    assert Tensor(data).sum().item() == np.float64(data.sum()).astype(np.float64) or \
        abs(Tensor(data).sum().item() - data.sum()) < 1e-6 * max(1.0, abs(data.sum()))


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2), small_arrays(max_dims=2))
def test_unbroadcast_inverts_broadcast(a, b):
    try:
        broadcast_shape = np.broadcast_shapes(a.shape, b.shape)
    except ValueError:
        return  # incompatible shapes: nothing to test
    grad = np.ones(broadcast_shape)
    reduced = _unbroadcast(grad, a.shape)
    assert reduced.shape == a.shape
    # Every reduced entry counts the number of broadcast copies it received.
    assert reduced.sum() == np.prod(broadcast_shape)


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2))
def test_backward_of_sum_is_ones(data):
    a = Tensor(data, requires_grad=True, dtype=np.float64)
    a.sum().backward()
    np.testing.assert_array_equal(a.grad, np.ones_like(data))


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=2))
def test_cosine_similarity_bounded(data):
    if data.ndim < 2 or data.shape[-1] < 1:
        return
    a = Tensor(data)
    b = Tensor(np.roll(data, 1, axis=0).copy())
    sims = F.cosine_similarity(a, b).data
    assert np.all(sims <= 1.0 + 1e-4)
    assert np.all(sims >= -1.0 - 1e-4)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
def test_matmul_shapes(n, m):
    a = Tensor(np.ones((n, m)))
    b = Tensor(np.ones((m, n)))
    out = a @ b
    assert out.shape == (n, n)
    np.testing.assert_allclose(out.data, m)
