"""Fused kernels (repro.tensor.fused): gradchecks against finite differences
and equivalence against the composed reference implementations."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadSelfAttention, causal_mask
from repro.nn.normalization import LayerNorm
from repro.tensor import functional as F
from repro.tensor import fused
from repro.tensor.gradcheck import gradcheck
from repro.tensor.tensor import Tensor, tensor_allocs


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _leaf(rng, shape, dtype=np.float64):
    return Tensor(rng.standard_normal(shape), requires_grad=True, dtype=dtype)


def _attention_composed(q, k, v, mask=None, scale=1.0):
    """The multi-op reference the fused attention kernel must match."""
    scores = (q @ k.swapaxes(-1, -2)) * scale
    if mask is not None:
        scores = F.masked_fill(scores, mask, -1e9)
    weights = F.softmax_composed(scores, axis=-1)
    return weights @ v


# ----------------------------------------------------------------------
# Gradchecks (float64, finite differences)
# ----------------------------------------------------------------------
class TestGradcheck:
    def test_softmax(self, rng):
        x = _leaf(rng, (3, 5))
        weights = Tensor(rng.standard_normal((3, 5)))
        assert gradcheck(lambda t: (fused.softmax(t) * weights).sum(), [x])

    def test_softmax_other_axis(self, rng):
        x = _leaf(rng, (2, 4, 3))
        weights = Tensor(rng.standard_normal((2, 4, 3)))
        assert gradcheck(lambda t: (fused.softmax(t, axis=1) * weights).sum(), [x])

    def test_log_softmax(self, rng):
        x = _leaf(rng, (4, 6))
        weights = Tensor(rng.standard_normal((4, 6)))
        assert gradcheck(lambda t: (fused.log_softmax(t) * weights).sum(), [x])

    def test_cross_entropy(self, rng):
        logits = _leaf(rng, (6, 7))
        targets = rng.integers(0, 7, size=6)
        assert gradcheck(lambda t: fused.cross_entropy(t, targets), [logits])

    def test_cross_entropy_with_mask(self, rng):
        logits = _leaf(rng, (2, 4, 5))
        targets = rng.integers(0, 5, size=(2, 4))
        mask = np.array([[1.0, 1.0, 0.0, 1.0], [0.0, 1.0, 1.0, 0.0]])
        assert gradcheck(lambda t: fused.cross_entropy(t, targets, mask), [logits])

    def test_attention(self, rng):
        q, k, v = (_leaf(rng, (2, 4, 3)) for _ in range(3))
        weights = Tensor(rng.standard_normal((2, 4, 3)))
        assert gradcheck(
            lambda a, b, c: (fused.attention(a, b, c, scale=0.7) * weights).sum(),
            [q, k, v],
        )

    def test_attention_causal_mask(self, rng):
        q, k, v = (_leaf(rng, (2, 4, 3)) for _ in range(3))
        mask = causal_mask(4)
        assert gradcheck(
            lambda a, b, c: fused.attention(a, b, c, mask=mask, scale=0.5).sum(),
            [q, k, v],
        )

    def test_attention_fully_masked_row(self, rng):
        # Row 1 forbidden everywhere: forward degrades to uniform weights and
        # no gradient may flow back through that row's scores.
        q, k, v = (_leaf(rng, (1, 3, 2)) for _ in range(3))
        mask = np.array([[False, True, True],
                         [True, True, True],
                         [False, False, True]])
        assert gradcheck(
            lambda a, b, c: fused.attention(a, b, c, mask=mask).sum(),
            [q, k, v],
        )

    def test_attention_dropout_mask_constant(self, rng):
        q, k, v = (_leaf(rng, (2, 3, 2)) for _ in range(3))
        drop = (rng.random((2, 3, 3)) < 0.8).astype(np.float64) / 0.8
        assert gradcheck(
            lambda a, b, c: fused.attention(a, b, c, dropout_mask=drop).sum(),
            [q, k, v],
        )

    def test_layer_norm(self, rng):
        x = _leaf(rng, (2, 3, 4))
        gamma = Tensor(rng.standard_normal(4), requires_grad=True, dtype=np.float64)
        beta = Tensor(rng.standard_normal(4), requires_grad=True, dtype=np.float64)
        weights = Tensor(rng.standard_normal((2, 3, 4)))
        assert gradcheck(
            lambda a, g, b: (fused.layer_norm(a, g, b) * weights).sum(),
            [x, gamma, beta],
        )


# ----------------------------------------------------------------------
# Forward/backward equivalence against the composed references
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_softmax_matches_composed(self, rng):
        x = Tensor(rng.standard_normal((4, 2, 12, 12)).astype(np.float32))
        fused_out = fused.softmax(x, axis=-1)
        composed = F.softmax_composed(x, axis=-1)
        np.testing.assert_allclose(fused_out.data, composed.data, atol=1e-5)

    def test_log_softmax_matches_composed(self, rng):
        x = Tensor(rng.standard_normal((4, 12, 50)).astype(np.float32))
        np.testing.assert_allclose(fused.log_softmax(x).data,
                                   F.log_softmax_composed(x).data, atol=1e-5)

    def test_cross_entropy_matches_composed(self, rng):
        logits_data = rng.standard_normal((4, 12, 50)).astype(np.float32)
        targets = rng.integers(1, 50, size=(4, 12))
        mask = (rng.random((4, 12)) < 0.7).astype(np.float32)
        mask[0] = 1.0  # keep at least one row fully valid

        a = Tensor(logits_data.copy(), requires_grad=True)
        b = Tensor(logits_data.copy(), requires_grad=True)
        fused_loss = fused.cross_entropy(a, targets, mask)
        composed_loss = F.cross_entropy_composed(b, targets, mask)
        np.testing.assert_allclose(fused_loss.data, composed_loss.data, atol=1e-5)

        fused_loss.backward()
        composed_loss.backward()
        np.testing.assert_allclose(a.grad, b.grad, atol=1e-5)

    def test_cross_entropy_no_mask_matches_composed(self, rng):
        logits_data = rng.standard_normal((8, 30)).astype(np.float32)
        targets = rng.integers(0, 30, size=8)
        a = Tensor(logits_data.copy(), requires_grad=True)
        b = Tensor(logits_data.copy(), requires_grad=True)
        np.testing.assert_allclose(fused.cross_entropy(a, targets).data,
                                   F.cross_entropy_composed(b, targets).data,
                                   atol=1e-5)

    def test_cross_entropy_all_masked_raises(self, rng):
        logits = Tensor(rng.standard_normal((3, 5)).astype(np.float32))
        with pytest.raises(ValueError):
            fused.cross_entropy(logits, np.zeros(3, dtype=int), np.zeros(3))
        with pytest.raises(ValueError):
            F.cross_entropy_composed(logits, np.zeros(3, dtype=int), np.zeros(3))

    def test_attention_matches_composed(self, rng):
        data = [rng.standard_normal((2, 2, 8, 4)).astype(np.float32) for _ in range(3)]
        mask = causal_mask(8)
        leaves_fused = [Tensor(d.copy(), requires_grad=True) for d in data]
        leaves_comp = [Tensor(d.copy(), requires_grad=True) for d in data]

        out_fused = fused.attention(*leaves_fused, mask=mask, scale=0.5)
        out_comp = _attention_composed(*leaves_comp, mask=mask, scale=0.5)
        np.testing.assert_allclose(out_fused.data, out_comp.data, atol=1e-5)

        out_fused.sum().backward()
        out_comp.sum().backward()
        for lf, lc in zip(leaves_fused, leaves_comp):
            np.testing.assert_allclose(lf.grad, lc.grad, atol=1e-4)

    def test_attention_fully_masked_rows_match_composed(self, rng):
        data = [rng.standard_normal((1, 1, 4, 3)).astype(np.float32) for _ in range(3)]
        mask = np.zeros((1, 1, 4, 4), dtype=bool)
        mask[..., 2, :] = True  # query 2 may attend to nothing at all
        leaves_fused = [Tensor(d.copy(), requires_grad=True) for d in data]
        leaves_comp = [Tensor(d.copy(), requires_grad=True) for d in data]

        out_fused = fused.attention(*leaves_fused, mask=mask)
        out_comp = _attention_composed(*leaves_comp, mask=mask)
        np.testing.assert_allclose(out_fused.data, out_comp.data, atol=1e-5)

        out_fused.sum().backward()
        out_comp.sum().backward()
        for lf, lc in zip(leaves_fused, leaves_comp):
            np.testing.assert_allclose(lf.grad, lc.grad, atol=1e-4)

    def test_layer_norm_matches_composed(self, rng):
        layer = LayerNorm(16)
        layer.gamma.data[:] = rng.standard_normal(16).astype(np.float32)
        layer.beta.data[:] = rng.standard_normal(16).astype(np.float32)
        x = Tensor(rng.standard_normal((4, 10, 16)).astype(np.float32))
        np.testing.assert_allclose(layer(x).data, layer.forward_composed(x).data,
                                   atol=1e-5)

    def test_attention_module_paths_match(self, rng):
        attention = MultiHeadSelfAttention(dim=8, num_heads=2, dropout=0.0)
        attention.eval()
        x = Tensor(rng.standard_normal((3, 6, 8)).astype(np.float32))
        padding = np.zeros((3, 6), dtype=bool)
        padding[1, :3] = True
        padding[2, :] = True  # a fully-padded sequence exercises the guard

        with fused.use_fused(True):
            out_fused = attention(x, key_padding_mask=padding)
        with fused.use_fused(False):
            out_composed = attention(x, key_padding_mask=padding)
        np.testing.assert_allclose(out_fused.data, out_composed.data, atol=1e-5)

    def test_training_loss_paths_match(self, rng):
        # The fused path folds the padding-column ban into the CE kernel
        # (suppress_index=0); the composed path keeps all_item_logits + CE.
        from repro.models.sasrec import SASRec
        from repro.utils.seeding import temp_seed

        with temp_seed(3):
            model = SASRec(num_items=30, dim=8, max_len=6, num_layers=1,
                           dropout=0.0)
        inputs = rng.integers(1, 31, size=(4, 6))
        targets = rng.integers(1, 31, size=(4, 6))
        inputs[:, :2] = 0
        targets[:, :2] = 0
        mask = (targets > 0).astype(np.float32)
        batch = (np.arange(4), inputs, targets, mask)

        with fused.use_fused(True):
            loss_fused = model.training_loss(batch)
            loss_fused.backward()
            grads_fused = [p.grad.copy() if p.grad is not None else None
                           for p in model.parameters()]
            for p in model.parameters():
                p.zero_grad()
        with fused.use_fused(False):
            loss_composed = model.training_loss(batch)
            loss_composed.backward()

        np.testing.assert_allclose(loss_fused.data, loss_composed.data, atol=1e-5)
        for gf, parameter in zip(grads_fused, model.parameters()):
            if gf is None and parameter.grad is None:
                continue
            np.testing.assert_allclose(gf, parameter.grad, atol=1e-4)

    def test_fused_cross_entropy_suppress_index_matches_explicit_add(self, rng):
        logits_data = rng.standard_normal((5, 20)).astype(np.float32)
        targets = rng.integers(1, 20, size=5)
        a = Tensor(logits_data.copy(), requires_grad=True)
        b_data = logits_data.copy()
        b_data[:, 0] += -1e9
        b = Tensor(b_data, requires_grad=True)

        loss_a = fused.cross_entropy(a, targets, suppress_index=0)
        loss_b = F.cross_entropy_composed(b, targets)
        np.testing.assert_allclose(loss_a.data, loss_b.data, atol=1e-5)

        loss_a.backward()
        loss_b.backward()
        np.testing.assert_allclose(a.grad, b.grad, atol=1e-5)

    def test_functional_dispatch_honours_toggle(self, rng):
        x = Tensor(rng.standard_normal((3, 4)).astype(np.float32), requires_grad=True)
        with fused.use_fused(True):
            assert F.softmax(x)._op == "fused_softmax"
        with fused.use_fused(False):
            assert F.softmax(x)._op != "fused_softmax"
        assert fused.fused_enabled()  # context managers restore the flag


# ----------------------------------------------------------------------
# Allocation behaviour (the point of fusing)
# ----------------------------------------------------------------------
class TestAllocations:
    def _allocs(self, fn):
        before = tensor_allocs()
        fn()
        return tensor_allocs() - before

    def test_fused_cross_entropy_allocates_fewer_tensors(self, rng):
        logits_data = rng.standard_normal((8, 16, 64)).astype(np.float32)
        targets = rng.integers(0, 64, size=(8, 16))

        def run(op):
            leaf = Tensor(logits_data, requires_grad=True)
            op(leaf, targets).backward()

        fused_allocs = self._allocs(lambda: run(fused.cross_entropy))
        composed_allocs = self._allocs(lambda: run(F.cross_entropy_composed))
        assert fused_allocs < composed_allocs

    def test_masked_fill_broadcasts_scalar_fill(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 5, 5)).astype(np.float32),
                   requires_grad=True)
        out = F.masked_fill(x, causal_mask(5), -1e9)
        assert out.shape == x.shape
        assert (out.data[..., 0, 1:] == -1e9).all()
        out.sum().backward()
        # Gradient is blocked exactly at masked positions.
        assert (x.grad[..., 0, 1:] == 0).all()
        assert (x.grad[..., -1, :] == 1).all()


class TestCausalMaskCache:
    def test_cached_and_readonly(self):
        first = causal_mask(9)
        assert causal_mask(9) is first
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0, 0] = True

    def test_values_unchanged(self):
        mask = causal_mask(4)
        assert mask[0, 1] and mask[2, 3]
        assert not mask.diagonal().any()
        assert not mask[3, 0]
