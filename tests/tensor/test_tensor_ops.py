"""Gradient checks for every primitive Tensor operation."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck
from repro.tensor.tensor import concatenate, maximum, stack, where


def t64(shape, rng, positive=False):
    data = rng.normal(size=shape)
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True, dtype=np.float64)


class TestArithmetic:
    def test_add(self, rng):
        a, b = t64((3, 4), rng), t64((3, 4), rng)
        assert gradcheck(lambda a, b: (a + b).sum(), [a, b])

    def test_add_broadcast(self, rng):
        a, b = t64((3, 4), rng), t64((4,), rng)
        assert gradcheck(lambda a, b: (a + b).sum(), [a, b])

    def test_add_scalar(self, rng):
        a = t64((3,), rng)
        assert gradcheck(lambda a: (a + 2.5).sum(), [a])

    def test_sub(self, rng):
        a, b = t64((2, 3), rng), t64((2, 3), rng)
        assert gradcheck(lambda a, b: (a - b).sum(), [a, b])

    def test_rsub(self, rng):
        a = t64((4,), rng)
        assert gradcheck(lambda a: (1.0 - a).sum(), [a])

    def test_mul(self, rng):
        a, b = t64((3, 4), rng), t64((3, 4), rng)
        assert gradcheck(lambda a, b: (a * b).sum(), [a, b])

    def test_mul_broadcast(self, rng):
        a, b = t64((2, 3, 4), rng), t64((1, 3, 1), rng)
        assert gradcheck(lambda a, b: (a * b).sum(), [a, b])

    def test_div(self, rng):
        a, b = t64((3, 4), rng), t64((3, 4), rng, positive=True)
        assert gradcheck(lambda a, b: (a / b).sum(), [a, b])

    def test_rdiv(self, rng):
        a = t64((5,), rng, positive=True)
        assert gradcheck(lambda a: (2.0 / a).sum(), [a])

    def test_neg(self, rng):
        a = t64((3,), rng)
        assert gradcheck(lambda a: (-a).sum(), [a])

    def test_pow(self, rng):
        a = t64((3, 2), rng, positive=True)
        assert gradcheck(lambda a: (a ** 3).sum(), [a])
        assert gradcheck(lambda a: (a ** 0.5).sum(), [a])

    def test_pow_rejects_tensor_exponent(self, rng):
        a = t64((2,), rng)
        with pytest.raises(TypeError):
            a ** a


class TestMatmul:
    def test_matmul_2d(self, rng):
        a, b = t64((3, 4), rng), t64((4, 5), rng)
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_batched(self, rng):
        a, b = t64((2, 3, 4), rng), t64((2, 4, 5), rng)
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_broadcast_batch(self, rng):
        a, b = t64((2, 3, 5, 4), rng), t64((3, 4, 6), rng)
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_vector_right(self, rng):
        a, b = t64((3, 4), rng), t64((4,), rng)
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_vector_left(self, rng):
        a, b = t64((4,), rng), t64((4, 3), rng)
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])


class TestShape:
    def test_reshape(self, rng):
        a = t64((3, 4), rng)
        assert gradcheck(lambda a: (a.reshape(2, 6) * 2).sum(), [a])

    def test_reshape_tuple_arg(self, rng):
        a = t64((6,), rng)
        assert gradcheck(lambda a: (a.reshape((2, 3)) * 3).sum(), [a])

    def test_transpose_default(self, rng):
        a = t64((3, 4), rng)
        assert gradcheck(lambda a: (a.T * a.T).sum(), [a])

    def test_transpose_axes(self, rng):
        a = t64((2, 3, 4), rng)
        assert gradcheck(lambda a: (a.transpose(1, 2, 0) ** 2).sum(), [a])

    def test_swapaxes(self, rng):
        a = t64((2, 3, 4), rng)
        assert gradcheck(lambda a: (a.swapaxes(0, 2) ** 2).sum(), [a])

    def test_getitem_slices(self, rng):
        a = t64((4, 5), rng)
        assert gradcheck(lambda a: (a[1:3, ::2] ** 2).sum(), [a])

    def test_getitem_integer_array(self, rng):
        a = t64((5, 3), rng)
        idx = np.array([0, 2, 2, 4])
        assert gradcheck(lambda a: (a[idx] ** 2).sum(), [a])

    def test_getitem_repeated_indices_accumulate(self, rng):
        a = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        out = a[np.array([1, 1, 1])].sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [0.0, 3.0, 0.0])

    def test_concatenate(self, rng):
        a, b = t64((2, 3), rng), t64((2, 2), rng)
        assert gradcheck(lambda a, b: (concatenate([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack(self, rng):
        a, b = t64((2, 3), rng), t64((2, 3), rng)
        assert gradcheck(lambda a, b: (stack([a, b], axis=1) ** 2).sum(), [a, b])


class TestReductions:
    def test_sum_all(self, rng):
        a = t64((3, 4), rng)
        assert gradcheck(lambda a: (a * a).sum(), [a])

    def test_sum_axis(self, rng):
        a = t64((3, 4), rng)
        assert gradcheck(lambda a: (a.sum(axis=0) ** 2).sum(), [a])

    def test_sum_keepdims(self, rng):
        a = t64((3, 4), rng)
        assert gradcheck(lambda a: (a.sum(axis=1, keepdims=True) * a).sum(), [a])

    def test_mean(self, rng):
        a = t64((3, 4), rng)
        assert gradcheck(lambda a: (a.mean(axis=1) ** 2).sum(), [a])

    def test_max(self, rng):
        a = Tensor(rng.permutation(12).reshape(3, 4).astype(np.float64),
                   requires_grad=True)
        assert gradcheck(lambda a: a.max(axis=1).sum(), [a])

    def test_max_all(self, rng):
        a = Tensor(rng.permutation(6).astype(np.float64), requires_grad=True)
        assert gradcheck(lambda a: a.max(), [a])

    def test_min(self, rng):
        a = Tensor(rng.permutation(8).reshape(2, 4).astype(np.float64),
                   requires_grad=True)
        assert gradcheck(lambda a: a.min(axis=0).sum(), [a])

    def test_max_tie_splits_gradient(self):
        a = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True, dtype=np.float64)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5, 0.0])


class TestElementwise:
    @pytest.mark.parametrize("op", ["exp", "sigmoid", "tanh", "relu", "abs"])
    def test_unary(self, rng, op):
        a = t64((3, 4), rng)
        assert gradcheck(lambda a: getattr(a, op)().sum(), [a])

    def test_log(self, rng):
        a = t64((3, 4), rng, positive=True)
        assert gradcheck(lambda a: a.log().sum(), [a])

    def test_sqrt(self, rng):
        a = t64((3, 4), rng, positive=True)
        assert gradcheck(lambda a: a.sqrt().sum(), [a])

    def test_clip(self, rng):
        a = Tensor(np.linspace(-2, 2, 9), requires_grad=True, dtype=np.float64)
        assert gradcheck(lambda a: (a.clip(-1.2, 1.2) ** 2).sum(), [a])

    def test_where(self, rng):
        a, b = t64((3, 4), rng), t64((3, 4), rng)
        cond = rng.random((3, 4)) > 0.5
        assert gradcheck(lambda a, b: (where(cond, a, b) ** 2).sum(), [a, b])

    def test_maximum(self, rng):
        # Offset b to avoid exact ties, where the subgradient is one-sided.
        a = Tensor(rng.permutation(12).reshape(3, 4).astype(np.float64), requires_grad=True)
        b = Tensor(rng.permutation(12).reshape(3, 4).astype(np.float64) + 0.25,
                   requires_grad=True)
        assert gradcheck(lambda a, b: maximum(a, b).sum(), [a, b])

    def test_maximum_value(self, rng):
        a = Tensor(np.array([1.0, 5.0]))
        b = Tensor(np.array([3.0, 2.0]))
        np.testing.assert_array_equal(maximum(a, b).data, [3.0, 5.0])
