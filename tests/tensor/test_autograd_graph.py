"""Behaviour of the autograd tape: accumulation, no_grad, detach, errors."""

import numpy as np
import pytest

from repro.tensor import Tensor, is_grad_enabled, no_grad, use_backend


class TestBackward:
    def test_scalar_backward_default_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * a).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 4.0])

    def test_backward_requires_scalar_without_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * a).backward()

    def test_backward_with_explicit_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3.0).backward(np.array([1.0, 10.0], dtype=np.float32))
        np.testing.assert_allclose(a.grad, [3.0, 30.0])

    def test_backward_gradient_shape_mismatch(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 2.0
        with pytest.raises(ValueError):
            out.backward(np.ones(3, dtype=np.float32))

    def test_backward_on_leaf_without_grad_raises(self):
        a = Tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_gradient_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3.0
        out = (b + b).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_deep_chain_does_not_recurse(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(2000):
            x = x + 1.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        assert d.data is a.data  # shares storage


class TestDtypes:
    def test_low_precision_floats_promoted_to_float32(self):
        assert Tensor(np.zeros(2, dtype=np.float16)).dtype == np.float32

    def test_float32_preserved(self):
        assert Tensor(np.zeros(2, dtype=np.float32)).dtype == np.float32

    def test_float64_preserved(self):
        # float64 passes through so gradcheck can run in full precision;
        # Python float lists arrive as float64 and stay float64.  This is
        # the *default* backend's policy — pinned explicitly so the test
        # also holds when the suite runs under REPRO_BACKEND=float32,
        # whose strict policy intentionally demotes float64.
        with use_backend("numpy"):
            assert Tensor(np.zeros(2, dtype=np.float64)).dtype == np.float64
            assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_integer_data_keeps_dtype_and_never_requires_grad(self):
        t = Tensor(np.array([1, 2, 3]), requires_grad=True)
        assert t.dtype == np.int64
        assert not t.requires_grad

    def test_explicit_dtype(self):
        assert Tensor([1, 2], dtype=np.float64).dtype == np.float64

    def test_astype_differentiable(self):
        a = Tensor([1.0, 2.0], requires_grad=True, dtype=np.float64)
        out = a.astype(np.float32)
        out.sum().backward()
        assert a.grad.dtype == np.float64
        np.testing.assert_allclose(a.grad, [1.0, 1.0])


class TestRepr:
    def test_repr_mentions_requires_grad(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_len_shape_size_ndim(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3
        assert t.shape == (3, 4)
        assert t.size == 12
        assert t.ndim == 2

    def test_item(self):
        assert Tensor([2.5]).item() == pytest.approx(2.5)

    def test_comparisons_return_numpy(self):
        a = Tensor([1.0, 3.0])
        mask = a > 2.0
        assert isinstance(mask, np.ndarray)
        np.testing.assert_array_equal(mask, [False, True])
