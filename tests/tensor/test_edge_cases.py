"""Edge cases of the tensor engine not covered by the op-by-op suites."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F
from repro.tensor.tensor import concatenate, stack


class TestConstruction:
    def test_from_tensorless_lists(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)

    def test_scalar(self):
        t = Tensor(3.5)
        assert t.shape == ()
        assert t.item() == pytest.approx(3.5)

    def test_bool_array_preserved(self):
        t = Tensor(np.array([True, False]))
        assert t.dtype == np.bool_
        assert not Tensor(np.array([True]), requires_grad=True).requires_grad

    def test_numpy_shares_memory(self):
        data = np.zeros(3, dtype=np.float32)
        t = Tensor(data)
        t.numpy()[0] = 5.0
        assert data[0] == 5.0


class TestFreeFunctions:
    def test_concatenate_accepts_raw_arrays(self):
        out = concatenate([np.ones((2, 2)), Tensor(np.zeros((2, 2)))], axis=0)
        assert out.shape == (4, 2)

    def test_stack_negative_axis(self):
        out = stack([Tensor(np.ones(3)), Tensor(np.zeros(3))], axis=-1)
        assert out.shape == (3, 2)

    def test_concatenate_gradient_routes_to_grad_inputs_only(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True, dtype=np.float64)
        b = Tensor(np.ones((2, 2)), dtype=np.float64)
        concatenate([a, b], axis=0).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 2)))
        assert b.grad is None


class TestFunctionalEdges:
    def test_logsumexp_keepdims(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), dtype=np.float64)
        out = F.logsumexp(x, axis=1, keepdims=True)
        assert out.shape == (3, 1)

    def test_softmax_on_single_element_axis(self):
        out = F.softmax(Tensor(np.array([[5.0]])), axis=-1)
        np.testing.assert_allclose(out.data, [[1.0]])

    def test_cross_entropy_2d_targets(self, rng):
        logits = Tensor(rng.normal(size=(2, 3, 4)), dtype=np.float64,
                        requires_grad=True)
        targets = np.array([[0, 1, 2], [3, 2, 1]])
        loss = F.cross_entropy(logits, targets)
        assert np.isfinite(loss.item())

    def test_bpr_loss_symmetric_zero(self):
        scores = Tensor(np.array([1.0, 2.0]), dtype=np.float64)
        loss = F.bpr_loss(scores, scores)
        assert loss.item() == pytest.approx(np.log(2.0), rel=1e-5)


class TestSizeOneDims:
    def test_broadcast_through_size_one(self, rng):
        a = Tensor(rng.normal(size=(3, 1, 4)), requires_grad=True, dtype=np.float64)
        b = Tensor(rng.normal(size=(1, 5, 4)), requires_grad=True, dtype=np.float64)
        (a * b).sum().backward()
        assert a.grad.shape == (3, 1, 4)
        assert b.grad.shape == (1, 5, 4)

    def test_sum_empty_axis_tuple_behaviour(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), dtype=np.float64, requires_grad=True)
        out = a.sum(axis=(0, 1))
        assert out.shape == ()
        out.backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 3)))
