"""Additional Hypothesis properties: algebraic identities under autograd."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.tensor import Tensor, functional as F

values = st.floats(min_value=-10, max_value=10, allow_nan=False,
                   allow_infinity=False, width=32)


def mats(rows=4, cols=4):
    return arrays(np.float64, (rows, cols), elements=values)


@settings(max_examples=30, deadline=None)
@given(mats(), mats())
def test_product_rule_via_autograd(a_data, b_data):
    """d(sum(a*b))/da == b exactly, for any values."""
    a = Tensor(a_data, requires_grad=True, dtype=np.float64)
    b = Tensor(b_data, dtype=np.float64)
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, b_data, rtol=1e-7)


@settings(max_examples=30, deadline=None)
@given(mats())
def test_linearity_of_gradient(data):
    """grad of sum(3x) is three times grad of sum(x)."""
    x1 = Tensor(data, requires_grad=True, dtype=np.float64)
    (x1 * 3.0).sum().backward()
    x2 = Tensor(data, requires_grad=True, dtype=np.float64)
    x2.sum().backward()
    np.testing.assert_allclose(x1.grad, 3.0 * x2.grad, rtol=1e-7)


@settings(max_examples=30, deadline=None)
@given(mats(3, 5))
def test_transpose_involution_gradient(data):
    x = Tensor(data, requires_grad=True, dtype=np.float64)
    (x.T.T * x).sum().backward()
    np.testing.assert_allclose(x.grad, 2.0 * data, rtol=1e-7)


@settings(max_examples=30, deadline=None)
@given(mats(4, 3), st.integers(min_value=0, max_value=3))
def test_getitem_row_gradient_is_indicator(data, row):
    x = Tensor(data, requires_grad=True, dtype=np.float64)
    x[row].sum().backward()
    expected = np.zeros_like(data)
    expected[row] = 1.0
    np.testing.assert_allclose(x.grad, expected)


@settings(max_examples=30, deadline=None)
@given(mats())
def test_softmax_invariant_to_shift(data):
    """softmax(x + c) == softmax(x) for a per-row constant shift."""
    x = Tensor(data, dtype=np.float64)
    shifted = Tensor(data + 7.5, dtype=np.float64)
    np.testing.assert_allclose(F.softmax(x, axis=-1).data,
                               F.softmax(shifted, axis=-1).data,
                               rtol=1e-6, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, array_shapes(min_dims=1, max_dims=3, max_side=5),
              elements=values))
def test_exp_log_roundtrip(data):
    positive = np.abs(data) + 1.0
    x = Tensor(positive, dtype=np.float64)
    np.testing.assert_allclose(x.log().exp().data, positive, rtol=1e-9)


@settings(max_examples=30, deadline=None)
@given(mats(5, 2), mats(2, 4))
def test_matmul_grad_shapes_always_match(a_data, b_data):
    a = Tensor(a_data, requires_grad=True, dtype=np.float64)
    b = Tensor(b_data, requires_grad=True, dtype=np.float64)
    (a @ b).sum().backward()
    assert a.grad.shape == a_data.shape
    assert b.grad.shape == b_data.shape
    # Analytic: dL/dA = 1 @ B^T; dL/dB = A^T @ 1.
    np.testing.assert_allclose(a.grad, np.ones((5, 4)) @ b_data.T, rtol=1e-7)
    np.testing.assert_allclose(b.grad, a_data.T @ np.ones((5, 4)), rtol=1e-7)
