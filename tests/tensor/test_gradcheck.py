"""Tests of the gradcheck utility itself."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck, numerical_gradient


def test_numerical_gradient_of_square():
    a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True, dtype=np.float64)
    grad = numerical_gradient(lambda a: (a * a).sum(), [a], 0)
    np.testing.assert_allclose(grad, [2.0, 4.0, 6.0], rtol=1e-4)


def test_gradcheck_detects_wrong_gradient():
    """A deliberately broken op must be caught."""
    a = Tensor(np.array([1.0, 2.0]), requires_grad=True, dtype=np.float64)

    def broken(x):
        out = x * x
        # Corrupt the backward closure: doubles the true gradient.
        original = out._backward
        def wrong(grad):
            original(grad * 2.0)
        out._backward = wrong
        return out.sum()

    with pytest.raises(AssertionError):
        gradcheck(broken, [a])


def test_gradcheck_requires_scalar_output():
    a = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
    with pytest.raises(ValueError):
        gradcheck(lambda a: a * 2.0, [a])


def test_gradcheck_ignores_non_grad_inputs():
    a = Tensor(np.ones(2), requires_grad=True, dtype=np.float64)
    b = Tensor(np.ones(2), dtype=np.float64)
    assert gradcheck(lambda a, b: (a * b).sum(), [a, b])
