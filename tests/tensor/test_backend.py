"""The pluggable compute-backend seam (``repro.tensor.backend``).

Covers the dtype policies of every registered backend — including the
regression for float32 arrays surviving tensor construction under a
non-default backend — bit-compatibility of the default backend, the
scoping/nesting semantics of ``use_backend``/``set_backend``, and the
arena backend's buffer pooling (engages only inside a scope *and*
inference mode; recycles on scope exit; bounded pool).
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.nn import Linear
from repro.tensor import (
    ArenaBackend, Tensor, active_backend, array_allocs, available_backends,
    gradcheck, inference_mode, set_backend, use_backend,
)
from repro.tensor.backend import BACKENDS, Float32Backend, NumpyBackend
from repro.utils import set_seed


class TestRegistry:
    def test_available_backends(self):
        names = available_backends()
        for expected in ("numpy", "default", "float64", "float32", "arena"):
            assert expected in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            with use_backend("float128"):
                pass

    def test_use_backend_yields_instance(self):
        with use_backend("float64") as backend:
            assert backend.name == "float64"
            assert active_backend() is backend

    def test_backend_instance_accepted(self):
        arena = ArenaBackend()
        with use_backend(arena) as backend:
            assert backend is arena

    def test_nesting_restores(self):
        # Robust under REPRO_BACKEND: compare against the ambient default
        # rather than assuming the process default is "numpy".
        ambient = active_backend().name
        with use_backend("float64"):
            with use_backend("float32"):
                assert active_backend().name == "float32"
            assert active_backend().name == "float64"
        assert active_backend().name == ambient

    def test_set_backend_returns_previous(self):
        ambient = active_backend().name
        previous = set_backend("float64")
        try:
            assert active_backend().name == "float64"
        finally:
            set_backend(previous)
        assert active_backend().name == ambient

    def test_thread_override_is_local(self):
        ambient = active_backend().name
        seen = {}

        def probe():
            seen["name"] = active_backend().name

        with use_backend("float64"):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["name"] == ambient

    def test_env_selector(self):
        # REPRO_BACKEND installs the process-global default at import.
        code = ("from repro.tensor import active_backend; "
                "print(active_backend().name)")
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env={**os.environ, "REPRO_BACKEND": "float32",
                 "PYTHONPATH": "src"}, cwd=os.getcwd(), check=True)
        assert result.stdout.strip() == "float32"


class TestDtypePolicy:
    def test_default_backend_implicit_dtypes(self):
        # Bit-compatible with the pre-seam substrate: python floats arrive
        # float64 and stay, integers stay integral.
        with use_backend("numpy"):
            assert Tensor([1.0, 2.0]).dtype == np.float64
            assert Tensor(np.zeros(3, dtype=np.float32)).dtype == np.float32
            assert Tensor([1, 2]).dtype == np.int64

    def test_float32_preserved_under_float64_backend(self):
        # Regression (satellite): a non-default backend must not silently
        # promote explicit float32 data on Tensor construction.
        with use_backend("float64"):
            assert Tensor(np.zeros(4, dtype=np.float32)).dtype == np.float32
            # ...while implicit python-float data follows the backend.
            assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_float32_backend_demotes_float64(self):
        with use_backend("float32"):
            assert Tensor(np.zeros(4, dtype=np.float64)).dtype == np.float32
            assert Tensor([1.0, 2.0]).dtype == np.float32
            assert Tensor([1, 2]).dtype == np.int64

    def test_explicit_dtype_always_wins(self):
        with use_backend("float32"):
            assert Tensor([1.0], dtype=np.float64).dtype == np.float64

    def test_param_init_follows_backend(self):
        set_seed(3)
        with use_backend("float64"):
            layer64 = Linear(4, 3)
        set_seed(3)
        layer32 = Linear(4, 3)
        assert layer64.weight.dtype == np.float64
        assert layer32.weight.dtype == np.float32
        np.testing.assert_allclose(layer64.weight.data,
                                   layer32.weight.data.astype(np.float64),
                                   atol=1e-7)

    def test_half_precision_input_coerces_to_backend_dtype(self):
        assert Tensor(np.zeros(2, dtype=np.float16)).dtype == np.float32
        with use_backend("float64"):
            assert Tensor(np.zeros(2, dtype=np.float16)).dtype == np.float64


class TestNumericsThroughBackends:
    def test_default_backend_bit_compatible(self):
        # The seam's default path must produce byte-identical results to
        # raw numpy for the routed expressions.
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 4)).astype(np.float32)
        b = rng.normal(size=(4, 3)).astype(np.float32)
        out = (Tensor(a) @ Tensor(b)).data
        assert out.tobytes() == (a @ b).tobytes()
        assert Tensor(a).exp().data.tobytes() == np.exp(a).tobytes()
        assert (Tensor(a) * Tensor(a)).data.tobytes() == (a * a).tobytes()
        assert Tensor(a).sum(axis=0).data.tobytes() == a.sum(axis=0).tobytes()

    def test_batched_matmul_fold_matches_gufunc(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(2, 3, 5)).astype(np.float32)
        b = rng.normal(size=(5, 4)).astype(np.float32)
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data,
                                   np.matmul(a, b), rtol=1e-6)

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_train_step_runs_under_every_backend(self, name):
        set_seed(11)
        with use_backend(name):
            layer = Linear(6, 2)
            x = Tensor(np.random.default_rng(2).normal(size=(3, 6)))
            loss = (layer(x) ** 2).sum()
            loss.backward()
            assert layer.weight.grad is not None
            assert np.isfinite(loss.data)

    def test_gradcheck_passes_under_float32_backend(self):
        # gradcheck upcasts internally, so reduced-precision sessions keep
        # full-precision gradient validation at unchanged tolerances.
        with use_backend("float32"):
            x = Tensor(np.random.default_rng(4).normal(size=(3, 3)),
                       requires_grad=True)
            assert x.dtype == np.float32
            assert gradcheck(lambda t: (t.exp() * t).sum(), [x])


class TestArenaBackend:
    def test_no_pooling_outside_scope(self):
        arena = ArenaBackend()
        with use_backend(arena):
            with inference_mode():
                x = Tensor(np.ones((4, 4), dtype=np.float32))
                (x @ x).sum()
        assert arena.pool_stats()["hits"] == 0
        assert arena.pool_stats()["misses"] == 0

    def test_no_pooling_while_grad_enabled(self):
        # With a tape recording, buffers can outlive the scope; the arena
        # must degrade to plain allocation.
        arena = ArenaBackend()
        with use_backend(arena), arena.scope():
            x = Tensor(np.ones((4, 4), dtype=np.float32), requires_grad=True)
            (x @ x).sum().backward()
        assert arena.pool_stats()["misses"] == 0

    def test_scope_recycles_buffers(self):
        arena = ArenaBackend()
        x = np.ones((8, 8), dtype=np.float32)
        with use_backend(arena), inference_mode():
            with arena.scope():
                (Tensor(x) @ Tensor(x)).sum()
            first = arena.pool_stats()
            with arena.scope():
                (Tensor(x) @ Tensor(x)).sum()
            second = arena.pool_stats()
        assert first["misses"] > 0
        assert second["hits"] >= first["misses"]
        assert second["misses"] == first["misses"]
        assert second["leased"] == 0

    def test_array_allocs_drop_on_pool_hits(self):
        arena = ArenaBackend()
        x = np.ones((16, 16), dtype=np.float32)

        def run():
            before = array_allocs()
            with arena.scope():
                (Tensor(x) @ Tensor(x) * Tensor(x)).sum()
            return array_allocs() - before

        with use_backend(arena), inference_mode():
            cold = run()
            warm = run()
        assert cold > 0
        assert warm < cold

    def test_pooled_results_correct(self):
        arena = ArenaBackend()
        rng = np.random.default_rng(5)
        a = rng.normal(size=(6, 7)).astype(np.float32)
        b = rng.normal(size=(7, 3)).astype(np.float32)
        expected = np.tanh(a @ b) + 1.0
        with use_backend(arena), inference_mode(), arena.scope():
            for _ in range(3):  # repeats reuse recycled buffers
                got = ((Tensor(a) @ Tensor(b)).tanh() + Tensor(
                    np.ones((6, 3), dtype=np.float32))).data
                np.testing.assert_allclose(got, expected, rtol=1e-6)

    def test_pool_bounded(self):
        arena = ArenaBackend(max_buffers=2)
        x = np.ones((4, 4), dtype=np.float32)
        with use_backend(arena), inference_mode():
            with arena.scope():
                for _ in range(8):
                    Tensor(x) @ Tensor(x)
        assert arena.pool_stats()["pooled_buffers"] <= 2

    def test_nested_scopes_release_once(self):
        arena = ArenaBackend()
        x = np.ones((4, 4), dtype=np.float32)
        with use_backend(arena), inference_mode():
            with arena.scope():
                with arena.scope():
                    Tensor(x) @ Tensor(x)
                # inner exit must NOT recycle: the outer scope still runs.
                assert arena.pool_stats()["leased"] > 0
            assert arena.pool_stats()["leased"] == 0

    def test_arena_coerce_delegates(self):
        arena = ArenaBackend(base=Float32Backend())
        with use_backend(arena):
            assert Tensor(np.zeros(2, dtype=np.float64)).dtype == np.float32

    def test_repr_mentions_name(self):
        assert "numpy" in repr(NumpyBackend())
