"""Fused intent-contrastive InfoNCE kernel (repro.tensor.fused.info_nce):
gradchecks under every registered backend, equivalence against the composed
reference, and the allocation bound that justifies fusing."""

import numpy as np
import pytest

from repro.tensor import functional as F
from repro.tensor import fused
from repro.tensor.backend import available_backends, use_backend
from repro.tensor.gradcheck import gradcheck
from repro.tensor.tensor import Tensor, tensor_allocs


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _leaf(rng, shape, dtype=np.float64):
    return Tensor(rng.standard_normal(shape), requires_grad=True, dtype=dtype)


def _views(rng, n=5, d=6, dtype=np.float64):
    return _leaf(rng, (n, d), dtype=dtype), _leaf(rng, (n, d), dtype=dtype)


# ----------------------------------------------------------------------
# Gradchecks (float64, finite differences) — fused and composed, on every
# registered backend (gradcheck upcasts internally; the wrapper exercises
# the backend-specific matmul/binary paths of the forward build).
# ----------------------------------------------------------------------
class TestGradcheck:
    def test_fused(self, rng):
        anchors, positives = _views(rng)
        assert gradcheck(lambda a, p: fused.info_nce(a, p, temperature=0.3),
                         [anchors, positives])

    def test_composed(self, rng):
        anchors, positives = _views(rng)
        assert gradcheck(lambda a, p: F.info_nce_composed(a, p, temperature=0.3),
                         [anchors, positives])

    def test_single_pair_degenerate(self, rng):
        # N=1: the only candidate is the positive, loss == 0, gradient == 0.
        anchors, positives = _views(rng, n=1, d=4)
        loss = fused.info_nce(anchors, positives)
        assert float(loss.data) == pytest.approx(0.0, abs=1e-12)
        loss.backward()
        np.testing.assert_allclose(anchors.grad, 0.0, atol=1e-12)
        assert gradcheck(lambda a, p: fused.info_nce(a, p), [anchors, positives])

    @pytest.mark.parametrize("backend", sorted(available_backends()))
    @pytest.mark.parametrize("path", ["fused", "composed"])
    def test_every_backend(self, rng, backend, path):
        op = fused.info_nce if path == "fused" else F.info_nce_composed
        with use_backend(backend):
            anchors, positives = _views(rng, n=4, d=5)
            assert gradcheck(lambda a, p: op(a, p, temperature=0.25),
                             [anchors, positives])

    def test_sharp_temperature(self, rng):
        # A sharp temperature stresses the logsumexp stabilisation.
        anchors, positives = _views(rng, n=4, d=5)
        assert gradcheck(lambda a, p: fused.info_nce(a, p, temperature=0.05),
                         [anchors, positives], atol=1e-4)


# ----------------------------------------------------------------------
# Forward/backward equivalence against the composed reference
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_forward_and_grads_match_composed(self, rng):
        data_a = rng.standard_normal((16, 12)).astype(np.float32)
        data_p = rng.standard_normal((16, 12)).astype(np.float32)
        a_fused = Tensor(data_a.copy(), requires_grad=True)
        p_fused = Tensor(data_p.copy(), requires_grad=True)
        a_comp = Tensor(data_a.copy(), requires_grad=True)
        p_comp = Tensor(data_p.copy(), requires_grad=True)

        loss_fused = fused.info_nce(a_fused, p_fused, temperature=0.2)
        loss_comp = F.info_nce_composed(a_comp, p_comp, temperature=0.2)
        np.testing.assert_allclose(loss_fused.data, loss_comp.data, atol=1e-5)

        loss_fused.backward()
        loss_comp.backward()
        np.testing.assert_allclose(a_fused.grad, a_comp.grad, atol=1e-5)
        np.testing.assert_allclose(p_fused.grad, p_comp.grad, atol=1e-5)

    def test_every_backend_matches_composed(self, rng):
        data_a = rng.standard_normal((8, 6)).astype(np.float32)
        data_p = rng.standard_normal((8, 6)).astype(np.float32)
        for backend in sorted(available_backends()):
            with use_backend(backend):
                a = Tensor(data_a.copy(), requires_grad=True)
                p = Tensor(data_p.copy(), requires_grad=True)
                b = Tensor(data_a.copy(), requires_grad=True)
                q = Tensor(data_p.copy(), requires_grad=True)
                loss_fused = fused.info_nce(a, p)
                loss_comp = F.info_nce_composed(b, q)
                np.testing.assert_allclose(loss_fused.data, loss_comp.data,
                                           atol=1e-5, err_msg=backend)
                loss_fused.backward()
                loss_comp.backward()
                np.testing.assert_allclose(a.grad, b.grad, atol=1e-5,
                                           err_msg=backend)
                np.testing.assert_allclose(p.grad, q.grad, atol=1e-5,
                                           err_msg=backend)

    def test_dispatch_honours_toggle(self, rng):
        anchors, positives = _views(rng, n=3, d=4)
        with fused.use_fused(True):
            assert F.info_nce(anchors, positives)._op == "fused_info_nce"
        with fused.use_fused(False):
            assert F.info_nce(anchors, positives)._op != "fused_info_nce"
        assert fused.fused_enabled()

    def test_symmetry_in_views(self, rng):
        # The symmetric objective is invariant to swapping the two views.
        anchors, positives = _views(rng, n=6, d=5)
        forward = fused.info_nce(anchors, positives)
        swapped = fused.info_nce(positives, anchors)
        np.testing.assert_allclose(forward.data, swapped.data, atol=1e-10)

    def test_perfect_alignment_beats_mismatch(self, rng):
        # Identical views give a lower loss than independent ones.
        data = rng.standard_normal((10, 8))
        aligned = fused.info_nce(Tensor(data), Tensor(data.copy()))
        shuffled = fused.info_nce(Tensor(data), Tensor(data[::-1].copy()))
        assert float(aligned.data) < float(shuffled.data)

    @pytest.mark.parametrize("op", [fused.info_nce, F.info_nce_composed])
    def test_shape_and_temperature_validation(self, rng, op):
        with pytest.raises(ValueError):
            op(Tensor(rng.standard_normal((3, 4))),
               Tensor(rng.standard_normal((4, 4))))
        with pytest.raises(ValueError):
            op(Tensor(rng.standard_normal((2, 3, 4))),
               Tensor(rng.standard_normal((2, 3, 4))))
        with pytest.raises(ValueError):
            op(Tensor(rng.standard_normal((3, 4))),
               Tensor(rng.standard_normal((3, 4))), temperature=0.0)


# ----------------------------------------------------------------------
# Allocation behaviour (the point of fusing)
# ----------------------------------------------------------------------
class TestAllocations:
    def _allocs(self, fn):
        before = tensor_allocs()
        fn()
        return tensor_allocs() - before

    def test_fused_is_single_node(self, rng):
        anchors, positives = _views(rng, n=32, d=16)

        def run():
            fused.info_nce(anchors, positives).backward()

        # One tape node for the loss scalar, nothing else.
        assert self._allocs(run) == 1

    def test_fused_allocates_fewer_tensors(self, rng):
        data_a = rng.standard_normal((32, 16))
        data_p = rng.standard_normal((32, 16))

        def run(op):
            a = Tensor(data_a, requires_grad=True)
            p = Tensor(data_p, requires_grad=True)
            op(a, p).backward()

        fused_allocs = self._allocs(lambda: run(fused.info_nce))
        composed_allocs = self._allocs(lambda: run(F.info_nce_composed))
        assert fused_allocs < composed_allocs
