"""Nested and interleaved grad-mode behaviour."""

import numpy as np

from repro.tensor import Tensor, is_grad_enabled, no_grad


class TestNesting:
    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_graph_built_outside_survives_inside(self):
        a = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        b = a * 2.0
        with no_grad():
            c = b * 3.0  # not recorded
        d = b * 4.0      # recorded
        assert not c.requires_grad
        d.sum().backward()
        np.testing.assert_allclose(a.grad, [8.0, 8.0])

    def test_detach_inside_graph_blocks_flow(self):
        a = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        blocked = (a * 2.0).detach() * 3.0
        passed = a * 5.0
        (blocked.sum() + passed.sum()).backward()
        np.testing.assert_allclose(a.grad, [5.0, 5.0])

    def test_mixed_grad_and_nograd_parents(self):
        a = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        with no_grad():
            frozen = a * 10.0
        out = a * frozen  # frozen acts as a constant
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [10.0, 10.0])
