"""Gradient and value checks for the composite functional operations."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F, gradcheck


def t64(shape, rng):
    return Tensor(rng.normal(size=shape), requires_grad=True, dtype=np.float64)


class TestSoftmax:
    def test_softmax_sums_to_one(self, rng):
        x = t64((4, 7), rng)
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, rtol=1e-6)

    def test_softmax_grad(self, rng):
        x = t64((3, 5), rng)
        assert gradcheck(lambda x: (F.softmax(x, axis=-1) ** 2).sum(), [x])

    def test_softmax_extreme_values_stable(self):
        x = Tensor(np.array([[1000.0, 0.0, -1000.0]]))
        out = F.softmax(x, axis=-1).data
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[0, 0], 1.0, atol=1e-6)

    def test_log_softmax_grad(self, rng):
        x = t64((3, 5), rng)
        assert gradcheck(lambda x: F.log_softmax(x, axis=-1).sum(), [x])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = t64((2, 6), rng)
        np.testing.assert_allclose(
            F.log_softmax(x, axis=-1).data,
            np.log(F.softmax(x, axis=-1).data),
            rtol=1e-5, atol=1e-6,
        )

    def test_logsumexp_grad(self, rng):
        x = t64((4, 3), rng)
        assert gradcheck(lambda x: F.logsumexp(x, axis=1).sum(), [x])

    def test_logsumexp_value(self, rng):
        x = t64((4, 3), rng)
        np.testing.assert_allclose(
            F.logsumexp(x, axis=1).data,
            np.log(np.exp(x.data).sum(axis=1)),
            rtol=1e-6,
        )


class TestCrossEntropy:
    def test_matches_manual_nll(self, rng):
        logits = t64((4, 6), rng)
        targets = np.array([0, 3, 5, 2])
        loss = F.cross_entropy(logits, targets)
        logp = F.log_softmax(logits, axis=-1).data
        expected = -logp[np.arange(4), targets].mean()
        assert loss.item() == pytest.approx(expected, rel=1e-6)

    def test_grad(self, rng):
        logits = t64((3, 4), rng)
        targets = np.array([1, 0, 3])
        assert gradcheck(lambda x: F.cross_entropy(x, targets), [logits])

    def test_masked_positions_excluded(self, rng):
        logits = t64((2, 3, 4), rng)
        targets = np.array([[1, 2, 0], [3, 0, 0]])
        mask = (targets > 0).astype(np.float32)
        loss = F.cross_entropy(logits, targets, mask)
        logp = F.log_softmax(logits, axis=-1).data.reshape(-1, 4)
        picked = logp[np.arange(6), targets.reshape(-1)]
        expected = -(picked * mask.reshape(-1)).sum() / mask.sum()
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_all_masked_raises(self, rng):
        logits = t64((2, 3), rng)
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.array([0, 1]), np.zeros(2))

    def test_masked_grad(self, rng):
        logits = t64((2, 3, 4), rng)
        targets = np.array([[1, 2, 0], [3, 0, 0]])
        mask = (targets > 0).astype(np.float64)
        assert gradcheck(lambda x: F.cross_entropy(x, targets, mask), [logits])


class TestPairwiseLosses:
    def test_bce_with_logits_matches_reference(self, rng):
        logits = t64((8,), rng)
        labels = (rng.random(8) > 0.5).astype(np.float64)
        loss = F.binary_cross_entropy_with_logits(logits, labels)
        p = 1.0 / (1.0 + np.exp(-logits.data))
        expected = -(labels * np.log(p) + (1 - labels) * np.log(1 - p)).mean()
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_bce_grad(self, rng):
        logits = t64((6,), rng)
        labels = (rng.random(6) > 0.5).astype(np.float64)
        assert gradcheck(lambda x: F.binary_cross_entropy_with_logits(x, labels), [logits])

    def test_bce_extreme_logits_stable(self):
        logits = Tensor(np.array([100.0, -100.0]), requires_grad=True, dtype=np.float64)
        loss = F.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_bpr_loss_value(self, rng):
        pos = t64((5,), rng)
        neg = t64((5,), rng)
        loss = F.bpr_loss(pos, neg)
        expected = -np.log(1.0 / (1.0 + np.exp(-(pos.data - neg.data)))).mean()
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_bpr_grad(self, rng):
        pos, neg = t64((5,), rng), t64((5,), rng)
        assert gradcheck(lambda p, n: F.bpr_loss(p, n), [pos, neg])

    def test_bpr_max_grad(self, rng):
        pos, neg = t64((4,), rng), t64((4, 6), rng)
        assert gradcheck(lambda p, n: F.bpr_max_loss(p, n, regularization=0.3),
                         [pos, neg], atol=2e-4)

    def test_bpr_max_decreases_with_better_positive(self, rng):
        neg = Tensor(rng.normal(size=(3, 5)), dtype=np.float64)
        weak = F.bpr_max_loss(Tensor(np.zeros(3), dtype=np.float64), neg)
        strong = F.bpr_max_loss(Tensor(np.full(3, 5.0), dtype=np.float64), neg)
        assert strong.item() < weak.item()


class TestSimilarity:
    def test_cosine_bounds(self, rng):
        a = t64((10, 6), rng)
        b = t64((10, 6), rng)
        sims = F.cosine_similarity(a, b).data
        assert (sims <= 1.0 + 1e-5).all() and (sims >= -1.0 - 1e-5).all()

    def test_cosine_self_is_one(self, rng):
        a = t64((4, 5), rng)
        np.testing.assert_allclose(F.cosine_similarity(a, a).data, 1.0, rtol=1e-4)

    def test_cosine_grad(self, rng):
        a, b = t64((3, 4), rng), t64((3, 4), rng)
        assert gradcheck(lambda a, b: F.cosine_similarity(a, b).sum(), [a, b])

    def test_cosine_scale_invariant(self, rng):
        a, b = t64((5,), rng), t64((5,), rng)
        base = F.cosine_similarity(a, b).item()
        scaled = F.cosine_similarity(a * 7.0, b * 0.1).item()
        assert base == pytest.approx(scaled, rel=1e-4)

    def test_l2_normalize(self, rng):
        a = t64((6, 4), rng)
        norms = np.linalg.norm(F.l2_normalize(a, axis=-1).data, axis=-1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-4)

    def test_l2_normalize_grad(self, rng):
        a = t64((3, 4), rng)
        assert gradcheck(lambda a: (F.l2_normalize(a) ** 2).sum(), [a])


class TestMisc:
    def test_masked_fill(self, rng):
        x = t64((2, 3), rng)
        mask = np.array([[True, False, False], [False, True, False]])
        out = F.masked_fill(x, mask, -1e9)
        assert out.data[0, 0] == -1e9
        assert out.data[0, 1] == pytest.approx(x.data[0, 1])

    def test_masked_fill_grad_blocked_at_mask(self, rng):
        x = t64((2, 2), rng)
        mask = np.array([[True, False], [False, False]])
        F.masked_fill(x, mask, 0.0).sum().backward()
        assert x.grad[0, 0] == 0.0
        assert x.grad[0, 1] == 1.0

    def test_mean_squared_error(self, rng):
        pred = t64((5,), rng)
        target = rng.normal(size=5)
        loss = F.mean_squared_error(pred, target)
        assert loss.item() == pytest.approx(((pred.data - target) ** 2).mean(), rel=1e-5)
