"""The `python -m repro.experiments` command-line entry point."""

import pytest

from repro.experiments.__main__ import main


class TestCLI:
    def test_table3(self, capsys):
        main(["table3", "--scale", "0.35"])
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "beauty" in out

    def test_table4_with_profiles(self, capsys):
        main(["table4", "--profiles", "epinions", "--scale", "0.35"])
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "epinions" in out
        assert "beauty" not in out.split("Table 4")[1]

    def test_table2_tiny(self, capsys):
        main(["table2", "--profiles", "epinions", "--scale", "0.35",
              "--epochs", "1", "--dim", "16"])
        out = capsys.readouterr().out
        assert "ISRec" in out
        assert "Improv." in out

    def test_unknown_artefact_rejected(self):
        with pytest.raises(SystemExit):
            main(["table7"])

    def test_telemetry_dir_writes_stream(self, capsys, tmp_path):
        from repro import obs

        main(["table4", "--profiles", "epinions", "--scale", "0.35",
              "--telemetry-dir", str(tmp_path)])
        capsys.readouterr()
        records = obs.read_telemetry(tmp_path / "table4.telemetry.jsonl")
        assert records[0]["run"] == "table4"
        assert any(r["event"] == "concept_stats" for r in records)
        assert (tmp_path / "table4.telemetry.summary.json").exists()
