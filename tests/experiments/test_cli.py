"""The `python -m repro.experiments` command-line entry point."""

import pytest

from repro.experiments.__main__ import main


class TestCLI:
    def test_table3(self, capsys):
        main(["table3", "--scale", "0.35"])
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "beauty" in out

    def test_table4_with_profiles(self, capsys):
        main(["table4", "--profiles", "epinions", "--scale", "0.35"])
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "epinions" in out
        assert "beauty" not in out.split("Table 4")[1]

    def test_table2_tiny(self, capsys):
        main(["table2", "--profiles", "epinions", "--scale", "0.35",
              "--epochs", "1", "--dim", "16"])
        out = capsys.readouterr().out
        assert "ISRec" in out
        assert "Improv." in out

    def test_unknown_artefact_rejected(self):
        with pytest.raises(SystemExit):
            main(["table7"])
