"""The intent-objectives sweep runner: grid shape, extras, resume, CLI."""

import pytest

from repro.experiments import (
    IntentObjectivesResult,
    fast_config,
    run_intent_objectives,
)
from repro.experiments.__main__ import main

SCALE = 0.35


@pytest.fixture(scope="module")
def smoke_config():
    return fast_config(dim=16, num_negatives=30)


@pytest.fixture(scope="module")
def outcome(smoke_config):
    return run_intent_objectives(profiles=["epinions"], config=smoke_config,
                                 scale=SCALE)


class TestRunner:
    def test_three_variants_per_profile(self, outcome):
        assert set(outcome.results) == {"epinions"}
        assert set(outcome.results["epinions"]) == {
            "ISRec", "ISRec+contrastive", "ISRec+session-eval"}

    def test_contrastive_delta_computed(self, outcome):
        delta = outcome.contrastive_delta("epinions")
        assert delta is not None
        assert outcome.contrastive_delta("nonexistent") is None

    def test_session_run_carries_session_report(self, outcome):
        session = outcome.session_report("epinions")
        assert session is not None
        assert set(session) == {"overall", "boundary", "within",
                                "num_boundary", "num_within"}
        assert session["num_boundary"] > 0
        # Baseline and contrastive runs don't pay the session-eval cost.
        assert "session" not in outcome.results["epinions"]["ISRec"].extras

    def test_render(self, outcome):
        text = outcome.render()
        assert "Intent objectives" in text
        assert "epinions*" in text  # sparse profiles are marked
        assert "sparse profile" in text

    def test_render_partial_grid(self):
        assert "-" in IntentObjectivesResult(
            results={"beauty": {}}).render()

    def test_ledger_resume_round_trips_session_extras(self, smoke_config,
                                                      tmp_path):
        from dataclasses import replace

        config = replace(smoke_config, checkpoint_dir=str(tmp_path))
        first = run_intent_objectives(profiles=["epinions"], config=config,
                                      scale=SCALE)
        second = run_intent_objectives(profiles=["epinions"], config=config,
                                       scale=SCALE)
        for variant, run in second.results["epinions"].items():
            assert run.extras.get("resumed_from_sweep"), variant
            assert (run.report.as_dict()
                    == first.results["epinions"][variant].report.as_dict())
        assert (second.session_report("epinions")
                == first.session_report("epinions"))


class TestCli:
    def test_intents_artefact(self, capsys):
        main(["intents", "--profiles", "epinions", "--scale", str(SCALE),
              "--dim", "16", "--epochs", "2"])
        output = capsys.readouterr().out
        assert "Regenerating intents" in output
        assert "Intent objectives" in output
