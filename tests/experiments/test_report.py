"""Markdown report assembly."""

import pytest

from repro.experiments.report import render_markdown_report, write_markdown_report


class TestMarkdownReport:
    def test_render_structure(self):
        text = render_markdown_report({"Table 3": "A | B\n1 | 2"},
                                      preset="smoke", notes="unit test")
        assert "# Regenerated paper artefacts" in text
        assert "preset: smoke" in text
        assert "unit test" in text
        assert "## Table 3" in text
        assert "```text" in text

    def test_multiple_artefacts_in_order(self):
        text = render_markdown_report({"First": "x", "Second": "y"})
        assert text.index("## First") < text.index("## Second")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_markdown_report({})

    def test_write_to_disk(self, tmp_path):
        path = write_markdown_report(tmp_path / "out" / "report.md",
                                     {"T": "body"})
        assert path.exists()
        assert "## T" in path.read_text()
