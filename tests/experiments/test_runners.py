"""Smoke tests for the table/figure runners (scaled-down workloads)."""

import pytest

from repro.experiments import (
    ABLATION_NAMES,
    MODEL_NAMES,
    ExperimentConfig,
    build_model,
    fast_config,
    prepare,
    render_table3,
    render_table4,
    run_figure2,
    run_figure3,
    run_figure4,
    run_model,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)

SCALE = 0.35  # miniature datasets for smoke tests


@pytest.fixture(scope="module")
def smoke_config():
    return fast_config(dim=16, num_negatives=30)


class TestCommon:
    def test_model_names_match_paper_columns(self):
        assert MODEL_NAMES[0] == "PopRec"
        assert MODEL_NAMES[-1] == "ISRec"
        assert len(MODEL_NAMES) == 11

    def test_build_all_models(self, smoke_config):
        dataset, _split, _evaluator = prepare("epinions", smoke_config, scale=SCALE)
        for name in MODEL_NAMES + ["SASRec + concept", "BERT4Rec + concept",
                                   "w/o GNN", "w/o GNN&Intent"]:
            model = build_model(name, dataset, max_len=10, config=smoke_config)
            assert model is not None

    def test_unknown_model(self, smoke_config):
        dataset, _split, _evaluator = prepare("epinions", smoke_config, scale=SCALE)
        with pytest.raises(KeyError):
            build_model("GPT4Rec", dataset, max_len=10, config=smoke_config)

    def test_run_model_returns_report(self, smoke_config):
        dataset, split, evaluator = prepare("epinions", smoke_config, scale=SCALE)
        result = run_model("PopRec", dataset, split, evaluator, smoke_config)
        assert result.model_name == "PopRec"
        assert 0.0 <= result.report.hr10 <= 1.0


class TestTable2:
    def test_small_run_and_render(self, smoke_config):
        outcome = run_table2(profiles=["epinions"],
                             models=["PopRec", "SASRec", "ISRec"],
                             config=smoke_config, scale=SCALE)
        text = outcome.render()
        assert "Table 2" in text and "ISRec" in text and "Improv." in text
        assert "epinions" in outcome.results
        improvement = outcome.improvement("epinions", "HR@10")
        assert improvement is not None

    def test_improvement_without_isrec(self, smoke_config):
        outcome = run_table2(profiles=["epinions"], models=["PopRec"],
                             config=smoke_config, scale=SCALE)
        assert outcome.improvement("epinions", "HR@10") is None


class TestTables34:
    def test_table3(self):
        stats = run_table3(profiles=["epinions", "beauty"], scale=SCALE)
        assert set(stats) == {"epinions", "beauty"}
        text = render_table3(stats)
        assert "Avg.length" in text

    def test_table4(self):
        stats = run_table4(profiles=["epinions"], scale=SCALE)
        assert stats["epinions"].num_concepts > 0
        assert "Concepts" in render_table4(stats)


class TestTable5:
    def test_ablation_runs(self, smoke_config):
        outcome = run_table5(profiles=["epinions"],
                             variants=["ISRec", "w/o GNN&Intent"],
                             config=smoke_config, scale=SCALE)
        assert set(outcome.results["epinions"]) == {"ISRec", "w/o GNN&Intent"}
        assert "Table 5" in outcome.render()

    def test_ablation_names(self):
        assert "w/o GNN" in ABLATION_NAMES
        assert "BERT4Rec + concept" in ABLATION_NAMES


class TestTable6:
    def test_length_sweep(self, smoke_config):
        outcome = run_table6(sweeps={"epinions": [4, 8]},
                             config=smoke_config, scale=SCALE)
        assert set(outcome.results["epinions"]) == {4, 8}
        assert outcome.best_length("epinions") in (4, 8)
        assert "T=4" in outcome.render()


class TestFigures:
    def test_figure2_traces(self, smoke_config):
        outcome = run_figure2(profiles=["epinions"], users_per_profile=1,
                              config=smoke_config, scale=SCALE)
        assert len(outcome.traces["epinions"]) == 1
        assert "activated intents" in outcome.render()

    def test_figure3_sweep(self, smoke_config):
        outcome = run_figure3(dims=[2, 4], profile="epinions",
                              config=smoke_config, scale=SCALE)
        assert [value for value, _ in outcome.series("HR@10")] == [2, 4]
        assert outcome.best() in (2, 4)
        assert "d'=2" in outcome.render()

    def test_figure4_sweep(self, smoke_config):
        outcome = run_figure4(lambdas=[1, 3], profile="epinions",
                              config=smoke_config, scale=SCALE)
        assert set(outcome.results) == {1, 3}
        assert "lambda=1" in outcome.render()


class TestExperimentConfig:
    def test_train_config_propagation(self):
        config = ExperimentConfig(epochs=9, lr=0.01, seed=4)
        train = config.train_config()
        assert train.epochs == 9
        assert train.lr == 0.01
        assert train.seed == 4
