"""Sweep-level fault tolerance: completed runs are checkpointed in a ledger
and a restarted sweep resumes instead of retraining."""

import json

import numpy as np
import pytest

from repro.experiments import SweepState, fast_config, prepare, run_model, run_table2

pytestmark = pytest.mark.faults

SCALE = 0.35


@pytest.fixture(scope="module")
def prepared():
    config = fast_config(dim=16, num_negatives=30)
    return config, *prepare("epinions", config, scale=SCALE)


class TestSweepState:
    def test_record_and_reload(self, prepared, tmp_path):
        config, dataset, split, evaluator = prepared
        ledger_path = tmp_path / "sweep.json"
        sweep = SweepState(ledger_path)
        first = run_model("PopRec", dataset, split, evaluator, config,
                          sweep=sweep)
        assert "epinions/PopRec" in sweep
        assert ledger_path.exists()

        # A fresh process (new SweepState) returns the recorded result
        # without retraining.
        resumed_sweep = SweepState(ledger_path)
        second = run_model("PopRec", dataset, split, evaluator, config,
                           sweep=resumed_sweep)
        assert second.extras.get("resumed_from_sweep") is True
        assert second.report.as_dict() == first.report.as_dict()

    def test_corrupt_ledger_starts_fresh(self, tmp_path):
        ledger_path = tmp_path / "sweep.json"
        ledger_path.write_text("{ not json !")
        sweep = SweepState(ledger_path)
        assert sweep.completed == {}
        assert ledger_path.with_suffix(".json.corrupt").exists()

    def test_ledger_write_is_atomic(self, prepared, tmp_path):
        config, dataset, split, evaluator = prepared
        sweep = SweepState(tmp_path / "sweep.json")
        run_model("PopRec", dataset, split, evaluator, config, sweep=sweep)
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name != "sweep.json"]
        assert leftovers == []
        payload = json.loads((tmp_path / "sweep.json").read_text())
        assert "epinions/PopRec" in payload["completed"]


class TestRunnerResume:
    def test_table2_resumes_partial_sweep(self, tmp_path):
        """A second run_table2 call with the same checkpoint_dir replays
        nothing and reproduces the recorded metrics exactly."""
        config = fast_config(dim=16, num_negatives=30,
                             checkpoint_dir=str(tmp_path / "ckpt"))
        models = ["PopRec", "BPR-MF"]
        first = run_table2(profiles=["epinions"], models=models,
                           config=config, scale=SCALE)
        second = run_table2(profiles=["epinions"], models=models,
                            config=config, scale=SCALE)
        for name in models:
            a = first.results["epinions"][name]
            b = second.results["epinions"][name]
            np.testing.assert_array_equal(
                list(a.as_dict().values()), list(b.as_dict().values()))
        # Second pass was served from the ledger, not retrained.
        assert all(second.seconds["epinions"][name]
                   == first.seconds["epinions"][name] for name in models)
