"""Smaller details of the experiment runners."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.experiments.figure2 import _showcase_users
from repro.experiments.table2 import Table2Result
from repro.experiments.common import RunResult
from repro.eval.metrics import MetricReport


def report(value: float) -> MetricReport:
    return MetricReport(value, value, value, value, value, value)


class TestShowcaseUserSelection:
    def test_mid_length_users_selected(self):
        dataset = load_dataset("epinions", scale=0.35)
        users = _showcase_users(dataset, count=3)
        assert len(users) == 3
        lengths = sorted(len(seq) for seq in dataset.sequences)
        chosen_lengths = [len(dataset.sequences[u]) for u in users]
        # Chosen users sit in the upper-middle of the length distribution:
        # long enough to show transitions, not extreme outliers.
        assert min(chosen_lengths) >= lengths[len(lengths) // 4]

    def test_unique_users(self):
        dataset = load_dataset("epinions", scale=0.35)
        users = _showcase_users(dataset, count=4)
        assert len(set(users)) == 4


class TestTable2Accounting:
    def _result(self) -> Table2Result:
        outcome = Table2Result()
        for name, value in [("PopRec", 0.1), ("SASRec", 0.3), ("ISRec", 0.36)]:
            outcome.add(RunResult(model_name=name, dataset_name="beauty",
                                  report=report(value), seconds=1.0))
        return outcome

    def test_improvement_computation(self):
        outcome = self._result()
        improvement = outcome.improvement("beauty", "HR@10")
        assert improvement == pytest.approx(100 * (0.36 - 0.3) / 0.3)

    def test_improvement_missing_dataset(self):
        outcome = self._result()
        assert outcome.improvement("mars", "HR@10") is None

    def test_render_orders_columns_like_paper(self):
        text = self._result().render()
        header = [line for line in text.splitlines() if "Metric" in line][0]
        assert header.index("PopRec") < header.index("SASRec") < header.index("ISRec")

    def test_seconds_tracked(self):
        outcome = self._result()
        assert outcome.seconds["beauty"]["ISRec"] == 1.0
