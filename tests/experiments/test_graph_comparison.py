"""The graph-workloads sweep runner: grid shape, stats, resume, CLI."""

import pytest

from repro.experiments import (
    GraphComparisonResult,
    fast_config,
    run_graph_comparison,
)
from repro.experiments.__main__ import main
from repro.experiments.common import RunResult
from repro.eval.metrics import MetricReport

SCALE = 0.35


@pytest.fixture(scope="module")
def smoke_config():
    return fast_config(dim=16, num_negatives=30)


@pytest.fixture(scope="module")
def outcome(smoke_config):
    return run_graph_comparison(profiles=["beauty-kg"], config=smoke_config,
                                scale=SCALE)


def _fake_run(hr10):
    report = MetricReport(hr1=0.0, hr5=0.0, hr10=hr10, ndcg5=0.0,
                          ndcg10=hr10 / 2, mrr=0.0)
    return RunResult(model_name="x", dataset_name="beauty-kg", report=report)


class TestRunner:
    def test_all_models_per_profile(self, outcome):
        assert set(outcome.results) == {"beauty-kg"}
        assert set(outcome.results["beauty-kg"]) == {"FM", "KTUP", "ISRec"}

    def test_graph_stats_recorded(self, outcome):
        stats = outcome.graph_stats["beauty-kg"]
        assert stats["num_triples"] > 0
        assert stats["num_social_edges"] > 0
        assert stats["avg_social_degree"] > 0

    def test_margin_computed(self, outcome):
        margin = outcome.isrec_margin("beauty-kg")
        assert margin is not None
        assert outcome.isrec_margin("nonexistent") is None

    def test_render(self, outcome):
        text = outcome.render()
        assert "Graph workloads" in text
        assert "beauty-kg" in text
        assert "ISRec vs best" in text

    def test_margin_sign_tracks_winner(self):
        outcome = GraphComparisonResult()
        outcome.add("beauty-kg", "FM", _fake_run(0.5))
        outcome.add("beauty-kg", "KTUP", _fake_run(0.2))
        outcome.add("beauty-kg", "ISRec", _fake_run(0.6))
        assert outcome.isrec_margin("beauty-kg") == pytest.approx(20.0)
        outcome.add("beauty-kg", "ISRec", _fake_run(0.4))
        assert outcome.isrec_margin("beauty-kg") == pytest.approx(-20.0)

    def test_render_partial_grid(self):
        assert "-" in GraphComparisonResult(
            results={"beauty-kg": {}}).render()

    def test_ledger_resume(self, smoke_config, tmp_path):
        from dataclasses import replace

        config = replace(smoke_config, checkpoint_dir=str(tmp_path))
        first = run_graph_comparison(profiles=["beauty-kg"], config=config,
                                     scale=SCALE, models=("FM",))
        second = run_graph_comparison(profiles=["beauty-kg"], config=config,
                                      scale=SCALE, models=("FM",))
        run = second.results["beauty-kg"]["FM"]
        assert run.extras.get("resumed_from_sweep")
        assert (run.report.as_dict()
                == first.results["beauty-kg"]["FM"].report.as_dict())


class TestCli:
    def test_graphs_artefact(self, capsys):
        main(["graphs", "--profiles", "beauty-kg", "--scale", str(SCALE),
              "--dim", "16", "--epochs", "2"])
        output = capsys.readouterr().out
        assert "Regenerating graphs" in output
        assert "Graph workloads" in output
