"""True-intent recovery against the simulator's ground truth."""

import numpy as np
import pytest

from repro.analysis import RecoveryReport, true_intent_recovery
from repro.core import ISRec, ISRecConfig, build_variant
from repro.data import split_leave_one_out
from repro.data.synthetic import IntentDrivenSimulator, SimulatorConfig
from repro.train import TrainConfig
from repro.utils import set_seed


@pytest.fixture(scope="module")
def world():
    config = SimulatorConfig(
        name="gt", domain="beauty", num_users=90, num_items=70,
        num_concepts=24, avg_length=8.0, max_length=25, concepts_per_item=4.0,
        true_lambda=2, intent_match_weight=8.0, popularity_weight=0.3,
        noise_scale=0.5, transition_prob=0.3, seed=7,
    )
    simulator = IntentDrivenSimulator(config)
    dataset = simulator.generate()
    return simulator, dataset


class TestAlignmentBookkeeping:
    def test_kept_users_recorded(self, world):
        simulator, dataset = world
        truth = simulator.ground_truth
        assert len(truth.kept_users) == dataset.num_users
        assert truth.kept_users.max() < simulator.config.num_users

    def test_concept_index_map_consistent(self, world):
        simulator, dataset = world
        index_map = simulator.ground_truth.concept_index_map
        kept = index_map[index_map >= 0]
        assert len(kept) == dataset.num_concepts
        np.testing.assert_array_equal(np.sort(kept), np.arange(dataset.num_concepts))

    def test_kept_sequences_subset_of_raw(self, world):
        simulator, dataset = world
        back = np.zeros(int(simulator._item_map.max()) + 1, dtype=np.int64)
        for original, new in enumerate(simulator._item_map):
            if new > 0:
                back[new] = original
        for kept_position, raw_user in enumerate(simulator.ground_truth.kept_users):
            raw_items = set(int(i) for i in simulator._raw_sequences[raw_user])
            kept_items = set(int(back[i]) for i in dataset.sequences[kept_position])
            assert kept_items <= raw_items


class TestRecovery:
    def test_trained_model_beats_chance(self, world):
        simulator, dataset = world
        split = split_leave_one_out(dataset.sequences)
        set_seed(0)
        model = ISRec.from_dataset(dataset, max_len=10,
                                   config=ISRecConfig(dim=16, num_intents=3))
        model.fit(dataset, split,
                  TrainConfig(epochs=15, eval_every=5, patience=2, seed=0))
        report = true_intent_recovery(model, dataset, simulator, max_users=40)
        assert isinstance(report, RecoveryReport)
        assert report.steps_scored > 50
        assert report.mean_overlap > 1.3 * report.chance_overlap
        assert report.lift > 1.3

    def test_untrained_model_near_chance(self, world):
        simulator, dataset = world
        set_seed(3)
        model = ISRec.from_dataset(dataset, max_len=10,
                                   config=ISRecConfig(dim=16, num_intents=3))
        report = true_intent_recovery(model, dataset, simulator, max_users=40)
        # Untrained cosine similarities are essentially random.
        assert report.mean_overlap < 2.5 * report.chance_overlap

    def test_requires_intent_modules(self, world):
        simulator, dataset = world
        plain = build_variant("w/o GNN&Intent", dataset, max_len=10,
                              base_config=ISRecConfig(dim=16))
        with pytest.raises(ValueError):
            true_intent_recovery(plain, dataset, simulator)

    def test_requires_generated_world(self, world):
        _simulator, dataset = world
        fresh = IntentDrivenSimulator(SimulatorConfig(
            name="x", domain="beauty", num_users=40, num_items=60,
            num_concepts=20, max_length=30, seed=1))
        model = ISRec.from_dataset(dataset, max_len=10,
                                   config=ISRecConfig(dim=16))
        with pytest.raises(RuntimeError):
            true_intent_recovery(model, dataset, fresh)
