"""Exporter tests: artifact roundtrips, checkpoint sources, integrity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ISRecConfig
from repro.core.isrec import ISRec
from repro.models.gru4rec import GRU4Rec
from repro.models.sasrec import SASRec, SASRecConcept
from repro.serve import (
    export_artifact,
    export_checkpoint,
    load_artifact,
    servable_models,
)
from repro.serve.artifact import ARTIFACT_KIND
from repro.train import TrainState, save_train_state
from repro.train.trainer import TrainingHistory
from repro.utils import save_checkpoint, set_seed
from repro.utils.serialization import CheckpointIntegrityError, read_npz_verified


def _tiny_concepts(rng, vocab=15, concepts=5):
    item_concepts = (rng.random((vocab + 1, concepts)) < 0.4).astype(np.float32)
    item_concepts[0] = 0.0
    item_concepts[1:, 0] = np.maximum(item_concepts[1:, 0], 1.0)  # no empty rows
    adjacency = np.eye(concepts, dtype=np.float32)
    return item_concepts, adjacency


def _build(model_key, rng):
    set_seed(3)
    item_concepts, adjacency = _tiny_concepts(rng)
    if model_key == "isrec":
        return ISRec(15, item_concepts, adjacency, max_len=6,
                     config=ISRecConfig(dim=8))
    if model_key == "sasrec":
        return SASRec(15, dim=8, max_len=6, num_layers=1, num_heads=2,
                      dropout=0.1)
    if model_key == "sasrec_concept":
        return SASRecConcept(15, item_concepts, dim=8, max_len=6,
                             num_layers=1, num_heads=2)
    return GRU4Rec(15, dim=8, max_len=6)


class TestArtifactRoundtrip:
    @pytest.mark.parametrize("model_key",
                             ["isrec", "sasrec", "sasrec_concept", "gru4rec"])
    def test_roundtrip_weights_bitwise(self, model_key, rng, tmp_path):
        model = _build(model_key, rng)
        path = export_artifact(model, tmp_path / "model.npz")
        loaded = load_artifact(path)
        assert type(loaded) is type(model)
        original_state = model.state_dict()
        loaded_state = loaded.state_dict()
        assert sorted(original_state) == sorted(loaded_state)
        for name, value in original_state.items():
            np.testing.assert_array_equal(np.asarray(value),
                                          np.asarray(loaded_state[name]),
                                          err_msg=name)
        assert loaded.num_items == model.num_items
        assert loaded.max_len == model.max_len

    def test_artifact_meta(self, rng, tmp_path):
        model = _build("isrec", rng)
        path = export_artifact(model, tmp_path / "model.npz")
        _arrays, meta = read_npz_verified(path)
        assert meta["kind"] == ARTIFACT_KIND
        assert meta["model_class"] == "ISRec"
        assert meta["num_items"] == 15
        assert meta["config"]["config"]["dim"] == 8

    def test_scores_bitwise_after_roundtrip(self, rng, tmp_path):
        model = _build("isrec", rng)
        model.eval()
        loaded = load_artifact(export_artifact(model, tmp_path / "m.npz"))
        users = np.arange(3)
        inputs = rng.integers(1, 16, size=(3, 6))
        candidates = rng.integers(1, 16, size=(3, 7))
        np.testing.assert_array_equal(model.score(users, inputs, candidates),
                                      loaded.score(users, inputs, candidates))


class TestCheckpointSources:
    def test_export_from_plain_checkpoint(self, rng, tmp_path):
        model = _build("gru4rec", rng)
        checkpoint = save_checkpoint(model, tmp_path / "best")
        fresh = GRU4Rec(15, dim=8, max_len=6)
        artifact = export_checkpoint(checkpoint, fresh, tmp_path / "art.npz")
        loaded = load_artifact(artifact)
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(np.asarray(value),
                                          np.asarray(loaded.state_dict()[name]))

    def test_export_from_train_state(self, rng, tmp_path):
        model = _build("sasrec", rng)
        state = TrainState(epoch=4, model_state=model.state_dict(),
                           optimizer_state={"lr": 1e-3},
                           history=TrainingHistory(losses=[1.0, 0.5]),
                           model_class="SASRec")
        path = save_train_state(state, tmp_path / "ckpt.npz")
        fresh = SASRec(15, dim=8, max_len=6, num_layers=1, num_heads=2)
        loaded = load_artifact(
            export_checkpoint(path, fresh, tmp_path / "art.npz"))
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(np.asarray(value),
                                          np.asarray(loaded.state_dict()[name]))

    def test_class_mismatch_rejected(self, rng, tmp_path):
        model = _build("gru4rec", rng)
        checkpoint = save_checkpoint(model, tmp_path / "best")
        wrong = SASRec(15, dim=8, max_len=6, num_layers=1, num_heads=2)
        with pytest.raises(TypeError, match="GRU4Rec"):
            export_checkpoint(checkpoint, wrong, tmp_path / "art.npz")


class TestIntegrityAndRegistry:
    def test_corrupt_artifact_rejected(self, rng, tmp_path):
        model = _build("gru4rec", rng)
        path = export_artifact(model, tmp_path / "model.npz")
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointIntegrityError):
            load_artifact(path)

    def test_non_artifact_archive_rejected(self, rng, tmp_path):
        model = _build("gru4rec", rng)
        checkpoint = save_checkpoint(model, tmp_path / "plain")
        with pytest.raises(CheckpointIntegrityError, match="not an inference"):
            load_artifact(checkpoint)

    def test_unregistered_class_rejected(self, rng, tmp_path):
        class Unregistered(GRU4Rec):
            pass

        with pytest.raises(ValueError, match="not registered"):
            export_artifact(Unregistered(15, dim=8, max_len=6),
                            tmp_path / "model.npz")

    def test_builtin_models_registered(self):
        assert {"ISRec", "SASRec", "SASRecConcept", "GRU4Rec",
                "GRU4RecPlus"} <= set(servable_models())

    def test_loaded_model_is_eval_even_from_train_mode(self, rng, tmp_path):
        model = _build("isrec", rng)
        model.train()  # exporter receives a train-mode model
        assert model.training
        loaded = load_artifact(export_artifact(model, tmp_path / "m.npz"))
        assert not loaded.training
        stack = [loaded]
        while stack:
            module = stack.pop()
            assert not module.training
            stack.extend(module._modules.values())
