"""RecommendationEngine tests: cache behaviour, top-K semantics, telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.serve import RecommendationEngine


class TestTopK:
    def test_recommend_returns_sorted_topk(self, engine):
        results = engine.recommend(0, k=5)
        assert len(results) == 5
        scores = [score for _item, score in results]
        assert scores == sorted(scores, reverse=True)
        items = [item for item, _score in results]
        assert len(set(items)) == 5
        assert all(1 <= item <= engine.model.num_items for item in items)

    def test_seen_items_suppressed(self, engine):
        seen = set(engine.history(0))
        assert seen, "fixture user should have a history"
        recommended = {item for item, _ in engine.recommend(0, k=10)}
        assert not (recommended & seen)

    def test_filter_seen_off_allows_seen_items(self, engine):
        # With a large enough k the unfiltered list must contain seen items
        # that the filtered list excludes.
        k = engine.model.num_items
        unfiltered = {item for item, _ in engine.recommend(0, k=k,
                                                           filter_seen=False)}
        assert set(engine.history(0)) <= unfiltered

    def test_padding_item_never_recommended(self, engine):
        items = [item for item, _ in
                 engine.recommend(0, k=engine.model.num_items,
                                  filter_seen=False)]
        assert 0 not in items

    def test_k_clamped_to_vocabulary(self, engine):
        results = engine.recommend(1, k=10_000, filter_seen=False)
        assert len(results) == engine.model.num_items

    def test_unknown_user_empty_history_works(self, engine):
        results = engine.recommend(99_999, k=3)
        assert len(results) == 3

    def test_recommend_deterministic(self, engine):
        assert engine.recommend(2, k=8) == engine.recommend(2, k=8)


class TestStateCache:
    def test_lru_eviction(self, frozen_model):
        engine = RecommendationEngine(frozen_model, cache_size=2)
        for user in (1, 2, 3):
            engine.set_history(user, [user, user + 1])
            engine.recommend(user, k=2)
        info = engine.cache_info()
        assert info["size"] == 2
        assert info["users"] == [2, 3]  # user 1 was least recently used

    def test_recommend_refreshes_lru_order(self, frozen_model):
        engine = RecommendationEngine(frozen_model, cache_size=2)
        for user in (1, 2):
            engine.set_history(user, [user, user + 1])
            engine.recommend(user, k=2)
        engine.recommend(1, k=2)  # touch 1 so 2 becomes the eviction victim
        engine.set_history(3, [3, 4])
        engine.recommend(3, k=2)
        assert engine.cache_info()["users"] == [1, 3]

    def test_observe_invalidates_state(self, engine):
        engine.recommend(0, k=3)
        cached_before = engine._states[0].copy()
        new_item = engine.recommend(0, k=1)[0][0]
        engine.observe(0, new_item)
        assert 0 not in engine._states
        engine.recommend(0, k=3)
        assert not np.array_equal(engine._states[0], cached_before)
        assert engine.history(0)[-1] == new_item

    def test_set_history_replaces_and_invalidates(self, engine):
        engine.recommend(5, k=2)
        engine.set_history(5, [1, 2, 3])
        assert 5 not in engine._states
        assert engine.history(5) == [1, 2, 3]

    def test_batch_results_match_sequential(self, engine):
        users = [0, 1, 2, 3]
        sequential = [engine.recommend(user, k=5) for user in users]
        # States are now cached, so the batch path shares the exact floats.
        batch = engine.recommend_batch([(user, 5) for user in users])
        assert batch == sequential

    def test_batch_refreshes_stale_users_in_one_pass(self, engine):
        users = [10, 11, 12]
        for user in users:
            engine._states.pop(user, None)
        results = engine.recommend_batch([(user, 4) for user in users])
        assert [len(r) for r in results] == [4, 4, 4]
        assert all(user in engine._states for user in users)


class TestTelemetry:
    def test_cache_counters_and_latency(self, engine):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            with obs.use_telemetry():
                engine._states.pop(7, None)
                engine.recommend(7, k=3)  # miss
                engine.recommend(7, k=3)  # hit
            assert registry.counter("serve.cache.misses").value == 1
            assert registry.counter("serve.cache.hits").value == 1
            assert registry.counter("serve.requests").value == 2
            assert registry.gauge("serve.cache.size").value >= 1
            latency = registry.histogram("serve.request_latency_s")
            assert latency.count == 2
            snapshot = latency.snapshot()
            assert snapshot["p50"] is not None
            assert snapshot["p99"] >= snapshot["p50"]
        finally:
            obs.set_registry(previous)

    def test_disabled_telemetry_records_nothing(self, engine):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            engine.recommend(0, k=3)
            assert registry.snapshot() == {}
        finally:
            obs.set_registry(previous)


class TestValidation:
    def test_bad_cache_size_rejected(self, frozen_model):
        with pytest.raises(ValueError, match="cache_size"):
            RecommendationEngine(frozen_model, cache_size=0)


class TestThreadSafety:
    def test_concurrent_mixed_operations_are_safe(self, frozen_model):
        # Hammer one engine from several threads with a small cache so
        # evictions race lookups; the internal lock must keep every
        # operation coherent (no KeyError from a mid-request eviction,
        # no cache overflow, no torn history).
        import threading

        engine = RecommendationEngine(frozen_model, cache_size=4)
        num_users = 12
        for user in range(num_users):
            engine.set_history(user, [1 + user % frozen_model.num_items])
        errors: list[BaseException] = []
        barrier = threading.Barrier(6)

        def worker(index: int) -> None:
            rng = np.random.default_rng(index)
            try:
                barrier.wait()
                for _ in range(40):
                    user = int(rng.integers(0, num_users))
                    op = rng.random()
                    if op < 0.25:
                        engine.observe(
                            user,
                            int(rng.integers(1, frozen_model.num_items + 1)))
                    elif op < 0.5:
                        engine.recommend_batch([(user, 3), ((user + 1) % num_users, 3)])
                    else:
                        results = engine.recommend(user, k=3)
                        assert len(results) == 3
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        info = engine.cache_info()
        assert info["size"] <= info["capacity"]
        for user in range(num_users):
            assert len(engine.history(user)) >= 1
        assert sorted(engine.known_users()) == list(range(num_users))
