"""Observe-path consistency across every serving implementation.

The regression suite for the stale-read family of bugs: after an
``observe``, the engine, the quantized engine, the router's authoritative
store, and the multi-process cluster must all serve the *same* answer a
freshly-built engine with the full history would — including while a swap
is in flight and after a worker respawn races an in-flight observe.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.config import ISRecConfig
from repro.core.isrec import ISRec
from repro.online import EventLog
from repro.serve import (
    ClusterConfig,
    RecommendationEngine,
    ServingCluster,
    export_artifact,
    load_artifact,
)
from repro.serve.quantize import QuantizedEngine, engine_for_artifact
from repro.utils import set_seed


def fast_config(**overrides) -> ClusterConfig:
    settings = dict(world=2, default_deadline_s=10.0, max_retries=2,
                    down_gate_s=2.0, heartbeat_interval_s=0.1,
                    check_interval_s=0.02, restart_backoff_s=0.05,
                    liveness_timeout_s=2.0, startup_timeout_s=60.0)
    settings.update(overrides)
    return ClusterConfig(**settings)


@pytest.fixture(scope="module")
def quantized_artifact(tiny_dataset, tmp_path_factory):
    set_seed(99)
    model = ISRec.from_dataset(tiny_dataset, max_len=12,
                               config=ISRecConfig(dim=16))
    return export_artifact(
        model, tmp_path_factory.mktemp("parity") / "isrec-int8.npz",
        quantize="int8")


def histories_for(tiny_split, users):
    return {user: [int(item) for item in tiny_split.test_input(user)]
            for user in users}


def topk(engine, user, k=10):
    return engine.recommend(user, k=k, filter_seen=True)


def poll_cluster_equals(cluster, user, expected, k=10, timeout=10.0):
    """Wait for the async history sync; returns the final response items.

    Replica updates ride the same FIFO shard queue as requests, so this
    converges after at most one in-flight window.
    """
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        response = cluster.recommend(user, k=k)
        if not response.degraded:
            last = [(int(item), float(score))
                    for item, score in response.items]
            if last == expected:
                return last
        time.sleep(0.02)
    return last


class TestEngineStaleCacheOracle:
    """Warm engine after observe == fresh engine with the full history."""

    @pytest.mark.parametrize("kind", ["plain", "quantized"])
    def test_observe_invalidates_cached_state(self, artifact_path,
                                              quantized_artifact,
                                              tiny_split, kind):
        path = artifact_path if kind == "plain" else quantized_artifact
        warm = engine_for_artifact(path, cache_size=64)
        fresh = engine_for_artifact(path, cache_size=64)
        assert isinstance(warm, (RecommendationEngine, QuantizedEngine))
        for user in (0, 3, 7):
            history = list(tiny_split.test_input(user))
            warm.set_history(user, history)
            warm.recommend(user, k=10)  # populate state + seen caches
            novel = int(warm.recommend(user, k=1)[0][0])
            warm.observe(user, novel)
            fresh.set_history(user, history + [novel])
            assert topk(warm, user) == topk(fresh, user), \
                f"{kind} engine served a stale cache for user {user}"

    @pytest.mark.parametrize("kind", ["plain", "quantized"])
    def test_observed_item_is_filtered_immediately(self, artifact_path,
                                                   quantized_artifact,
                                                   tiny_split, kind):
        path = artifact_path if kind == "plain" else quantized_artifact
        engine = engine_for_artifact(path, cache_size=64)
        engine.set_history(2, tiny_split.test_input(2))
        top1 = int(engine.recommend(2, k=1)[0][0])
        engine.observe(2, top1)
        remaining = [item for item, _s in
                     engine.recommend(2, k=engine.model.num_items)]
        assert top1 not in remaining

    def test_quantized_seen_index_follows_history_shrink(
            self, quantized_artifact, tiny_split):
        # The inverse direction: replacing a history with a *shorter* one
        # must un-hide items the stale seen-index would keep filtering.
        engine = engine_for_artifact(quantized_artifact, cache_size=64)
        history = [int(item) for item in tiny_split.test_input(4)]
        engine.set_history(4, history)
        engine.recommend(4, k=5)  # memoise the seen index
        hidden = history[-1]
        engine.set_history(4, history[:-1])
        items = [item for item, _s in
                 engine.recommend(4, k=engine.model.num_items)]
        assert hidden in items

    def test_engine_event_log_tap_preserves_order(self, artifact_path):
        events = EventLog(capacity=64)
        engine = engine_for_artifact(artifact_path, event_log=events)
        engine.set_history(0, [1, 2])
        for item in (5, 9, 3):
            engine.observe(0, item)
        recorded, dropped = events.read_since(0)
        assert dropped == 0
        assert [(event.user, event.item) for event in recorded] == \
            [(0, 5), (0, 9), (0, 3)]


class TestClusterParity:
    """Cluster answers == single-engine answers, after the same observes."""

    @pytest.mark.parametrize("kind", ["plain", "quantized"])
    def test_post_observe_topk_matches_engine(self, artifact_path,
                                              quantized_artifact,
                                              tiny_split, kind):
        path = artifact_path if kind == "plain" else quantized_artifact
        engine = engine_for_artifact(path, cache_size=64)
        users = [0, 1, 4, 9]
        rng = np.random.default_rng(11)
        with ServingCluster(path, config=fast_config()) as cluster:
            for user, items in histories_for(tiny_split, users).items():
                engine.set_history(user, items)
                cluster.set_history(user, items)
            for user in users:  # interleaved novel observes
                for item in rng.integers(1, cluster.num_items,
                                         size=3).tolist():
                    engine.observe(user, int(item))
                    cluster.observe(user, int(item))
            for user in users:
                expected = [(int(item), float(score))
                            for item, score in topk(engine, user)]
                got = poll_cluster_equals(cluster, user, expected)
                assert got == expected, \
                    f"{kind} cluster diverged from engine for user {user}"

    def test_cluster_events_match_router_history_order(self, artifact_path,
                                                       tiny_split):
        with ServingCluster(artifact_path, config=fast_config()) as cluster:
            cluster.set_history(3, tiny_split.test_input(3))
            observed = [7, 2, 9, 2]
            for item in observed:
                cluster.observe(3, item)
            events, dropped = cluster.events.read_since(0)
            assert dropped == 0
            assert [event.item for event in events] == observed
            assert cluster.router.history(3)[-len(observed):] == observed
            assert cluster.stats()["events"]["latest_seq"] == len(observed)


class TestObserveDuringSwap:
    def test_observes_racing_a_swap_land_in_the_new_artifact(
            self, artifact_path, tiny_dataset, tiny_split, tmp_path):
        set_seed(4242)
        other = ISRec.from_dataset(tiny_dataset, max_len=12,
                                   config=ISRecConfig(dim=16))
        next_artifact = export_artifact(other, tmp_path / "next.npz")
        users = [0, 1, 2, 3]
        with ServingCluster(artifact_path, config=fast_config()) as cluster:
            for user, items in histories_for(tiny_split, users).items():
                cluster.set_history(user, items)
            stop = threading.Event()
            rng = np.random.default_rng(7)

            def observer():
                index = 0
                while not stop.is_set():
                    user = users[index % len(users)]
                    index += 1
                    cluster.observe(user,
                                    int(rng.integers(1, cluster.num_items)))
                    time.sleep(0.001)

            thread = threading.Thread(target=observer, daemon=True)
            thread.start()
            try:
                summary = cluster.swap(next_artifact)
            finally:
                stop.set()
                thread.join(timeout=30.0)
            assert summary["workers"] == cluster.config.world

            reference = engine_for_artifact(next_artifact, cache_size=64)
            for user in users:
                # The authoritative history (base + every racing observe)
                # must be what the swapped-in engines score with.
                reference.set_history(user, cluster.router.history(user))
                expected = [(int(item), float(score))
                            for item, score in topk(reference, user)]
                got = poll_cluster_equals(cluster, user, expected)
                assert got == expected, \
                    f"post-swap engines lost observes for user {user}"


@pytest.mark.faults
class TestObserveDuringRespawn:
    def test_observe_inside_the_reseed_window_survives_respawn(
            self, artifact_path, tiny_split, monkeypatch):
        """Regression: an observe racing the restart snapshot used to be
        lost — synced to the dying worker, absent from the respawn seed."""
        shard = 0
        race_user = 2 * 5  # any user owned by shard 0 (user % world == 0)
        with ServingCluster(artifact_path, config=fast_config()) as cluster:
            for user in range(12):
                cluster.set_history(user, tiny_split.test_input(user))
            race_item = int(cluster.recommend(race_user, k=1).items[0][0])

            original = cluster.router.users_of_shard
            fired = threading.Event()

            def racy_snapshot(target):
                pairs = original(target)
                if target == shard and not fired.is_set():
                    # Lands between the seed snapshot and the worker
                    # install: exactly the window the dirty-user re-seed
                    # closes.
                    fired.set()
                    cluster.observe(race_user, race_item)
                return pairs

            monkeypatch.setattr(cluster.router, "users_of_shard",
                                racy_snapshot)
            os.kill(cluster.worker_pids()[shard], signal.SIGKILL)

            deadline = time.monotonic() + 30.0
            while not fired.is_set():
                assert time.monotonic() < deadline, "respawn never snapshotted"
                time.sleep(0.02)
            assert cluster.router.history(race_user)[-1] == race_item

            deadline = time.monotonic() + 30.0
            while True:
                response = cluster.recommend(race_user,
                                             k=cluster.num_items)
                if not response.degraded:
                    served = [item for item, _s in response.items]
                    # filter_seen: the raced observe must hide its item.
                    if race_item not in served:
                        break
                assert time.monotonic() < deadline, (
                    "respawned worker kept serving the pre-observe history")
                time.sleep(0.05)
