"""Shared serving fixtures: a small frozen ISRec and its engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ISRecConfig
from repro.core.isrec import ISRec
from repro.serve import RecommendationEngine, export_artifact, load_artifact
from repro.utils import set_seed


@pytest.fixture(scope="module")
def frozen_model(tiny_dataset, tmp_path_factory):
    """A (untrained but deterministic) ISRec frozen through the exporter."""
    set_seed(99)
    model = ISRec.from_dataset(tiny_dataset, max_len=12,
                               config=ISRecConfig(dim=16))
    path = export_artifact(
        model, tmp_path_factory.mktemp("artifacts") / "isrec.npz")
    return load_artifact(path)


@pytest.fixture(scope="module")
def artifact_path(tiny_dataset, tmp_path_factory):
    """A frozen tiny-ISRec inference artifact on disk (for cluster tests)."""
    set_seed(99)
    model = ISRec.from_dataset(tiny_dataset, max_len=12,
                               config=ISRecConfig(dim=16))
    return export_artifact(
        model, tmp_path_factory.mktemp("cluster") / "isrec.npz")


@pytest.fixture()
def engine(frozen_model, tiny_split):
    """Engine over the frozen model, histories = each user's test input."""
    engine = RecommendationEngine(frozen_model, cache_size=256)
    for user in range(tiny_split.num_users):
        engine.set_history(user, np.asarray(tiny_split.test_input(user)))
    return engine
