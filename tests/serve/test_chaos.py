"""Chaos suite for the serving cluster (``make test-chaos``).

Every test here injects a fault — SIGKILLed workers, artifact corruption,
slow or failing forwards — and asserts the cluster's core invariant: every
request resolves within its deadline to a model answer, a degraded
fallback, or a typed error.  Never a hang, never a silent drop.

Fault injection enters two ways: real ``os.kill`` against worker PIDs, and
:class:`repro.utils.faults.ServeFaultPlan` schedules forked into workers
via the cluster's ``fault_plans`` hook.
"""

from __future__ import annotations

import os
import shutil
import signal
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    ClusterConfig,
    DeadlineExceeded,
    Overloaded,
    ServeError,
    ServeResponse,
    ServingCluster,
    ShardUnavailable,
    SwapFailed,
)
from repro.utils.faults import ServeFaultPlan, corrupt_file, truncate_file

pytestmark = pytest.mark.faults


def chaos_config(**overrides) -> ClusterConfig:
    """Cluster knobs tuned for fast fault detection on slow CI boxes."""
    settings = dict(world=2, default_deadline_s=10.0, max_retries=2,
                    down_gate_s=2.0, heartbeat_interval_s=0.1,
                    check_interval_s=0.02, restart_backoff_s=0.05,
                    liveness_timeout_s=2.0, startup_timeout_s=60.0)
    settings.update(overrides)
    return ClusterConfig(**settings)


def seed_users(cluster: ServingCluster, count: int = 12,
               vocab: int = 60) -> None:
    rng = np.random.default_rng(0)
    for user in range(count):
        cluster.set_history(user, rng.integers(1, vocab, size=6))


def wait_for_generation(cluster: ServingCluster, shard: int,
                        generation: int, timeout: float = 30.0) -> dict:
    """Block until ``shard``'s worker reaches ``generation`` and is ready."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snapshot = cluster.stats()["workers"][shard]
        if snapshot["ready"] and snapshot["generation"] >= generation:
            return snapshot
        time.sleep(0.02)
    raise AssertionError(
        f"shard {shard} never reached generation {generation}: "
        f"{cluster.stats()['workers'][shard]}")


class TestWorkerDeath:
    def test_sigkill_recovery_restores_model_answers(self, artifact_path):
        with ServingCluster(artifact_path, chaos_config()) as cluster:
            seed_users(cluster)
            assert not cluster.recommend(0, k=3).degraded
            os.kill(cluster.worker_pids()[0], signal.SIGKILL)
            # The in-flight window: the request must still resolve (retried
            # on the restarted worker, or answered degraded) — never hang.
            start = time.perf_counter()
            response = cluster.recommend(0, k=3)
            assert time.perf_counter() - start < 10.0
            assert isinstance(response, ServeResponse)
            snapshot = wait_for_generation(cluster, shard=0, generation=2)
            assert snapshot["restarts"] >= 1
            # Fully recovered: model answers again, history re-seeded.
            recovered = cluster.recommend(0, k=3)
            assert not recovered.degraded
            history = set(cluster.router.history(0))
            assert history.isdisjoint(
                item for item, _s in recovered.items)

    def test_die_mid_request_is_retried_on_restart(self, artifact_path):
        # The worker hard-exits (os._exit, indistinguishable from SIGKILL)
        # in the middle of serving its second request.  The plan re-arms
        # on restart (counters reset), so the retry — request 1 of the
        # fresh worker — survives and the caller gets a model answer.
        plans = {0: ServeFaultPlan(die_requests={2})}
        with ServingCluster(artifact_path, chaos_config(),
                            fault_plans=plans) as cluster:
            seed_users(cluster)
            assert not cluster.recommend(0, k=3).degraded
            response = cluster.recommend(0, k=3)
            assert not response.degraded
            assert response.attempts >= 2  # second attempt died with worker

    def test_repeated_kills_never_lose_requests(self, artifact_path):
        with ServingCluster(artifact_path, chaos_config()) as cluster:
            seed_users(cluster)
            outcomes: list[str] = []
            lock = threading.Lock()
            stop = threading.Event()

            def client(index: int) -> None:
                rng = np.random.default_rng(index)
                for _ in range(15):
                    user = int(rng.integers(0, 12))
                    try:
                        response = cluster.recommend(user, k=3,
                                                     deadline_s=10.0)
                        outcome = ("degraded" if response.degraded
                                   else "ok")
                    except (Overloaded, DeadlineExceeded) as exc:
                        outcome = type(exc).__name__
                    with lock:
                        outcomes.append(outcome)

            def killer() -> None:
                for _ in range(3):
                    if stop.wait(0.15):
                        return
                    pids = cluster.worker_pids()
                    shard = int(np.random.default_rng(None is None).integers(0, 2))
                    if pids[shard]:
                        try:
                            os.kill(pids[shard], signal.SIGKILL)
                        except ProcessLookupError:
                            pass

            threads = [threading.Thread(target=client, args=(index,))
                       for index in range(3)]
            chaos = threading.Thread(target=killer)
            for thread in threads:
                thread.start()
            chaos.start()
            for thread in threads:
                thread.join(timeout=120.0)
                assert not thread.is_alive(), "client hung"
            stop.set()
            chaos.join()
            # The invariant: every single request resolved, typed.
            assert len(outcomes) == 3 * 15
            assert outcomes.count("ok") + outcomes.count("degraded") > 0

    def test_shard_unavailable_typed_when_fallback_disabled(
            self, artifact_path):
        # With the degradation ladder switched off, an exhausted retry
        # budget must surface as a typed ShardUnavailable — not a hang,
        # not a silent popularity answer.
        plans = {0: ServeFaultPlan(fail_requests={1})}
        config = chaos_config(degraded_fallback=False, max_retries=0)
        with ServingCluster(artifact_path, config,
                            fault_plans=plans) as cluster:
            seed_users(cluster)
            with pytest.raises(ShardUnavailable, match="forward failed"):
                cluster.recommend(0, k=3, deadline_s=5.0)
            # The injected fault is spent: normal service resumes.
            assert not cluster.recommend(0, k=3).degraded


class TestInjectedForwardFaults:
    def test_failing_forwards_exhaust_retries_then_degrade(
            self, artifact_path):
        # Every attempt (1 + max_retries) hits an injected crash.
        plans = {0: ServeFaultPlan(fail_requests={1, 2, 3})}
        with ServingCluster(artifact_path, chaos_config(),
                            fault_plans=plans) as cluster:
            seed_users(cluster)
            response = cluster.recommend(0, k=3)
            assert response.degraded
            assert response.attempts == 3
            assert cluster.stats()["router"]["retries"] >= 2
            # The plan is exhausted: the shard serves normally again.
            assert not cluster.recommend(0, k=3).degraded

    def test_transient_failure_recovers_within_budget(self, artifact_path):
        plans = {0: ServeFaultPlan(fail_requests={1})}
        with ServingCluster(artifact_path, chaos_config(),
                            fault_plans=plans) as cluster:
            seed_users(cluster)
            response = cluster.recommend(0, k=3)
            assert not response.degraded
            assert response.attempts == 2

    def test_hung_forward_blows_deadline_with_typed_error(
            self, artifact_path):
        # The worker sleeps far past the caller's deadline; the caller
        # must get DeadlineExceeded at the deadline, not at the sleep.
        plans = {0: ServeFaultPlan(slow_requests={1}, slow_s=5.0)}
        config = chaos_config(liveness_timeout_s=8.0)
        with ServingCluster(artifact_path, config,
                            fault_plans=plans) as cluster:
            seed_users(cluster)
            start = time.perf_counter()
            with pytest.raises(DeadlineExceeded):
                cluster.recommend(0, k=3, deadline_s=0.4)
            assert time.perf_counter() - start < 3.0

    def test_overload_sheds_typed_never_hangs(self, artifact_path):
        plans = {shard: ServeFaultPlan(slow_prob=1.0, slow_s=0.3)
                 for shard in range(2)}
        config = chaos_config(queue_limit=2, liveness_timeout_s=5.0)
        with ServingCluster(artifact_path, config,
                            fault_plans=plans) as cluster:
            seed_users(cluster)
            outcomes: list[str] = []
            lock = threading.Lock()

            def client(index: int) -> None:
                try:
                    response = cluster.recommend(index % 12, k=3,
                                                 deadline_s=6.0)
                    outcome = "degraded" if response.degraded else "ok"
                except (Overloaded, DeadlineExceeded) as exc:
                    outcome = type(exc).__name__
                with lock:
                    outcomes.append(outcome)

            threads = [threading.Thread(target=client, args=(index,))
                       for index in range(12)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
                assert not thread.is_alive(), "client hung under overload"
            assert len(outcomes) == 12
            assert "Overloaded" in outcomes  # shedding actually engaged
            shed = cluster.stats()["router"]["shed"]
            assert shed >= outcomes.count("Overloaded")

    def test_mixed_fault_sweep_every_request_resolves_typed(
            self, artifact_path):
        # The headline invariant under a probabilistic storm of slow and
        # failing forwards on both shards.
        plans = {shard: ServeFaultPlan(seed=shard, slow_prob=0.2,
                                       fail_prob=0.2, slow_s=0.05)
                 for shard in range(2)}
        with ServingCluster(artifact_path, chaos_config(),
                            fault_plans=plans) as cluster:
            seed_users(cluster)
            outcomes: list[tuple[str, float]] = []
            lock = threading.Lock()

            def client(index: int) -> None:
                rng = np.random.default_rng(50 + index)
                for _ in range(10):
                    user = int(rng.integers(0, 12))
                    deadline_s = 8.0
                    start = time.perf_counter()
                    try:
                        response = cluster.recommend(
                            user, k=3, deadline_s=deadline_s)
                        outcome = ("degraded" if response.degraded
                                   else "ok")
                    except (Overloaded, DeadlineExceeded) as exc:
                        outcome = type(exc).__name__
                    elapsed = time.perf_counter() - start
                    with lock:
                        outcomes.append((outcome, elapsed))
                    assert elapsed < deadline_s + 2.0, \
                        f"request overran its deadline budget: {elapsed:.1f}s"

            threads = [threading.Thread(target=client, args=(index,))
                       for index in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
                assert not thread.is_alive(), "client hung"
            assert len(outcomes) == 4 * 10  # nothing dropped
            names = {outcome for outcome, _elapsed in outcomes}
            assert names <= {"ok", "degraded", "Overloaded",
                             "DeadlineExceeded"}
            assert any(outcome == "ok" for outcome, _e in outcomes)


class TestArtifactCorruption:
    def test_init_rejects_corrupt_artifact(self, artifact_path, tmp_path):
        bad = shutil.copy(artifact_path, tmp_path / "bad.npz")
        corrupt_file(bad)
        from repro.utils.serialization import CheckpointIntegrityError

        with pytest.raises(CheckpointIntegrityError):
            ServingCluster(bad, chaos_config())

    def test_swap_to_corrupt_artifact_rolls_back(self, artifact_path,
                                                 tmp_path):
        bad = shutil.copy(artifact_path, tmp_path / "bad.npz")
        corrupt_file(bad)  # byte rot: checksum verification must trip
        with ServingCluster(artifact_path, chaos_config()) as cluster:
            seed_users(cluster)
            with pytest.raises(SwapFailed):
                cluster.swap(bad)
            assert cluster.artifact_path == artifact_path
            assert cluster.swaps == 0
            # Cluster is still healthy on the previous artifact.
            assert not cluster.recommend(0, k=3).degraded
            stats = cluster.stats()
            assert all(worker["ready"] for worker in stats["workers"])

    def test_swap_to_truncated_artifact_rolls_back(self, artifact_path,
                                                   tmp_path):
        bad = shutil.copy(artifact_path, tmp_path / "torn.npz")
        truncate_file(bad, fraction=0.5)  # torn write: parse must fail
        with ServingCluster(artifact_path, chaos_config()) as cluster:
            seed_users(cluster)
            with pytest.raises(SwapFailed):
                cluster.swap(bad)
            assert cluster.artifact_path == artifact_path
            assert not cluster.recommend(0, k=3).degraded

    def test_failed_swap_does_not_interrupt_service(self, artifact_path,
                                                    tmp_path):
        bad = shutil.copy(artifact_path, tmp_path / "bad.npz")
        corrupt_file(bad)
        with ServingCluster(artifact_path, chaos_config()) as cluster:
            seed_users(cluster)
            errors: list[BaseException] = []

            def traffic() -> None:
                rng = np.random.default_rng(9)
                try:
                    for _ in range(10):
                        cluster.recommend(int(rng.integers(0, 12)), k=3)
                except BaseException as exc:
                    errors.append(exc)

            thread = threading.Thread(target=traffic)
            thread.start()
            with pytest.raises(SwapFailed):
                cluster.swap(bad)
            thread.join(timeout=60.0)
            assert not thread.is_alive()
            assert not errors, errors


class TestCloseUnderFault:
    def test_close_with_dead_worker_is_clean(self, artifact_path):
        cluster = ServingCluster(artifact_path, chaos_config())
        seed_users(cluster)
        os.kill(cluster.worker_pids()[1], signal.SIGKILL)
        cluster.close()  # must not raise or hang
        with pytest.raises(ServeError, match="closed"):
            cluster.recommend(0, k=2)
