"""ServingCluster functional tests: routing, parity, swap, lifecycle.

Fault-injection coverage (kills, corruption, slow/failing forwards) lives
in ``test_chaos.py`` under the ``faults`` marker; this module covers the
sunny-day contract plus the in-process router/queue units.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.models.pop import PopRec
from repro.serve import (
    ClusterConfig,
    Overloaded,
    RecommendationEngine,
    ServeError,
    ServingCluster,
    load_artifact,
)
from repro.serve.router import Router, ShardQueue, ShardRequest
from repro.utils.serialization import CheckpointIntegrityError


def fast_config(**overrides) -> ClusterConfig:
    """A cluster config tuned for tiny models on slow CI machines."""
    settings = dict(world=2, default_deadline_s=10.0, max_retries=2,
                    down_gate_s=2.0, heartbeat_interval_s=0.1,
                    check_interval_s=0.02, restart_backoff_s=0.05,
                    startup_timeout_s=60.0)
    settings.update(overrides)
    return ClusterConfig(**settings)


# ----------------------------------------------------------------------
# In-process units: queue + router
# ----------------------------------------------------------------------
class TestShardQueue:
    def test_sheds_recommend_beyond_limit(self):
        queue = ShardQueue(shard=0, limit=2)
        queue.put(ShardRequest("recommend", user=0))
        queue.put(ShardRequest("recommend", user=2))
        with pytest.raises(Overloaded) as excinfo:
            queue.put(ShardRequest("recommend", user=4))
        assert excinfo.value.shard == 0
        assert excinfo.value.limit == 2

    def test_control_traffic_bypasses_limit(self):
        queue = ShardQueue(shard=0, limit=1)
        queue.put(ShardRequest("recommend", user=0))
        queue.put(ShardRequest("ping", payload=1), enforce_limit=False)
        queue.put(ShardRequest("history", user=0, payload=[1]),
                  enforce_limit=False)
        assert queue.depth() == 3

    def test_backoff_entries_do_not_block_fresh_traffic(self):
        queue = ShardQueue(shard=0, limit=8)
        retry = ShardRequest("recommend", user=0)
        retry.not_before = time.monotonic() + 30.0  # far future
        queue.requeue(retry)
        fresh = ShardRequest("recommend", user=2)
        queue.put(fresh)
        assert queue.get(timeout=1.0) is fresh

    def test_get_times_out_empty(self):
        queue = ShardQueue(shard=0, limit=2)
        start = time.monotonic()
        assert queue.get(timeout=0.05) is None
        assert time.monotonic() - start < 1.0

    def test_drain_fails_everything(self):
        queue = ShardQueue(shard=0, limit=4)
        requests = [ShardRequest("recommend", user=user)
                    for user in (0, 2, 4)]
        for request in requests:
            queue.put(request)
        assert queue.drain(ServeError("gone")) == 3
        for request in requests:
            assert isinstance(request.error, ServeError)
            assert request.done.is_set()


class TestRouter:
    def test_shard_assignment_is_stable(self):
        router = Router(world=3, queue_limit=4, num_items=10)
        assert [router.shard_of(user) for user in range(6)] == \
            [0, 1, 2, 0, 1, 2]

    def test_histories_feed_fallback(self):
        router = Router(world=2, queue_limit=4, num_items=5)
        router.set_history(0, [2, 2, 3])
        router.observe(0, 2)
        response = router.degraded_response(7, k=2, filter_seen=False)
        assert response.degraded
        assert [item for item, _s in response.items] == [2, 3]

    def test_degraded_response_filters_seen(self):
        router = Router(world=2, queue_limit=4, num_items=5)
        router.set_history(1, [2, 2, 3])
        response = router.degraded_response(1, k=2, filter_seen=True)
        items = [item for item, _s in response.items]
        assert 2 not in items and 3 not in items

    def test_users_of_shard_partitions(self):
        router = Router(world=2, queue_limit=4, num_items=5)
        for user in range(6):
            router.set_history(user, [1])
        assert [user for user, _h in router.users_of_shard(0)] == [0, 2, 4]
        assert [user for user, _h in router.users_of_shard(1)] == [1, 3, 5]


# ----------------------------------------------------------------------
# Full cluster (forked workers)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster(artifact_path, tiny_split):
    with ServingCluster(artifact_path, fast_config()) as cluster:
        for user in range(tiny_split.num_users):
            cluster.set_history(user, np.asarray(tiny_split.test_input(user)))
        yield cluster


class TestClusterServing:
    def test_matches_single_engine_exactly(self, cluster, artifact_path,
                                           tiny_split):
        engine = RecommendationEngine(load_artifact(artifact_path))
        for user in (0, 1, 5, 8):
            engine.set_history(user, np.asarray(tiny_split.test_input(user)))
            response = cluster.recommend(user, k=5)
            assert not response.degraded
            assert response.shard == user % cluster.config.world
            expected = engine.recommend(user, k=5)
            assert [item for item, _s in response.items] == \
                [item for item, _s in expected]

    def test_cold_user_is_served(self, cluster, tiny_split):
        cold = tiny_split.num_users + 10  # no history anywhere
        response = cluster.recommend(cold, k=3)
        assert not response.degraded
        assert len(response.items) == 3

    def test_observe_reaches_the_shard_replica(self, cluster):
        user = 21
        target = cluster.recommend(user, k=1,
                                   filter_seen=True).items[0][0]
        cluster.observe(user, target)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:  # the sync is asynchronous
            items = [item for item, _s in
                     cluster.recommend(user, k=5).items]
            if target not in items:
                break
            time.sleep(0.02)
        assert target not in items

    def test_brownout_degrades_instantly(self, cluster):
        cluster.set_brownout(True)
        try:
            start = time.perf_counter()
            response = cluster.recommend(2, k=3)
            assert response.degraded
            assert response.attempts == 0
            assert time.perf_counter() - start < 1.0
        finally:
            cluster.set_brownout(False)
        assert not cluster.recommend(2, k=3).degraded

    def test_stats_shape(self, cluster, artifact_path):
        stats = cluster.stats()
        assert stats["artifact"] == str(artifact_path)
        assert stats["world"] == 2
        assert len(stats["workers"]) == 2
        assert all(worker["ready"] for worker in stats["workers"])
        assert set(stats["router"]) == {"admitted", "shed", "degraded",
                                        "retries", "deadline_exceeded"}

    def test_worker_pids_are_live_children(self, cluster):
        import os

        pids = cluster.worker_pids()
        assert set(pids) == {0, 1}
        for pid in pids.values():
            os.kill(pid, 0)  # signal 0: existence check only

    def test_invalid_deadline_rejected(self, cluster):
        with pytest.raises(ValueError, match="deadline_s"):
            cluster.recommend(0, k=3, deadline_s=0.0)


class TestClusterSwap:
    def test_swap_rolls_all_workers(self, artifact_path, tiny_dataset,
                                    tmp_path):
        from repro.core.config import ISRecConfig
        from repro.core.isrec import ISRec
        from repro.serve import export_artifact
        from repro.utils import set_seed

        set_seed(123)
        other = ISRec.from_dataset(tiny_dataset, max_len=12,
                                   config=ISRecConfig(dim=16))
        other_path = export_artifact(other, tmp_path / "other.npz")
        with ServingCluster(artifact_path, fast_config()) as cluster:
            cluster.set_history(0, [1, 2, 3])
            before = cluster.recommend(0, k=5)
            summary = cluster.swap(other_path)
            assert cluster.artifact_path == other_path
            assert cluster.swaps == 1
            assert summary["previous"] == str(artifact_path)
            after = cluster.recommend(0, k=5)
            assert not after.degraded
            # Different weights: rankings should differ (overwhelmingly).
            assert [i for i, _s in before.items] != \
                [i for i, _s in after.items]
            # History survived the swap (state migration).
            assert {1, 2, 3}.isdisjoint(
                item for item, _s in after.items)

    def test_swap_wrong_vocabulary_rolls_back(self, artifact_path,
                                              tmp_path):
        from repro.core.config import ISRecConfig
        from repro.core.isrec import ISRec
        from repro.serve import SwapFailed, export_artifact

        rng = np.random.default_rng(5)
        concepts = rng.random((31, 4)).astype(np.float32)
        concepts[0] = 0.0
        small = ISRec(30, concepts, np.eye(4, dtype=np.float32),
                      max_len=12, config=ISRecConfig(dim=16))
        small_path = export_artifact(small, tmp_path / "small.npz")
        with ServingCluster(artifact_path, fast_config()) as cluster:
            with pytest.raises(SwapFailed, match="vocabulary mismatch"):
                cluster.swap(small_path)
            assert cluster.artifact_path == artifact_path
            assert cluster.swaps == 0
            assert not cluster.recommend(0, k=3).degraded


class TestClusterLifecycle:
    def test_close_is_idempotent_and_late_calls_raise(self, artifact_path):
        cluster = ServingCluster(artifact_path, fast_config())
        assert not cluster.recommend(0, k=2).degraded
        cluster.close()
        cluster.close()
        with pytest.raises(ServeError, match="closed"):
            cluster.recommend(0, k=2)
        with pytest.raises(ServeError, match="closed"):
            cluster.observe(0, 1)

    def test_workers_terminate_on_close(self, artifact_path):
        import os

        cluster = ServingCluster(artifact_path, fast_config())
        pids = list(cluster.worker_pids().values())
        cluster.close()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            alive = []
            for pid in pids:
                try:
                    os.kill(pid, 0)
                    alive.append(pid)
                except ProcessLookupError:
                    pass
            if not alive:
                break
            time.sleep(0.05)
        assert not alive

    def test_rejects_non_artifact_file(self, tmp_path):
        pop = PopRec.from_counts(np.arange(8, dtype=np.float64))
        pop_path = pop.save(tmp_path / "pop.npz")
        with pytest.raises(CheckpointIntegrityError, match="artifact"):
            ServingCluster(pop_path, fast_config())

    def test_rejects_mismatched_fallback(self, artifact_path):
        wrong = PopRec.from_counts(np.zeros(10))
        with pytest.raises(ValueError, match="fallback"):
            ServingCluster(artifact_path, fast_config(), fallback=wrong)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="world"):
            ClusterConfig(world=0)
        with pytest.raises(ValueError, match="queue_limit"):
            ClusterConfig(queue_limit=0)
        with pytest.raises(ValueError, match="max_retries"):
            ClusterConfig(max_retries=-1)
        with pytest.raises(ValueError, match="default_deadline_s"):
            ClusterConfig(default_deadline_s=0.0)
